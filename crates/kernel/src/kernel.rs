//! The kernel: scheduler, alternative blocks, synchronization, predicated
//! IPC, and world splitting — §3.2–§3.4 of the paper, executable against a
//! virtual clock.
//!
//! ## Simulation model
//!
//! * The kernel owns a deterministic [`EventQueue`]; processes execute one
//!   op at a time on one of `cpus` simulated processors.
//! * An op's *effects* are applied when the op is dispatched; its *cost*
//!   is charged as virtual time before the process may proceed. (The skew
//!   is invisible at the op granularity the workloads use.)
//! * `Compute` ops are preemptible at quantum granularity when other work
//!   is runnable, modeling the paper's *virtual concurrency* ("some
//!   sharing of hardware, for example through multiprocessing", §4.2).
//! * Every cost comes from the [`MachineProfile`]: forks, COW faults,
//!   context switches, syscalls, and process teardown.
//!
//! ## The alternative-block protocol
//!
//! Executing [`Op::AltBlock`] forks one COW child per alternative (charged
//! serially, as `alt_spawn` would), puts the parent in `alt_wait`, and
//! lets the children race. A child reaching the end of its body evaluates
//! its guard: failure aborts the child without synchronizing; success
//! attempts synchronization. The first synchronizer wins — the parent
//! absorbs its page map and registers and resumes; siblings are
//! eliminated per the block's [`EliminationPolicy`]. A child that
//! synchronizes after a winner was chosen is told "too late" and
//! terminates itself (§3.2.1's at-most-once rule). If the `alt_wait`
//! timeout fires first, or every alternative aborts, the block fails.

use crate::process::{AfterOp, AltLink, ExitStatus, ProcState, Process};
use crate::program::{
    AltBlockSpec, Alternative, EliminationPolicy, GuardSpec, Op, Program, Target,
};
use crate::trace::TraceEvent;
use altx_des::{EventQueue, SimDuration, SimRng, SimTime};
use altx_ipc::{classify, split_worlds, Acceptance, BufferedSource, Router, SinkDevice, VecSource};
use altx_pager::{AddressSpace, MachineProfile};
use altx_predicates::{Outcome, Pid, PredicateSet};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Number of simulated CPUs (real concurrency degree).
    pub cpus: usize,
    /// The machine cost model.
    pub profile: MachineProfile,
    /// Preemption quantum for `Compute` ops when other work is runnable.
    pub quantum: SimDuration,
    /// Seed for guard probabilities and any other randomness.
    pub seed: u64,
    /// One-way message latency (zero = same-host IPC; nonzero models a
    /// shared bus or network between processes).
    pub ipc_latency: SimDuration,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            cpus: 8,
            profile: MachineProfile::default(),
            quantum: SimDuration::from_millis(10),
            seed: 0xA17E,
            ipc_latency: SimDuration::ZERO,
        }
    }
}

/// Counters accumulated over a run (the throughput/wasted-work side of
/// §4.1's overhead discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Process dispatches that charged a context switch.
    pub context_switches: u64,
    /// COW forks performed (alternates + world splits).
    pub forks: u64,
    /// Processes torn down (aborts, eliminations, too-lates).
    pub teardowns: u64,
    /// Total virtual time spent on teardown work.
    pub teardown_work: SimDuration,
    /// Messages sent.
    pub messages_sent: u64,
    /// Receiver world splits performed (§3.4.2).
    pub world_splits: u64,
    /// Guard evaluations.
    pub guard_evals: u64,
    /// Total virtual CPU time consumed by `Compute` ops that were later
    /// discarded (wasted speculative work — the throughput cost).
    pub wasted_compute: SimDuration,
    /// Total CPU-busy virtual time across all simulated CPUs (charged at
    /// dispatch). With the run's elapsed time this yields utilization —
    /// the resource-consumption metric §4.1's throughput discussion
    /// trades away.
    pub cpu_busy: SimDuration,
}

/// The record of one alternative block's execution, as observed at the
/// parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockOutcome {
    /// Process-local block sequence number.
    pub block_seq: u64,
    /// Winning alternative index (0-based), `None` if the block failed.
    pub winner: Option<usize>,
    /// The winning child's pid.
    pub winner_pid: Option<Pid>,
    /// True iff the block failed (no winner).
    pub failed: bool,
    /// True iff failure was due to the `alt_wait` timeout.
    pub timed_out: bool,
    /// When the parent dispatched the block op.
    pub started_at: SimTime,
    /// When the parent entered `alt_wait` (all children forked).
    pub waiting_at: SimTime,
    /// When the winner synchronized (or failure was determined).
    pub decided_at: SimTime,
    /// When the parent was runnable again (later than `decided_at` under
    /// synchronous elimination).
    pub parent_resumed_at: SimTime,
    /// Setup overhead charged (syscall + per-child forks).
    pub setup_cost: SimDuration,
    /// Number of alternatives spawned.
    pub n_alternatives: usize,
}

impl BlockOutcome {
    /// Wall-clock (virtual) duration from block start to parent resume —
    /// the quantity the PI analysis compares against sequential execution.
    pub fn elapsed(&self) -> SimDuration {
        self.parent_resumed_at - self.started_at
    }
}

/// Final report of a kernel run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the run went quiescent.
    pub finished_at: SimTime,
    /// Run statistics.
    pub stats: KernelStats,
    /// Pids that were still blocked at quiescence (deadlock witness).
    pub deadlocked: Vec<Pid>,
    exits: HashMap<Pid, ExitStatus>,
    outcomes: HashMap<Pid, Vec<BlockOutcome>>,
    trace: Vec<TraceEvent>,
}

impl RunReport {
    /// Exit status of `pid`, if it terminated.
    pub fn exit(&self, pid: Pid) -> Option<ExitStatus> {
        self.exits.get(&pid).copied()
    }

    /// The alternative-block outcomes recorded for `pid` as a parent, in
    /// execution order.
    pub fn block_outcomes(&self, pid: Pid) -> &[BlockOutcome] {
        self.outcomes.get(&pid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The full event trace.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

#[derive(Debug)]
enum Event {
    /// The current op's charged time has elapsed.
    OpDone { pid: Pid, gen: u64 },
    /// A process becomes eligible to run (fork completion, parent resume).
    Ready { pid: Pid, gen: u64 },
    /// `alt_wait` timeout for a block.
    Timeout { parent: Pid, block_seq: u64 },
    /// A message reaching its destination's logical process after the
    /// configured IPC latency.
    Deliver {
        from: Pid,
        to_logical: Pid,
        predicate: PredicateSet,
        payload: Vec<u8>,
    },
}

#[derive(Debug)]
struct BlockState {
    elimination: EliminationPolicy,
    children: Vec<Pid>,
    alive: BTreeSet<Pid>,
    winner: Option<(Pid, usize)>,
    decided: bool,
    timeout_id: Option<altx_des::event::EventId>,
    started_at: SimTime,
    waiting_at: SimTime,
    setup_cost: SimDuration,
    n_alternatives: usize,
}

/// The simulated kernel. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct Kernel {
    cfg: KernelConfig,
    queue: EventQueue<Event>,
    procs: BTreeMap<Pid, Process>,
    gens: HashMap<Pid, u64>,
    run_queue: VecDeque<(Pid, u64)>,
    idle_cpus: usize,
    next_pid: u64,
    router: Router,
    names: HashMap<String, Pid>,
    sources: HashMap<u32, BufferedSource<VecSource<Vec<u8>>>>,
    sinks: HashMap<u32, SinkDevice>,
    blocks: HashMap<(Pid, u64), BlockState>,
    outcomes: HashMap<Pid, Vec<BlockOutcome>>,
    trace: Vec<TraceEvent>,
    rng: SimRng,
    stats: KernelStats,
    /// Compute time each live process has accumulated (for wasted-work
    /// accounting when it is discarded).
    compute_spent: HashMap<Pid, SimDuration>,
    /// The compute slice currently charged to a running process:
    /// (start, length). Settled in full at OpDone, prorated if the
    /// process is eliminated mid-slice.
    slice_in_flight: HashMap<Pid, (SimTime, SimDuration)>,
    /// The CPU interval currently held by a running process (any op).
    /// Settled into `stats.cpu_busy` at OpDone, prorated at termination.
    busy_in_flight: HashMap<Pid, (SimTime, SimDuration)>,
    /// Guard of each live alternate (world-split clones inherit theirs).
    child_guards: HashMap<Pid, GuardSpec>,
    /// Logical-process identity: world-split clones share the logical id
    /// of the process they were split from, so messages addressed to
    /// "the process" fan out to every live world of it (§3.4.2).
    logical: HashMap<Pid, Pid>,
    /// Resolved fates: once a process's outcome is published, later
    /// message classifications normalize against it (a predicate about a
    /// decided process is either already true or marks the message as
    /// coming from an unreal world).
    fates: HashMap<Pid, Outcome>,
}

impl Kernel {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cpus` is zero.
    pub fn new(cfg: KernelConfig) -> Self {
        assert!(cfg.cpus > 0, "kernel needs at least one CPU");
        let rng = SimRng::seed_from_u64(cfg.seed);
        Kernel {
            idle_cpus: cfg.cpus,
            cfg,
            queue: EventQueue::new(),
            procs: BTreeMap::new(),
            gens: HashMap::new(),
            run_queue: VecDeque::new(),
            next_pid: 1,
            router: Router::new(),
            names: HashMap::new(),
            sources: HashMap::new(),
            sinks: HashMap::new(),
            blocks: HashMap::new(),
            outcomes: HashMap::new(),
            trace: Vec::new(),
            rng,
            stats: KernelStats::default(),
            compute_spent: HashMap::new(),
            slice_in_flight: HashMap::new(),
            busy_in_flight: HashMap::new(),
            child_guards: HashMap::new(),
            logical: HashMap::new(),
            fates: HashMap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The configured machine profile.
    pub fn profile(&self) -> &MachineProfile {
        &self.cfg.profile
    }

    /// Registers an input source; items are pulled by
    /// [`Op::SourcePull`].
    pub fn add_source(&mut self, id: u32, items: Vec<Vec<u8>>) {
        self.sources
            .insert(id, BufferedSource::new(VecSource::new(items)));
    }

    /// Registers a shared sink device of `len` bytes; written by
    /// [`Op::SinkWrite`] under per-process transactions.
    pub fn add_sink(&mut self, id: u32, len: usize) {
        self.sinks.insert(id, SinkDevice::new(len));
    }

    /// Read access to a sink device (e.g., to inspect committed state
    /// after [`run`](Self::run)).
    pub fn sink(&self, id: u32) -> Option<&SinkDevice> {
        self.sinks.get(&id)
    }

    /// Spawns a root process with a zeroed address space of `mem_bytes`.
    pub fn spawn(&mut self, program: Program, mem_bytes: usize) -> Pid {
        let space = AddressSpace::zeroed(mem_bytes, self.cfg.profile.page_size());
        self.spawn_with_space(program, space)
    }

    /// Spawns a root process with a caller-prepared address space.
    pub fn spawn_with_space(&mut self, program: Program, space: AddressSpace) -> Pid {
        let pid = self.alloc_pid();
        let proc = Process::new(pid, program, space, PredicateSet::new());
        self.procs.insert(pid, proc);
        self.logical.insert(pid, pid);
        self.router.register(pid);
        self.trace.push(TraceEvent::Spawned {
            at: self.now(),
            pid,
            parent: None,
            alt_index: None,
        });
        let gen = self.gen(pid);
        self.queue.schedule(self.now(), Event::Ready { pid, gen });
        pid
    }

    /// Read access to a process's address space (e.g., to inspect results
    /// after [`run`](Self::run)).
    pub fn space(&self, pid: Pid) -> Option<&AddressSpace> {
        self.procs.get(&pid).map(|p| &p.space)
    }

    /// Read access to a process's register file.
    pub fn register_of(&self, pid: Pid, reg: usize) -> Option<Vec<u8>> {
        self.procs.get(&pid).map(|p| p.register(reg).to_vec())
    }

    /// The trace so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Runs until quiescence (no events, nothing runnable) and reports.
    pub fn run(&mut self) -> RunReport {
        self.run_until(SimTime::MAX)
    }

    /// Runs until quiescence or until the next event would fire after
    /// `deadline`, whichever comes first. Useful for inspecting
    /// intermediate speculative state.
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        loop {
            self.dispatch();
            match self.queue.peek_time() {
                Some(at) if at <= deadline => {
                    let (_, event) = self.queue.pop().expect("peeked");
                    self.handle(event);
                }
                _ => break,
            }
        }
        self.report()
    }

    fn report(&self) -> RunReport {
        let exits: HashMap<Pid, ExitStatus> = self
            .procs
            .iter()
            .filter_map(|(&pid, p)| p.exit.map(|e| (pid, e)))
            .collect();
        let deadlocked: Vec<Pid> = self
            .procs
            .iter()
            .filter(|(_, p)| !p.is_zombie())
            .map(|(&pid, _)| pid)
            .collect();
        RunReport {
            finished_at: self.now(),
            stats: self.stats,
            deadlocked,
            exits,
            outcomes: self.outcomes.clone(),
            trace: self.trace.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Scheduling.
    // ------------------------------------------------------------------

    fn alloc_pid(&mut self) -> Pid {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        pid
    }

    fn gen(&mut self, pid: Pid) -> u64 {
        *self.gens.entry(pid).or_insert(0)
    }

    fn bump_gen(&mut self, pid: Pid) {
        *self.gens.entry(pid).or_insert(0) += 1;
    }

    fn enqueue(&mut self, pid: Pid) {
        let gen = self.gen(pid);
        self.run_queue.push_back((pid, gen));
    }

    fn dispatch(&mut self) {
        while self.idle_cpus > 0 {
            let Some((pid, gen)) = self.run_queue.pop_front() else {
                return;
            };
            if self.gens.get(&pid).copied().unwrap_or(0) != gen {
                continue; // stale entry (process eliminated or restarted)
            }
            let Some(proc) = self.procs.get(&pid) else {
                continue;
            };
            if proc.state != ProcState::Runnable {
                continue;
            }
            self.idle_cpus -= 1;
            self.stats.context_switches += 1;
            self.procs.get_mut(&pid).expect("checked").state = ProcState::Running;
            let cost = self.cfg.profile.context_switch_cost() + self.execute_op(pid);
            self.busy_in_flight.insert(pid, (self.queue.now(), cost));
            let gen = self.gen(pid);
            self.queue.schedule_after(cost, Event::OpDone { pid, gen });
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::OpDone { pid, gen } => self.on_op_done(pid, gen),
            Event::Ready { pid, gen } => self.on_ready(pid, gen),
            Event::Timeout { parent, block_seq } => self.on_timeout(parent, block_seq),
            Event::Deliver {
                from,
                to_logical,
                predicate,
                payload,
            } => {
                self.deliver(from, to_logical, predicate, payload);
                self.dispatch();
            }
        }
    }

    fn on_ready(&mut self, pid: Pid, gen: u64) {
        if self.gens.get(&pid).copied().unwrap_or(0) != gen {
            return;
        }
        if let Some(p) = self.procs.get(&pid) {
            if p.state == ProcState::Runnable && !p.is_zombie() {
                self.enqueue(pid);
                self.dispatch();
            }
        }
    }

    fn on_op_done(&mut self, pid: Pid, gen: u64) {
        if self.gens.get(&pid).copied().unwrap_or(0) != gen {
            // The CPU this op held was released when the process was
            // eliminated; nothing to do.
            return;
        }
        if let Some((_, len)) = self.slice_in_flight.remove(&pid) {
            *self.compute_spent.entry(pid).or_insert(SimDuration::ZERO) += len;
        }
        if let Some((_, len)) = self.busy_in_flight.remove(&pid) {
            self.stats.cpu_busy += len;
        }
        let Some(proc) = self.procs.get_mut(&pid) else {
            return;
        };
        match proc.after_op {
            AfterOp::ComputeContinue => {
                // Quantum expired with compute remaining.
                if self.run_queue.is_empty() {
                    // Nobody waiting: keep the CPU, run the next slice
                    // without a context switch.
                    let cost = self.next_compute_slice(pid);
                    self.busy_in_flight.insert(pid, (self.queue.now(), cost));
                    let gen = self.gen(pid);
                    self.queue.schedule_after(cost, Event::OpDone { pid, gen });
                } else {
                    // Preempt.
                    let proc = self.procs.get_mut(&pid).expect("exists");
                    proc.state = ProcState::Runnable;
                    self.idle_cpus += 1;
                    self.enqueue(pid);
                    self.dispatch();
                }
            }
            AfterOp::Advance => {
                proc.pc += 1;
                proc.state = ProcState::Runnable;
                self.idle_cpus += 1;
                self.enqueue(pid);
                self.dispatch();
            }
            AfterOp::Block => {
                // State (AltWaiting / RecvBlocked / SourceBlocked) was set
                // during execution; just release the CPU.
                self.idle_cpus += 1;
                self.dispatch();
            }
            AfterOp::Exit => {
                self.idle_cpus += 1;
                self.dispatch();
            }
        }
    }

    // ------------------------------------------------------------------
    // Op execution. Returns the op's virtual-time cost; sets `after_op`.
    // ------------------------------------------------------------------

    fn execute_op(&mut self, pid: Pid) -> SimDuration {
        let proc = self.procs.get_mut(&pid).expect("dispatched process exists");
        if proc.at_end() {
            return self.finish_program(pid);
        }
        let op = proc.program.ops()[proc.pc].clone();
        match op {
            Op::Nop => {
                self.set_after(pid, AfterOp::Advance);
                SimDuration::ZERO
            }
            Op::Compute(d) => {
                let proc = self.procs.get_mut(&pid).expect("exists");
                if proc.compute_remaining.is_none() {
                    proc.compute_remaining = Some(d);
                }
                self.next_compute_slice(pid)
            }
            Op::Write { addr, data } => {
                let proc = self.procs.get_mut(&pid).expect("exists");
                let receipt = proc.space.write(addr, &data);
                self.set_after(pid, AfterOp::Advance);
                receipt.cost(&self.cfg.profile)
            }
            Op::TouchPages { first, count } => {
                let proc = self.procs.get_mut(&pid).expect("exists");
                let receipt = proc.space.touch_pages(first, count, 0xA1);
                self.set_after(pid, AfterOp::Advance);
                receipt.cost(&self.cfg.profile)
            }
            Op::Read { addr, len } => {
                let proc = self.procs.get_mut(&pid).expect("exists");
                let _ = proc.space.read_vec(addr, len);
                self.set_after(pid, AfterOp::Advance);
                SimDuration::ZERO
            }
            Op::WriteFromRegister { reg, addr } => {
                let proc = self.procs.get_mut(&pid).expect("exists");
                let data = proc.register(reg).to_vec();
                let receipt = proc.space.write(addr, &data);
                self.set_after(pid, AfterOp::Advance);
                receipt.cost(&self.cfg.profile)
            }
            Op::RegisterName(name) => {
                self.names.insert(name, pid);
                self.set_after(pid, AfterOp::Advance);
                self.cfg.profile.syscall_cost()
            }
            Op::Send { to, payload } => {
                self.do_send(pid, &to, payload);
                self.set_after(pid, AfterOp::Advance);
                self.cfg.profile.syscall_cost()
            }
            Op::Recv { reg } => self.do_recv(pid, reg),
            Op::SinkWrite {
                sink_id,
                addr,
                value,
            } => {
                if let Some(sink) = self.sinks.get_mut(&sink_id) {
                    sink.write(pid.as_u64(), addr, value);
                }
                self.set_after(pid, AfterOp::Advance);
                self.cfg.profile.syscall_cost()
            }
            Op::SinkRead { sink_id, addr, reg } => {
                let value = self
                    .sinks
                    .get(&sink_id)
                    .map(|s| s.read(pid.as_u64(), addr))
                    .unwrap_or(0);
                let proc = self.procs.get_mut(&pid).expect("exists");
                proc.set_register(reg, vec![value]);
                proc.after_op = AfterOp::Advance;
                self.cfg.profile.syscall_cost()
            }
            Op::SourcePull {
                source_id,
                index,
                reg,
            } => self.do_source_pull(pid, source_id, index, reg),
            Op::AltBlock(spec) => self.do_alt_block(pid, spec),
            Op::FailIfBlockFailed => {
                let failed = self.procs.get(&pid).expect("exists").last_block_failed;
                if failed {
                    self.terminate(pid, ExitStatus::Failed { at: self.now() });
                    self.set_after(pid, AfterOp::Exit);
                } else {
                    self.set_after(pid, AfterOp::Advance);
                }
                SimDuration::ZERO
            }
            Op::Fail => {
                self.terminate(pid, ExitStatus::Failed { at: self.now() });
                self.set_after(pid, AfterOp::Exit);
                SimDuration::ZERO
            }
        }
    }

    fn set_after(&mut self, pid: Pid, after: AfterOp) {
        self.procs.get_mut(&pid).expect("exists").after_op = after;
    }

    fn next_compute_slice(&mut self, pid: Pid) -> SimDuration {
        let contended = !self.run_queue.is_empty();
        let quantum = self.cfg.quantum;
        let proc = self.procs.get_mut(&pid).expect("exists");
        let remaining = proc.compute_remaining.expect("compute in progress");
        let slice = if contended {
            remaining.min(quantum)
        } else {
            remaining
        };
        let left = remaining - slice;
        self.slice_in_flight.insert(pid, (self.queue.now(), slice));
        let proc = self.procs.get_mut(&pid).expect("exists");
        if left.is_zero() {
            proc.compute_remaining = None;
            proc.after_op = AfterOp::Advance;
        } else {
            proc.compute_remaining = Some(left);
            proc.after_op = AfterOp::ComputeContinue;
        }
        slice
    }

    // ------------------------------------------------------------------
    // Program completion: root exit or alternate guard + synchronization.
    // ------------------------------------------------------------------

    fn finish_program(&mut self, pid: Pid) -> SimDuration {
        let link = self.procs.get(&pid).expect("exists").alt_link;
        match link {
            None => {
                // Containment (§3.4.2): completing is observable. A root
                // process that reached its end while still holding
                // assumptions acquired through speculative messages must
                // wait for them to resolve — it is then either doomed
                // (eliminated by `resolve`) or free to exit.
                let conditional = !self
                    .procs
                    .get(&pid)
                    .expect("exists")
                    .predicates
                    .is_unconditional();
                if conditional {
                    let proc = self.procs.get_mut(&pid).expect("exists");
                    proc.state = ProcState::SourceBlocked;
                    proc.after_op = AfterOp::Block;
                    return SimDuration::ZERO;
                }
                self.terminate(pid, ExitStatus::Completed { at: self.now() });
                self.resolve(pid, Outcome::Completed);
                self.set_after(pid, AfterOp::Exit);
                SimDuration::ZERO
            }
            Some(link) => {
                // A child may finish its body while the parent is still
                // forking later siblings; the rendezvous cannot happen
                // until the parent has entered alt_wait. Park until then.
                if let Some(block) = self.blocks.get(&(link.parent, link.block_seq)) {
                    if self.now() < block.waiting_at {
                        let at = block.waiting_at;
                        let proc = self.procs.get_mut(&pid).expect("exists");
                        proc.state = ProcState::Runnable;
                        proc.after_op = AfterOp::Block;
                        let gen = self.gen(pid);
                        self.queue.schedule(at, Event::Ready { pid, gen });
                        return SimDuration::ZERO;
                    }
                }
                // Containment for alternates: synchronizing publishes the
                // child's state into the parent. Assumptions the child
                // acquired beyond its spawn set (its own cohort rivalry
                // plus whatever the parent itself assumes) must resolve
                // before the rendezvous.
                if self.has_foreign_assumptions(pid, link) {
                    let proc = self.procs.get_mut(&pid).expect("exists");
                    proc.state = ProcState::SourceBlocked;
                    proc.after_op = AfterOp::Block;
                    return SimDuration::ZERO;
                }
                self.guard_and_sync(pid, link)
            }
        }
    }

    /// True iff `pid` holds assumptions about processes outside its spawn
    /// set: neither itself, nor its block cohort, nor covered by its
    /// parent's own predicates — i.e., assumptions acquired through
    /// speculative messages that have not yet resolved.
    fn has_foreign_assumptions(&self, pid: Pid, link: AltLink) -> bool {
        let Some(proc) = self.procs.get(&pid) else {
            return false;
        };
        let cohort: std::collections::BTreeSet<Pid> = self
            .blocks
            .get(&(link.parent, link.block_seq))
            .map(|b| b.children.iter().copied().collect())
            .unwrap_or_default();
        let parent_preds = self
            .procs
            .get(&link.parent)
            .map(|p| p.predicates.clone())
            .unwrap_or_default();
        let foreign =
            |q: Pid| q != pid && !cohort.contains(&q) && parent_preds.assumption_about(q).is_none();
        proc.predicates.must_complete().any(foreign) || proc.predicates.must_fail().any(foreign)
    }

    fn guard_and_sync(&mut self, pid: Pid, link: AltLink) -> SimDuration {
        // Guard evaluation (in the child, the default placement — §3.2).
        self.stats.guard_evals += 1;
        let guard_cost = self.cfg.profile.syscall_cost();
        let key = (link.parent, link.block_seq);
        let passed = self.evaluate_child_guard(pid);
        self.trace.push(TraceEvent::GuardEvaluated {
            at: self.now(),
            pid,
            passed,
        });
        if !passed {
            // Abort without synchronizing.
            self.trace.push(TraceEvent::Aborted {
                at: self.now(),
                pid,
            });
            let teardown = self.teardown_cost_of(pid);
            self.discard_process(pid, ExitStatus::Failed { at: self.now() });
            self.resolve(pid, Outcome::Failed);
            self.note_child_gone(key, pid);
            self.set_after(pid, AfterOp::Exit);
            return guard_cost + teardown;
        }

        // Synchronization attempt (§3.2.1).
        let sync_cost = self.cfg.profile.syscall_cost() + self.cfg.profile.context_switch_cost();
        let block_decided = self.blocks.get(&key).map(|b| b.decided).unwrap_or(true);
        if block_decided {
            // At-most-once: told "too late", terminate self.
            self.trace.push(TraceEvent::TooLate {
                at: self.now(),
                pid,
            });
            let teardown = self.teardown_cost_of(pid);
            self.discard_process(pid, ExitStatus::TooLate { at: self.now() });
            self.resolve(pid, Outcome::Failed);
            self.note_child_gone(key, pid);
            self.set_after(pid, AfterOp::Exit);
            return guard_cost + sync_cost + teardown;
        }

        // Winner. Fix the block, absorb into the parent, eliminate
        // siblings.
        let (elimination, siblings) = {
            let block = self.blocks.get_mut(&key).expect("undecided block exists");
            block.decided = true;
            block.winner = Some((pid, link.index));
            if let Some(tid) = block.timeout_id.take() {
                self.queue.cancel(tid);
            }
            block.alive.remove(&pid);
            (
                block.elimination,
                block.alive.iter().copied().collect::<Vec<_>>(),
            )
        };

        self.trace.push(TraceEvent::Synchronized {
            at: self.now(),
            winner: pid,
            parent: link.parent,
            alt_index: link.index,
        });

        // The winner's staged sink writes join the parent's transaction:
        // they become permanent only when the parent's own fate resolves.
        for sink in self.sinks.values_mut() {
            sink.merge_txn(pid.as_u64(), link.parent.as_u64());
        }
        // The winner's state changes become the parent's: atomically
        // replace the page map (absorb), carry over registers.
        let now = self.now();
        let winner_proc = self.procs.get_mut(&pid).expect("exists");
        winner_proc.state = ProcState::Zombie;
        winner_proc.exit = Some(ExitStatus::Completed { at: now });
        let winner_space = winner_proc.space.clone();
        let winner_regs = winner_proc.registers.clone();
        self.bump_gen(pid);
        self.router.unregister(pid);
        self.compute_spent.remove(&pid);

        let parent = self.procs.get_mut(&link.parent).expect("parent exists");
        parent.space.absorb(winner_space);
        parent.registers = winner_regs;
        parent.last_block_failed = false;
        parent.pc += 1;
        parent.state = ProcState::Runnable;

        // Sibling elimination. Compute the teardown bill first: resolving
        // the winner's fate dooms the siblings (their rivalry predicates
        // assumed the winner would fail), so they are torn down inside
        // `resolve`; the explicit sweep below catches any that held no
        // such predicate.
        let elim_total: SimDuration = siblings.iter().map(|&s| self.teardown_cost_of(s)).sum();
        self.resolve(pid, Outcome::Completed);
        for sib in siblings {
            self.eliminate(sib);
        }

        // Parent resume: synchronous elimination delays it.
        let resume_delay = match elimination {
            EliminationPolicy::Synchronous => sync_cost + elim_total,
            EliminationPolicy::Asynchronous => sync_cost,
        };
        let resumed_at = self.now() + resume_delay;
        let parent_gen = self.gen(link.parent);
        self.queue.schedule(
            resumed_at,
            Event::Ready {
                pid: link.parent,
                gen: parent_gen,
            },
        );

        // Record the outcome.
        let block = self.blocks.remove(&key).expect("block existed");
        let decided_at = self.now();
        self.outcomes
            .entry(link.parent)
            .or_default()
            .push(BlockOutcome {
                block_seq: link.block_seq,
                winner: Some(link.index),
                winner_pid: Some(pid),
                failed: false,
                timed_out: false,
                started_at: block.started_at,
                waiting_at: block.waiting_at,
                decided_at,
                parent_resumed_at: resumed_at,
                setup_cost: block.setup_cost,
                n_alternatives: block.n_alternatives,
            });

        self.set_after(pid, AfterOp::Exit);
        guard_cost + sync_cost
    }

    fn evaluate_child_guard(&mut self, pid: Pid) -> bool {
        let g = self
            .child_guards
            .get(&pid)
            .cloned()
            .unwrap_or(GuardSpec::Const(true));
        match g {
            GuardSpec::Const(b) => b,
            GuardSpec::MemByteEquals { addr, expected } => {
                let proc = self.procs.get_mut(&pid).expect("exists");
                proc.space.read_vec(addr, 1)[0] == expected
            }
            GuardSpec::WithProbability(p) => self.rng.chance(p),
        }
    }

    fn note_child_gone(&mut self, key: (Pid, u64), pid: Pid) {
        let Some(block) = self.blocks.get_mut(&key) else {
            return;
        };
        block.alive.remove(&pid);
        if !block.decided && block.alive.is_empty() {
            // Every alternative failed: the block fails (§2's FAIL arm).
            self.fail_block(key, false);
        }
    }

    fn fail_block(&mut self, key: (Pid, u64), timed_out: bool) {
        let (parent_pid, block_seq) = key;
        let Some(block) = self.blocks.get_mut(&key) else {
            return;
        };
        if block.decided {
            return;
        }
        block.decided = true;
        if let Some(tid) = block.timeout_id.take() {
            self.queue.cancel(tid);
        }
        let survivors: Vec<Pid> = block.alive.iter().copied().collect();
        let started_at = block.started_at;
        let waiting_at = block.waiting_at;
        let setup_cost = block.setup_cost;
        let n_alternatives = block.n_alternatives;
        let elimination = block.elimination;

        // On timeout, live children are eliminated.
        let mut elim_total = SimDuration::ZERO;
        for pid in survivors {
            elim_total += self.eliminate(pid);
        }

        self.trace.push(TraceEvent::BlockFailed {
            at: self.now(),
            pid: parent_pid,
            block_seq,
            timed_out,
        });

        let parent = self.procs.get_mut(&parent_pid).expect("parent exists");
        parent.last_block_failed = true;
        parent.pc += 1;
        parent.state = ProcState::Runnable;

        let resume_delay = match elimination {
            EliminationPolicy::Synchronous => self.cfg.profile.syscall_cost() + elim_total,
            EliminationPolicy::Asynchronous => self.cfg.profile.syscall_cost(),
        };
        let resumed_at = self.now() + resume_delay;
        let parent_gen = self.gen(parent_pid);
        self.queue.schedule(
            resumed_at,
            Event::Ready {
                pid: parent_pid,
                gen: parent_gen,
            },
        );

        self.blocks.remove(&key);
        let decided_at = self.now();
        self.outcomes
            .entry(parent_pid)
            .or_default()
            .push(BlockOutcome {
                block_seq,
                winner: None,
                winner_pid: None,
                failed: true,
                timed_out,
                started_at,
                waiting_at,
                decided_at,
                parent_resumed_at: resumed_at,
                setup_cost,
                n_alternatives,
            });
    }

    fn on_timeout(&mut self, parent: Pid, block_seq: u64) {
        let key = (parent, block_seq);
        if self.blocks.get(&key).map(|b| !b.decided).unwrap_or(false) {
            self.fail_block(key, true);
            self.dispatch();
        }
    }

    // ------------------------------------------------------------------
    // Alternative-block spawn.
    // ------------------------------------------------------------------

    fn do_alt_block(&mut self, parent_pid: Pid, spec: AltBlockSpec) -> SimDuration {
        let started_at = self.now();
        let parent = self.procs.get_mut(&parent_pid).expect("exists");
        let block_seq = parent.blocks_started;
        parent.blocks_started += 1;
        let parent_preds = parent.predicates.clone();
        let parent_space = parent.space.clone();
        let page_count = parent.space.page_count();

        // Optional redundant pre-spawn guard evaluation in the parent
        // (§3.2): alternatives whose guard is already known false are not
        // spawned at all.
        let mut spawnable: Vec<(usize, &Alternative)> = Vec::new();
        for (i, alt) in spec.alternatives.iter().enumerate() {
            let skip = if spec.prespawn_guard_check {
                match &alt.guard {
                    GuardSpec::Const(b) => !*b,
                    GuardSpec::MemByteEquals { addr, expected } => {
                        let mut probe = parent_space.clone();
                        probe.read_vec(*addr, 1)[0] != *expected
                    }
                    GuardSpec::WithProbability(_) => false,
                }
            } else {
                false
            };
            if !skip {
                spawnable.push((i, alt));
            }
        }

        let mut setup_cost = self.cfg.profile.syscall_cost();
        if spawnable.is_empty() {
            // Immediate failure: nothing can succeed.
            let parent = self.procs.get_mut(&parent_pid).expect("exists");
            parent.last_block_failed = true;
            self.trace.push(TraceEvent::BlockFailed {
                at: self.now(),
                pid: parent_pid,
                block_seq,
                timed_out: false,
            });
            self.outcomes
                .entry(parent_pid)
                .or_default()
                .push(BlockOutcome {
                    block_seq,
                    winner: None,
                    winner_pid: None,
                    failed: true,
                    timed_out: false,
                    started_at,
                    waiting_at: started_at,
                    decided_at: started_at,
                    parent_resumed_at: started_at + setup_cost,
                    setup_cost,
                    n_alternatives: 0,
                });
            self.set_after(parent_pid, AfterOp::Advance);
            return setup_cost;
        }

        // Allocate pids first so sibling-rivalry predicates can reference
        // the whole cohort.
        let child_pids: Vec<Pid> = spawnable.iter().map(|_| self.alloc_pid()).collect();

        let mut ready_offset = setup_cost;
        for (slot, &(alt_index, alt)) in spawnable.iter().enumerate() {
            let pid = child_pids[slot];
            let fork_cost = self.cfg.profile.fork_cost(page_count);
            ready_offset += fork_cost;
            setup_cost += fork_cost;
            self.stats.forks += 1;

            let predicates = PredicateSet::child_of(&parent_preds)
                .with_sibling_rivalry(pid, child_pids.iter().copied())
                .expect("fresh pids cannot conflict");

            let mut child =
                Process::new(pid, alt.body.clone(), parent_space.cow_fork(), predicates);
            child.alt_link = Some(AltLink {
                parent: parent_pid,
                block_seq,
                index: alt_index,
            });
            self.procs.insert(pid, child);
            self.logical.insert(pid, pid);
            self.child_guards.insert(pid, alt.guard.clone());
            self.router.register(pid);
            self.trace.push(TraceEvent::Spawned {
                at: self.now(),
                pid,
                parent: Some(parent_pid),
                alt_index: Some(alt_index),
            });
            let gen = self.gen(pid);
            self.queue
                .schedule(self.now() + ready_offset, Event::Ready { pid, gen });
        }

        let waiting_at = self.now() + setup_cost;
        // alt_wait(TIMEOUT) starts once the parent blocks.
        let timeout_id = self.queue.schedule(
            waiting_at + spec.timeout,
            Event::Timeout {
                parent: parent_pid,
                block_seq,
            },
        );

        self.blocks.insert(
            (parent_pid, block_seq),
            BlockState {
                elimination: spec.elimination,
                children: child_pids.clone(),
                alive: child_pids.iter().copied().collect(),
                winner: None,
                decided: false,
                timeout_id: Some(timeout_id),
                started_at,
                waiting_at,
                setup_cost,
                n_alternatives: child_pids.len(),
            },
        );

        let parent = self.procs.get_mut(&parent_pid).expect("exists");
        parent.state = ProcState::AltWaiting { block_seq };
        parent.after_op = AfterOp::Block;
        self.trace.push(TraceEvent::AltWait {
            at: self.now(),
            pid: parent_pid,
            block_seq,
        });
        setup_cost
    }

    // ------------------------------------------------------------------
    // Messaging.
    // ------------------------------------------------------------------

    fn do_send(&mut self, from: Pid, to: &Target, payload: Vec<u8>) {
        let to_pid = match to {
            Target::Pid(p) => Some(*p),
            Target::Name(n) => self.names.get(n).copied(),
            Target::Parent => self
                .procs
                .get(&from)
                .and_then(|p| p.alt_link)
                .map(|l| l.parent),
        };
        let Some(to_pid) = to_pid else {
            return; // unresolvable destination: dropped
        };
        let logical_target = self.logical.get(&to_pid).copied().unwrap_or(to_pid);
        let predicate = self.procs.get(&from).expect("exists").predicates.clone();
        if self.cfg.ipc_latency.is_zero() {
            self.deliver(from, logical_target, predicate, payload);
        } else {
            // In-flight: the destination's world set is computed at
            // arrival time, not send time.
            let latency = self.cfg.ipc_latency;
            self.queue.schedule_after(
                latency,
                Event::Deliver {
                    from,
                    to_logical: logical_target,
                    predicate,
                    payload,
                },
            );
        }
    }

    /// Delivers a message to every live world of a logical process; each
    /// world classifies it independently (§3.4.2).
    fn deliver(&mut self, from: Pid, to_logical: Pid, predicate: PredicateSet, payload: Vec<u8>) {
        let worlds: Vec<Pid> = self
            .procs
            .iter()
            .filter(|(&p, proc)| {
                !proc.is_zombie() && self.logical.get(&p).copied().unwrap_or(p) == to_logical
            })
            .map(|(&p, _)| p)
            .collect();
        let mut delivered_any = false;
        for world in worlds {
            if self
                .router
                .send(from, world, predicate.clone(), payload.clone())
                .is_some()
            {
                delivered_any = true;
                // Wake a blocked receiver world.
                if let Some(receiver) = self.procs.get_mut(&world) {
                    if receiver.state == ProcState::RecvBlocked {
                        receiver.state = ProcState::Runnable;
                        self.enqueue(world);
                    }
                }
            }
        }
        if delivered_any {
            self.stats.messages_sent += 1;
        }
    }

    /// Rewrites a sending predicate against the fates ledger: discharged
    /// assumptions are dropped; a contradicted assumption means the
    /// message came from a world now known to be unreal (`None`).
    fn normalize_against_fates(&self, preds: &PredicateSet) -> Option<PredicateSet> {
        let mut out = PredicateSet::new();
        for p in preds.must_complete() {
            match self.fates.get(&p) {
                Some(Outcome::Completed) => {}
                Some(Outcome::Failed) => return None,
                None => out.assume_completes(p).expect("fresh set"),
            }
        }
        for p in preds.must_fail() {
            match self.fates.get(&p) {
                Some(Outcome::Failed) => {}
                Some(Outcome::Completed) => return None,
                None => out.assume_fails(p).expect("fresh set"),
            }
        }
        Some(out)
    }

    fn do_recv(&mut self, pid: Pid, reg: usize) -> SimDuration {
        let cost = self.cfg.profile.syscall_cost();
        loop {
            let mut msg = {
                let Some(mb) = self.router.mailbox_mut(pid) else {
                    break;
                };
                mb.pop()
            };
            let Some(msg) = msg.as_mut() else {
                break;
            };
            // Classify against present knowledge, not the send-time
            // snapshot: assumptions about already-decided processes are
            // either discharged or damn the message.
            match self.normalize_against_fates(&msg.predicate) {
                Some(normalized) => msg.predicate = normalized,
                None => {
                    self.trace.push(TraceEvent::MessageIgnored {
                        at: self.now(),
                        from: msg.from(),
                        to: pid,
                    });
                    continue;
                }
            }
            let receiver_preds = self.procs.get(&pid).expect("exists").predicates.clone();
            match classify(&receiver_preds, &*msg) {
                Acceptance::Accept => {
                    self.trace.push(TraceEvent::MessageAccepted {
                        at: self.now(),
                        from: msg.from(),
                        to: pid,
                    });
                    let proc = self.procs.get_mut(&pid).expect("exists");
                    proc.set_register(reg, msg.payload.to_vec());
                    self.set_after(pid, AfterOp::Advance);
                    return cost;
                }
                Acceptance::Ignore { .. } => {
                    self.trace.push(TraceEvent::MessageIgnored {
                        at: self.now(),
                        from: msg.from(),
                        to: pid,
                    });
                    continue;
                }
                Acceptance::Split { extra } => {
                    let sender = msg.from();
                    let (accepting, rejecting) = split_worlds(&receiver_preds, sender, &extra)
                        .expect("classify guaranteed consistency");
                    let clone_pid = self.alloc_pid();
                    self.stats.world_splits += 1;
                    self.stats.forks += 1;

                    // The rejecting world: same program position, COW
                    // space, no knowledge of the message.
                    let original = self.procs.get(&pid).expect("exists");
                    let mut clone = Process::new(
                        clone_pid,
                        original.program.clone(),
                        original.space.cow_fork(),
                        rejecting,
                    );
                    clone.pc = original.pc; // still at the Recv op
                    clone.registers = original.registers.clone();
                    clone.alt_link = original.alt_link;
                    clone.last_block_failed = original.last_block_failed;
                    if let Some(g) = self.child_guards.get(&pid).cloned() {
                        self.child_guards.insert(clone_pid, g);
                    }
                    self.procs.insert(clone_pid, clone);
                    let logical = self.logical.get(&pid).copied().unwrap_or(pid);
                    self.logical.insert(clone_pid, logical);
                    for sink in self.sinks.values_mut() {
                        sink.clone_txn(pid.as_u64(), clone_pid.as_u64());
                    }
                    self.router.clone_mailbox(pid, clone_pid);
                    // If the receiver is an alternate, the clone competes
                    // in the same block under its own pid.
                    if let Some(link) = self.procs.get(&pid).expect("exists").alt_link {
                        if let Some(block) = self.blocks.get_mut(&(link.parent, link.block_seq)) {
                            block.alive.insert(clone_pid);
                            block.children.push(clone_pid);
                        }
                    }
                    self.trace.push(TraceEvent::WorldSplit {
                        at: self.now(),
                        accepting: pid,
                        rejecting: clone_pid,
                        sender,
                    });
                    self.trace.push(TraceEvent::Spawned {
                        at: self.now(),
                        pid: clone_pid,
                        parent: Some(pid),
                        alt_index: None,
                    });
                    let fork_cost = self
                        .cfg
                        .profile
                        .fork_cost(self.procs.get(&pid).expect("exists").space.page_count());
                    let clone_gen = self.gen(clone_pid);
                    self.queue.schedule(
                        self.now() + fork_cost,
                        Event::Ready {
                            pid: clone_pid,
                            gen: clone_gen,
                        },
                    );

                    // The accepting world (this process) adopts the
                    // conjoined assumptions and takes the message.
                    self.trace.push(TraceEvent::MessageAccepted {
                        at: self.now(),
                        from: sender,
                        to: pid,
                    });
                    let proc = self.procs.get_mut(&pid).expect("exists");
                    proc.predicates = accepting;
                    proc.set_register(reg, msg.payload.to_vec());
                    self.set_after(pid, AfterOp::Advance);
                    return cost + fork_cost;
                }
            }
        }
        // No acceptable message: block.
        let proc = self.procs.get_mut(&pid).expect("exists");
        proc.state = ProcState::RecvBlocked;
        proc.after_op = AfterOp::Block;
        cost
    }

    fn do_source_pull(
        &mut self,
        pid: Pid,
        source_id: u32,
        index: usize,
        reg: usize,
    ) -> SimDuration {
        let cost = self.cfg.profile.syscall_cost();
        let proc = self.procs.get_mut(&pid).expect("exists");
        if !proc.predicates.is_unconditional() {
            // §3.4.2: speculative processes cannot interface with sources.
            proc.state = ProcState::SourceBlocked;
            proc.after_op = AfterOp::Block;
            return cost;
        }
        let item = self
            .sources
            .get_mut(&source_id)
            .and_then(|s| s.read(index))
            .unwrap_or_default();
        let proc = self.procs.get_mut(&pid).expect("exists");
        proc.set_register(reg, item);
        proc.after_op = AfterOp::Advance;
        cost
    }

    // ------------------------------------------------------------------
    // Termination, elimination, predicate resolution.
    // ------------------------------------------------------------------

    /// Marks a process terminated without charging teardown (used for
    /// normal exits; callers charge costs via returned durations).
    fn terminate(&mut self, pid: Pid, status: ExitStatus) {
        // Sink transactions follow the process's fate (§3.1 atomicity):
        // success commits the staged writes, any failure discards them.
        for sink in self.sinks.values_mut() {
            if status.is_success() {
                sink.commit(pid.as_u64());
            } else {
                sink.abort(pid.as_u64());
            }
        }
        // Settle a partially executed compute slice: only the elapsed
        // portion was really spent.
        if let Some((start, len)) = self.slice_in_flight.remove(&pid) {
            let elapsed = self.now().saturating_duration_since(start).min(len);
            *self.compute_spent.entry(pid).or_insert(SimDuration::ZERO) += elapsed;
        }
        if let Some((start, len)) = self.busy_in_flight.remove(&pid) {
            let elapsed = self.now().saturating_duration_since(start).min(len);
            self.stats.cpu_busy += elapsed;
        }
        let proc = self.procs.get_mut(&pid).expect("exists");
        proc.state = ProcState::Zombie;
        proc.exit = Some(status);
        self.bump_gen(pid);
        self.router.unregister(pid);
        self.compute_spent.remove(&pid);
    }

    fn teardown_cost_of(&self, pid: Pid) -> SimDuration {
        let pages = self
            .procs
            .get(&pid)
            .map(|p| p.space.page_count())
            .unwrap_or(0);
        self.cfg.profile.teardown_cost(pages)
    }

    /// Terminates a process whose speculative work is being thrown away,
    /// recording the wasted compute.
    fn discard_process(&mut self, pid: Pid, status: ExitStatus) {
        if let Some((start, len)) = self.slice_in_flight.remove(&pid) {
            let elapsed = self.now().saturating_duration_since(start).min(len);
            *self.compute_spent.entry(pid).or_insert(SimDuration::ZERO) += elapsed;
        }
        if let Some(spent) = self.compute_spent.remove(&pid) {
            self.stats.wasted_compute += spent;
        }
        self.stats.teardowns += 1;
        let cost = self.teardown_cost_of(pid);
        self.stats.teardown_work += cost;
        self.terminate(pid, status);
    }

    /// Eliminates a losing sibling or doomed world; returns the teardown
    /// cost charged.
    fn eliminate(&mut self, pid: Pid) -> SimDuration {
        let Some(proc) = self.procs.get(&pid) else {
            return SimDuration::ZERO;
        };
        if proc.is_zombie() {
            return SimDuration::ZERO;
        }
        // If it held a CPU, release it.
        if proc.state == ProcState::Running {
            self.idle_cpus += 1;
        }
        let cost = self.teardown_cost_of(pid);
        self.trace.push(TraceEvent::Eliminated {
            at: self.now(),
            pid,
        });
        self.discard_process(pid, ExitStatus::Eliminated { at: self.now() });
        self.resolve(pid, Outcome::Failed);
        cost
    }

    /// Publishes the real fate of `pid` and updates every live world:
    /// satisfied assumptions are discharged (possibly unblocking
    /// source-blocked processes), contradicted assumptions doom their
    /// holder (§3.4.2).
    fn resolve(&mut self, pid: Pid, outcome: Outcome) {
        self.fates.insert(pid, outcome);
        let live: Vec<Pid> = self
            .procs
            .iter()
            .filter(|(_, p)| !p.is_zombie())
            .map(|(&q, _)| q)
            .collect();
        let mut doomed = Vec::new();
        for q in live {
            let proc = self.procs.get_mut(&q).expect("exists");
            match proc.predicates.resolve(pid, outcome) {
                altx_predicates::Resolution::Doomed => doomed.push(q),
                altx_predicates::Resolution::Satisfied => {
                    // Wake predicate-parked processes (source waiters and
                    // parked completers/synchronizers); they re-check and
                    // park again if their condition still fails.
                    if proc.state == ProcState::SourceBlocked {
                        proc.state = ProcState::Runnable;
                        self.enqueue(q);
                    }
                }
                altx_predicates::Resolution::Unaffected => {}
            }
        }
        for q in doomed {
            // A doomed world may itself be an alternate in a block.
            let link = self.procs.get(&q).and_then(|p| p.alt_link);
            self.eliminate(q);
            if let Some(link) = link {
                self.note_child_gone((link.parent, link.block_seq), q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::default())
    }

    fn block_of(alts: Vec<Alternative>) -> Program {
        Program::new(vec![Op::AltBlock(AltBlockSpec::new(alts))])
    }

    #[test]
    fn fastest_alternative_wins() {
        let mut k = kernel();
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(30)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(10)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(20)),
            ]),
            64 * 1024,
        );
        let report = k.run();
        let outcomes = report.block_outcomes(root);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].winner, Some(1));
        assert!(!outcomes[0].failed);
        assert!(report.exit(root).expect("root exited").is_success());
    }

    #[test]
    fn winner_state_is_absorbed() {
        let mut k = kernel();
        let fast = Program::new(vec![
            Op::Compute(SimDuration::from_millis(5)),
            Op::Write {
                addr: 0,
                data: b"fast".to_vec(),
            },
        ]);
        let slow = Program::new(vec![
            Op::Compute(SimDuration::from_millis(50)),
            Op::Write {
                addr: 0,
                data: b"slow".to_vec(),
            },
        ]);
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), slow),
                Alternative::new(GuardSpec::Const(true), fast),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(1));
        let mut space = k.space(root).expect("root space").clone();
        assert_eq!(&space.read_vec(0, 4), b"fast");
    }

    #[test]
    fn guard_failure_falls_through_to_other_alternative() {
        let mut k = kernel();
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(false), Program::compute_ms(1)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(20)),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(1));
    }

    #[test]
    fn all_guards_fail_fails_block() {
        let mut k = kernel();
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(false), Program::compute_ms(1)),
                Alternative::new(GuardSpec::Const(false), Program::compute_ms(2)),
            ]),
            4 * 1024,
        );
        let report = k.run();
        let o = &report.block_outcomes(root)[0];
        assert!(o.failed);
        assert_eq!(o.winner, None);
        assert!(!o.timed_out);
        // Parent continues after the failed block (no FailIfBlockFailed).
        assert!(report.exit(root).expect("exited").is_success());
    }

    #[test]
    fn fail_if_block_failed_propagates() {
        let mut k = kernel();
        let program = block_of(vec![Alternative::new(
            GuardSpec::Const(false),
            Program::compute_ms(1),
        )])
        .then(Op::FailIfBlockFailed);
        let root = k.spawn(program, 4 * 1024);
        let report = k.run();
        assert!(matches!(report.exit(root), Some(ExitStatus::Failed { .. })));
    }

    #[test]
    fn timeout_fails_block() {
        let mut k = kernel();
        let spec = AltBlockSpec::new(vec![Alternative::new(
            GuardSpec::Const(true),
            Program::compute_ms(1_000),
        )])
        .with_timeout(SimDuration::from_millis(50));
        let root = k.spawn(Program::new(vec![Op::AltBlock(spec)]), 4 * 1024);
        let report = k.run();
        let o = &report.block_outcomes(root)[0];
        assert!(o.failed);
        assert!(o.timed_out);
    }

    #[test]
    fn losing_siblings_are_eliminated() {
        let mut k = kernel();
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(5)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(500)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(500)),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.stats.teardowns, 2);
        let eliminated = report
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Eliminated { .. }))
            .count();
        assert_eq!(eliminated, 2);
        let _ = root;
    }

    #[test]
    fn synchronous_elimination_delays_parent() {
        let run = |policy: EliminationPolicy| {
            let mut k = kernel();
            let spec = AltBlockSpec::new(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(5)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(500)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(500)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(500)),
            ])
            .with_elimination(policy);
            let root = k.spawn(Program::new(vec![Op::AltBlock(spec)]), 256 * 1024);
            let report = k.run();
            report.block_outcomes(root)[0].clone()
        };
        let sync = run(EliminationPolicy::Synchronous);
        let async_ = run(EliminationPolicy::Asynchronous);
        assert_eq!(sync.decided_at, async_.decided_at, "same decision time");
        assert!(
            sync.parent_resumed_at > async_.parent_resumed_at,
            "sync elimination must delay the parent: {} vs {}",
            sync.parent_resumed_at,
            async_.parent_resumed_at
        );
    }

    #[test]
    fn late_synchronizer_is_too_late() {
        let mut k = kernel();
        // Two alternatives finishing close together; the slower one must
        // be eliminated or told too-late, never absorbed.
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(10)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(11)),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
        // Exactly one absorption.
        let syncs = report
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Synchronized { .. }))
            .count();
        assert_eq!(syncs, 1);
    }

    #[test]
    fn nested_blocks() {
        let mut k = kernel();
        let inner = AltBlockSpec::new(vec![
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(5)),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(50)),
        ]);
        let outer = AltBlockSpec::new(vec![
            Alternative::new(
                GuardSpec::Const(true),
                Program::new(vec![
                    Op::AltBlock(inner),
                    Op::Compute(SimDuration::from_millis(5)),
                ]),
            ),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(200)),
        ]);
        let root = k.spawn(Program::new(vec![Op::AltBlock(outer)]), 4 * 1024);
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
        assert!(report.exit(root).expect("exited").is_success());
    }

    #[test]
    fn virtual_concurrency_single_cpu_serializes() {
        // With 1 CPU, racing two 100 ms alternatives cannot finish before
        // ~100 ms of combined compute has been time-sliced.
        let mut k = Kernel::new(KernelConfig {
            cpus: 1,
            ..KernelConfig::default()
        });
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(100)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(100)),
            ]),
            4 * 1024,
        );
        let report = k.run();
        let o = &report.block_outcomes(root)[0];
        // Winner needs its full 100ms of CPU; the other alternative's
        // interleaved slices roughly double the wall time.
        assert!(
            o.elapsed() >= SimDuration::from_millis(150),
            "elapsed {} too fast for 1 CPU",
            o.elapsed()
        );
        let mut k8 = kernel();
        let root8 = k8.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(100)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(100)),
            ]),
            4 * 1024,
        );
        let report8 = k8.run();
        assert!(
            report8.block_outcomes(root8)[0].elapsed() < o.elapsed(),
            "more CPUs must not be slower"
        );
    }

    #[test]
    fn mem_guard_checks_child_state() {
        let mut k = kernel();
        // Alternative 0 writes the magic byte its guard wants; alternative
        // 1 does not, so 0 wins despite being slower.
        let writer = Program::new(vec![
            Op::Compute(SimDuration::from_millis(30)),
            Op::Write {
                addr: 0,
                data: vec![7],
            },
        ]);
        let idler = Program::compute_ms(1);
        let root = k.spawn(
            block_of(vec![
                Alternative::new(
                    GuardSpec::MemByteEquals {
                        addr: 0,
                        expected: 7,
                    },
                    writer,
                ),
                Alternative::new(
                    GuardSpec::MemByteEquals {
                        addr: 0,
                        expected: 7,
                    },
                    idler,
                ),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
    }

    #[test]
    fn prespawn_check_skips_known_false_guards() {
        let mut k = kernel();
        let spec = AltBlockSpec::new(vec![
            Alternative::new(GuardSpec::Const(false), Program::compute_ms(1)),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(1)),
        ])
        .with_prespawn_guard_check();
        let root = k.spawn(Program::new(vec![Op::AltBlock(spec)]), 4 * 1024);
        let report = k.run();
        assert_eq!(report.stats.forks, 1, "false-guard alternative not spawned");
        assert_eq!(report.block_outcomes(root)[0].winner, Some(1));
    }

    #[test]
    fn messages_flow_between_root_processes() {
        let mut k = kernel();
        let receiver = Program::new(vec![
            Op::RegisterName("rx".into()),
            Op::Recv { reg: 0 },
            Op::WriteFromRegister { reg: 0, addr: 0 },
        ]);
        let sender = Program::new(vec![
            Op::Compute(SimDuration::from_millis(5)),
            Op::Send {
                to: Target::Name("rx".into()),
                payload: b"ping".to_vec(),
            },
        ]);
        let rx = k.spawn(receiver, 4 * 1024);
        let _tx = k.spawn(sender, 4 * 1024);
        let report = k.run();
        assert!(
            report.deadlocked.is_empty(),
            "deadlocked: {:?}",
            report.deadlocked
        );
        let mut space = k.space(rx).expect("rx lives").clone();
        assert_eq!(&space.read_vec(0, 4), b"ping");
    }

    #[test]
    fn speculative_message_splits_receiver() {
        let mut k = kernel();
        // The receiver is an ordinary process; the sender is an alternate
        // inside a block, so its messages carry sibling-rivalry
        // predicates and force a world split.
        let receiver = Program::new(vec![
            Op::RegisterName("rx".into()),
            Op::Recv { reg: 0 },
            Op::WriteFromRegister { reg: 0, addr: 0 },
            Op::Compute(SimDuration::from_millis(1)),
        ]);
        let speculative_sender = Program::new(vec![
            Op::Send {
                to: Target::Name("rx".into()),
                payload: b"spec".to_vec(),
            },
            Op::Compute(SimDuration::from_millis(10)),
        ]);
        let rx = k.spawn(receiver, 4 * 1024);
        let root = k.spawn(
            Program::new(vec![
                // Give the receiver time to register and block.
                Op::Compute(SimDuration::from_millis(5)),
                Op::AltBlock(AltBlockSpec::new(vec![
                    Alternative::new(GuardSpec::Const(true), speculative_sender),
                    Alternative::new(GuardSpec::Const(true), Program::compute_ms(200)),
                ])),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.stats.world_splits, 1, "receiver split once");
        // The sender (alt 0) wins its block; the accepting world survives,
        // the rejecting clone is doomed and eliminated.
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
        let split = report
            .trace()
            .iter()
            .find_map(|e| match e {
                TraceEvent::WorldSplit { rejecting, .. } => Some(*rejecting),
                _ => None,
            })
            .expect("split traced");
        assert!(matches!(
            report.exit(split),
            Some(ExitStatus::Eliminated { .. })
        ));
        // The surviving receiver world holds the payload.
        let mut space = k.space(rx).expect("rx").clone();
        assert_eq!(&space.read_vec(0, 4), b"spec");
    }

    #[test]
    fn source_access_blocks_speculative_process() {
        let mut k = kernel();
        k.add_source(1, vec![b"input".to_vec()]);
        // An alternate tries to pull from a source: §3.4.2 forbids it
        // while it holds unresolved predicates. With a competing sibling
        // that never finishes, it stays blocked until timeout.
        let spec = AltBlockSpec::new(vec![
            Alternative::new(
                GuardSpec::Const(true),
                Program::new(vec![Op::SourcePull {
                    source_id: 1,
                    index: 0,
                    reg: 0,
                }]),
            ),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(10_000)),
        ])
        .with_timeout(SimDuration::from_millis(100));
        let root = k.spawn(Program::new(vec![Op::AltBlock(spec)]), 4 * 1024);
        let report = k.run();
        let o = &report.block_outcomes(root)[0];
        assert!(
            o.failed && o.timed_out,
            "source-blocked alternate cannot win"
        );
    }

    #[test]
    fn unconditional_process_reads_sources() {
        let mut k = kernel();
        k.add_source(7, vec![b"tape0".to_vec(), b"tape1".to_vec()]);
        let program = Program::new(vec![
            Op::SourcePull {
                source_id: 7,
                index: 1,
                reg: 2,
            },
            Op::WriteFromRegister { reg: 2, addr: 0 },
        ]);
        let root = k.spawn(program, 4 * 1024);
        let report = k.run();
        assert!(report.deadlocked.is_empty());
        let mut space = k.space(root).expect("root").clone();
        assert_eq!(&space.read_vec(0, 5), b"tape1");
    }

    #[test]
    fn trace_records_figure2_shape() {
        let mut k = kernel();
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(10)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(20)),
            ]),
            4 * 1024,
        );
        let report = k.run();
        let kinds: Vec<&'static str> = report
            .trace()
            .iter()
            .map(|e| match e {
                TraceEvent::Spawned { .. } => "spawn",
                TraceEvent::AltWait { .. } => "wait",
                TraceEvent::GuardEvaluated { .. } => "guard",
                TraceEvent::Synchronized { .. } => "sync",
                TraceEvent::Eliminated { .. } => "elim",
                _ => "other",
            })
            .collect();
        // Root spawn, two child spawns, alt-wait, guard, sync, elim.
        assert_eq!(kinds.iter().filter(|&&k| k == "spawn").count(), 3);
        assert_eq!(kinds.iter().filter(|&&k| k == "sync").count(), 1);
        assert_eq!(kinds.iter().filter(|&&k| k == "elim").count(), 1);
        assert!(kinds.contains(&"wait"));
        let _ = root;
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let mut k = kernel();
            let root = k.spawn(
                block_of(vec![
                    Alternative::new(GuardSpec::WithProbability(0.5), Program::compute_ms(10)),
                    Alternative::new(GuardSpec::WithProbability(0.5), Program::compute_ms(12)),
                    Alternative::new(GuardSpec::Const(true), Program::compute_ms(30)),
                ]),
                16 * 1024,
            );
            let report = k.run();
            (
                report.finished_at,
                report.block_outcomes(root)[0].clone(),
                report.stats,
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn wasted_compute_is_tracked() {
        let mut k = kernel();
        let _root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(10)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(400)),
            ]),
            4 * 1024,
        );
        let report = k.run();
        // The loser starts one fork later than the winner and is
        // eliminated when the winner syncs (~10 ms in), so its discarded
        // compute is the elapsed portion only — well under its full
        // 400 ms, but clearly nonzero.
        assert!(
            report.stats.wasted_compute >= SimDuration::from_millis(4),
            "loser's partial compute {} should be counted",
            report.stats.wasted_compute
        );
        assert!(
            report.stats.wasted_compute < SimDuration::from_millis(20),
            "elimination must prorate, not charge the full slice: {}",
            report.stats.wasted_compute
        );
    }

    #[test]
    fn conditional_process_parks_at_end_until_fate_resolves() {
        // A receiver consumes a speculative message (splitting), and the
        // accepting world reaches its program end before the sender's
        // race decides. It must not complete while conditional; it
        // completes only if the sender wins.
        let mut k = kernel();
        let receiver = Program::new(vec![
            Op::RegisterName("rx".into()),
            Op::Recv { reg: 0 },
            Op::WriteFromRegister { reg: 0, addr: 0 },
        ]);
        // The SENDING alternate is the fast winner here.
        let winner_sender = Program::new(vec![
            Op::Send {
                to: Target::Name("rx".into()),
                payload: b"spec!".to_vec(),
            },
            Op::Compute(SimDuration::from_millis(10)),
        ]);
        let rx = k.spawn(receiver, 4 * 1024);
        let root = k.spawn(
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(5)),
                Op::AltBlock(AltBlockSpec::new(vec![
                    Alternative::new(GuardSpec::Const(true), winner_sender),
                    Alternative::new(GuardSpec::Const(true), Program::compute_ms(400)),
                ])),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
        // The accepting world completed only after the sender's win
        // resolved its assumption.
        let accepted_at = report
            .trace()
            .iter()
            .find_map(|e| match e {
                TraceEvent::Synchronized { at, .. } => Some(*at),
                _ => None,
            })
            .expect("sync happened");
        let rx_exit = report.exit(rx).expect("accepting world exits");
        assert!(rx_exit.is_success());
        assert!(
            rx_exit.at() >= accepted_at,
            "completion {} must wait for resolution at {}",
            rx_exit.at(),
            accepted_at
        );
        let mut space = k.space(rx).expect("rx").clone();
        assert_eq!(&space.read_vec(0, 5), b"spec!");
    }

    #[test]
    fn late_messages_normalize_against_resolved_fates() {
        // With IPC latency, a speculative winner's message arrives after
        // its fate resolved: the receiver must accept it WITHOUT a world
        // split (the assumption is already discharged).
        let mut k = Kernel::new(KernelConfig {
            ipc_latency: SimDuration::from_millis(50),
            ..KernelConfig::default()
        });
        let receiver = Program::new(vec![Op::RegisterName("rx".into()), Op::Recv { reg: 0 }]);
        let sender = Program::new(vec![
            Op::Send {
                to: Target::Name("rx".into()),
                payload: vec![7],
            },
            Op::Compute(SimDuration::from_millis(1)),
        ]);
        let rx = k.spawn(receiver, 4 * 1024);
        let root = k.spawn(
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(5)),
                Op::AltBlock(AltBlockSpec::new(vec![
                    Alternative::new(GuardSpec::Const(true), sender),
                    // A sibling so the sender carries real predicates.
                    Alternative::new(GuardSpec::Const(false), Program::compute_ms(1)),
                ])),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
        assert_eq!(report.stats.world_splits, 0, "no split on a decided fate");
        assert!(report.exit(rx).expect("rx exits").is_success());
        assert_eq!(k.register_of(rx, 0).expect("rx"), vec![7]);
    }

    #[test]
    fn late_messages_from_losers_are_ignored_entirely() {
        // The loser sends before losing; latency delays arrival past its
        // elimination. The receiver must drop it (not split) and then
        // receive the winner's message.
        let mut k = Kernel::new(KernelConfig {
            ipc_latency: SimDuration::from_millis(80),
            ..KernelConfig::default()
        });
        let receiver = Program::new(vec![Op::RegisterName("rx".into()), Op::Recv { reg: 0 }]);
        let loser = Program::new(vec![
            Op::Send {
                to: Target::Name("rx".into()),
                payload: b"loser".to_vec(),
            },
            Op::Compute(SimDuration::from_millis(500)),
        ]);
        let winner = Program::new(vec![
            Op::Compute(SimDuration::from_millis(20)),
            Op::Send {
                to: Target::Name("rx".into()),
                payload: b"winnr".to_vec(),
            },
        ]);
        let rx = k.spawn(receiver, 4 * 1024);
        let root = k.spawn(
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(5)),
                Op::AltBlock(AltBlockSpec::new(vec![
                    Alternative::new(GuardSpec::Const(true), loser),
                    Alternative::new(GuardSpec::Const(true), winner),
                ])),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(1));
        assert_eq!(report.stats.world_splits, 0);
        let ignored = report
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::MessageIgnored { .. }))
            .count();
        assert!(ignored >= 1, "loser's late message dropped");
        assert_eq!(k.register_of(rx, 0).expect("rx"), b"winnr".to_vec());
        let _ = root;
    }

    #[test]
    fn run_until_observes_intermediate_speculation() {
        let mut k = kernel();
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(50)),
                Alternative::new(GuardSpec::Const(true), Program::compute_ms(200)),
            ]),
            4 * 1024,
        );
        // Pause mid-race: children spawned, nobody synchronized yet.
        let mid = k.run_until(altx_des::SimTime::from_nanos(20_000_000));
        assert!(mid.block_outcomes(root).is_empty(), "undecided at 20 ms");
        let spawned = mid
            .trace()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Spawned {
                        parent: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(spawned, 2, "both alternates live mid-race");
        assert_eq!(mid.deadlocked.len(), 3, "parent + 2 children still active");
        // Resume to completion: same final outcome as an uninterrupted run.
        let done = k.run();
        assert_eq!(done.block_outcomes(root)[0].winner, Some(0));
        assert!(done.deadlocked.is_empty());
    }

    #[test]
    fn ipc_latency_delays_delivery() {
        let run = |latency_ms: u64| {
            let mut k = Kernel::new(KernelConfig {
                ipc_latency: SimDuration::from_millis(latency_ms),
                ..KernelConfig::default()
            });
            let receiver = Program::new(vec![Op::RegisterName("rx".into()), Op::Recv { reg: 0 }]);
            let sender = Program::new(vec![
                Op::Compute(SimDuration::from_millis(5)),
                Op::Send {
                    to: Target::Name("rx".into()),
                    payload: vec![1],
                },
            ]);
            let rx = k.spawn(receiver, 4 * 1024);
            let _tx = k.spawn(sender, 4 * 1024);
            let report = k.run();
            assert!(report.deadlocked.is_empty());
            report
                .trace()
                .iter()
                .find_map(|e| match e {
                    TraceEvent::MessageAccepted { at, to, .. } if *to == rx => Some(*at),
                    _ => None,
                })
                .expect("message accepted")
        };
        let instant = run(0);
        let delayed = run(50);
        assert!(
            delayed >= instant + SimDuration::from_millis(50),
            "latency must delay acceptance: {instant} vs {delayed}"
        );
    }

    #[test]
    fn in_flight_message_reaches_worlds_created_during_flight() {
        // A speculative sender's first message splits the receiver; a
        // second message, in flight across the split, must reach BOTH
        // worlds (delivery resolves the logical process at arrival time).
        let mut k = Kernel::new(KernelConfig {
            ipc_latency: SimDuration::from_millis(20),
            ..KernelConfig::default()
        });
        let receiver = Program::new(vec![
            Op::RegisterName("rx".into()),
            Op::Recv { reg: 0 },
            Op::Recv { reg: 1 },
            Op::Compute(SimDuration::from_millis(1)),
        ]);
        let speculative_sender = Program::new(vec![
            Op::Send {
                to: Target::Name("rx".into()),
                payload: b"one".to_vec(),
            },
            Op::Send {
                to: Target::Name("rx".into()),
                payload: b"two".to_vec(),
            },
            Op::Compute(SimDuration::from_millis(10)),
        ]);
        let rx = k.spawn(receiver, 4 * 1024);
        let root = k.spawn(
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(5)),
                Op::AltBlock(AltBlockSpec::new(vec![
                    Alternative::new(GuardSpec::Const(true), speculative_sender),
                    Alternative::new(GuardSpec::Const(true), Program::compute_ms(500)),
                ])),
            ]),
            4 * 1024,
        );
        let report = k.run();
        // The sender (alt 0) wins; the accepting world consumed both
        // messages and survives with both registers filled.
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
        assert!(report.exit(rx).expect("accepting world exits").is_success());
        assert_eq!(k.register_of(rx, 0).expect("rx"), b"one".to_vec());
        assert_eq!(k.register_of(rx, 1).expect("rx"), b"two".to_vec());
    }

    #[test]
    fn sink_writes_commit_only_for_the_winner() {
        let mut k = kernel();
        k.add_sink(1, 8);
        // Both alternates stage writes to the shared sink; only the
        // winner's may ever become permanent.
        let fast = Program::new(vec![
            Op::Compute(SimDuration::from_millis(5)),
            Op::SinkWrite {
                sink_id: 1,
                addr: 0,
                value: 0xFA,
            },
        ]);
        let slow = Program::new(vec![
            Op::SinkWrite {
                sink_id: 1,
                addr: 0,
                value: 0x51,
            }, // stages early!
            Op::Compute(SimDuration::from_millis(500)),
        ]);
        let root = k.spawn(
            block_of(vec![
                Alternative::new(GuardSpec::Const(true), slow),
                Alternative::new(GuardSpec::Const(true), fast),
            ]),
            4 * 1024,
        );
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(1));
        let sink = k.sink(1).expect("sink registered");
        assert_eq!(
            sink.read_committed(0),
            0xFA,
            "winner's write committed when the root completed"
        );
        assert_eq!(sink.pending_transactions(), 0, "loser's stage discarded");
    }

    #[test]
    fn sink_writes_abort_on_block_failure() {
        let mut k = kernel();
        k.add_sink(2, 4);
        let body = Program::new(vec![Op::SinkWrite {
            sink_id: 2,
            addr: 0,
            value: 9,
        }]);
        let root = k.spawn(
            block_of(vec![Alternative::new(GuardSpec::Const(false), body)]),
            4 * 1024,
        );
        let report = k.run();
        assert!(report.block_outcomes(root)[0].failed);
        let sink = k.sink(2).expect("sink");
        assert_eq!(sink.read_committed(0), 0, "nothing observable");
        assert_eq!(sink.txn_counts().1, 1, "one abort");
    }

    #[test]
    fn sink_commit_waits_for_the_whole_speculative_chain() {
        // Winner of an inner block merges into its parent (itself an
        // alternate); commit happens only when the root completes.
        let mut k = kernel();
        k.add_sink(3, 4);
        let inner = AltBlockSpec::new(vec![Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![Op::SinkWrite {
                sink_id: 3,
                addr: 1,
                value: 7,
            }]),
        )]);
        let outer = AltBlockSpec::new(vec![Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![Op::AltBlock(inner)]),
        )]);
        let root = k.spawn(Program::new(vec![Op::AltBlock(outer)]), 4 * 1024);
        let report = k.run();
        assert!(report.exit(root).expect("exits").is_success());
        assert_eq!(k.sink(3).expect("sink").read_committed(1), 7);
    }

    #[test]
    fn sink_read_sees_own_staged_writes() {
        let mut k = kernel();
        k.add_sink(4, 4);
        let program = Program::new(vec![
            Op::SinkWrite {
                sink_id: 4,
                addr: 2,
                value: 0xEE,
            },
            Op::SinkRead {
                sink_id: 4,
                addr: 2,
                reg: 0,
            },
            Op::WriteFromRegister { reg: 0, addr: 0 },
        ]);
        let root = k.spawn(program, 4 * 1024);
        let report = k.run();
        assert!(report.exit(root).expect("exits").is_success());
        let mut space = k.space(root).expect("space").clone();
        assert_eq!(space.read_vec(0, 1), vec![0xEE], "read-your-writes");
    }

    #[test]
    fn block_outcome_elapsed_and_costs() {
        let mut k = kernel();
        let root = k.spawn(
            block_of(vec![Alternative::new(
                GuardSpec::Const(true),
                Program::compute_ms(10),
            )]),
            320 * 1024,
        );
        let report = k.run();
        let o = &report.block_outcomes(root)[0];
        assert!(o.setup_cost >= k.profile().fork_cost(80));
        assert!(o.elapsed() >= SimDuration::from_millis(10));
        assert!(o.waiting_at >= o.started_at);
        assert!(o.decided_at >= o.waiting_at);
        assert!(o.parent_resumed_at >= o.decided_at);
    }
}
