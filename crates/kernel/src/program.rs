//! Workload programs: the instruction set of simulated processes.
//!
//! A [`Program`] is a straight-line list of [`Op`]s. The kernel charges
//! virtual time per op from the machine profile; `Compute` ops model the
//! application's own work, everything else models interaction with the
//! speculative-execution machinery. Alternative blocks nest: an
//! [`Op::AltBlock`] may appear inside an alternative's body, giving the
//! "nesting and potentially complex dependencies" of §3.3.

use altx_des::SimDuration;
use altx_predicates::Pid;
use std::sync::Arc;

/// How losing siblings are eliminated at synchronization (§3.2.1).
///
/// "The deletion can be accomplished synchronously (where the other
/// alternates are deleted before execution resumes in the parent) or
/// asynchronously (where the deletion occurs at some time after the
/// `alt_wait()` resumes in the parent) … we suspect that asynchronous
/// elimination will give better execution-time performance, once again at
/// the expense of resource utilization measures such as throughput."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EliminationPolicy {
    /// Parent resumes only after every losing sibling is torn down.
    Synchronous,
    /// Parent resumes immediately; teardowns compete for CPU afterwards.
    #[default]
    Asynchronous,
}

/// A guard condition (§2): the predicate an alternative must satisfy to be
/// considered successful.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardSpec {
    /// Constant outcome (always/never succeeds).
    Const(bool),
    /// Succeeds iff the byte at `addr` in the *alternate's* address space
    /// equals `expected` at guard-evaluation time — a data-dependent
    /// acceptance test.
    MemByteEquals {
        /// Byte address inspected.
        addr: usize,
        /// Value required for success.
        expected: u8,
    },
    /// Succeeds with probability `p`, resolved deterministically from the
    /// kernel's seeded RNG at evaluation time.
    WithProbability(f64),
}

impl GuardSpec {
    /// Validates guard parameters.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn validate(&self) {
        if let GuardSpec::WithProbability(p) = self {
            assert!(
                (0.0..=1.0).contains(p),
                "guard probability {p} outside [0, 1]"
            );
        }
    }
}

/// Destination of a `Send` op.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// A concrete pid (known at program-construction time).
    Pid(Pid),
    /// A name registered via [`Op::RegisterName`]; resolved at send time.
    Name(String),
    /// The sending process's parent (the spawner).
    Parent,
}

/// One alternative of a block: a guard plus a body (§2's
/// `ENSURE guard WITH method`).
#[derive(Debug, Clone, PartialEq)]
pub struct Alternative {
    /// The guard the alternative must satisfy to synchronize.
    pub guard: GuardSpec,
    /// The method: the work the alternate performs before evaluating its
    /// guard.
    pub body: Program,
}

impl Alternative {
    /// Creates an alternative.
    pub fn new(guard: GuardSpec, body: Program) -> Self {
        guard.validate();
        Alternative { guard, body }
    }
}

/// An alternative block: the `ALTBEGIN … END` construct of Figure 1,
/// executed speculatively per §3.2.
#[derive(Debug, Clone, PartialEq)]
pub struct AltBlockSpec {
    /// The competing alternatives, in program order.
    pub alternatives: Vec<Alternative>,
    /// `alt_wait` timeout for the parent; if no alternative synchronizes
    /// by then, the block fails (§3.2: a value such that exceeding it is
    /// "clearly unacceptable to the application").
    pub timeout: SimDuration,
    /// Sibling-elimination policy at synchronization.
    pub elimination: EliminationPolicy,
    /// If true, guards are *also* evaluated before spawning (in the
    /// parent, for redundancy — §3.2 notes the guard "can be executed
    /// before spawning the alternative, in the child process, at the
    /// synchronization point, or at any combination of these places").
    /// Only constant and memory guards can be pre-checked; probabilistic
    /// guards are skipped pre-spawn (their outcome is drawn at
    /// child-evaluation time).
    pub prespawn_guard_check: bool,
}

impl AltBlockSpec {
    /// Creates a block with the default (asynchronous) elimination, a
    /// one-hour timeout, and child-side guard evaluation only.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<Alternative>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "an alternative block needs at least one alternative"
        );
        AltBlockSpec {
            alternatives,
            timeout: SimDuration::from_secs(3600),
            elimination: EliminationPolicy::default(),
            prespawn_guard_check: false,
        }
    }

    /// Sets the `alt_wait` timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the elimination policy.
    pub fn with_elimination(mut self, policy: EliminationPolicy) -> Self {
        self.elimination = policy;
        self
    }

    /// Enables redundant pre-spawn guard evaluation in the parent.
    pub fn with_prespawn_guard_check(mut self) -> Self {
        self.prespawn_guard_check = true;
        self
    }
}

/// One instruction of a workload program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Burn CPU for the given virtual duration (preemptible at quantum
    /// granularity).
    Compute(SimDuration),
    /// Write bytes into the process's address space (charges COW faults).
    Write {
        /// Destination byte address.
        addr: usize,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// Dirty `count` whole pages starting at page `first` — the
    /// write-fraction primitive behind experiment E4.
    TouchPages {
        /// First page index.
        first: usize,
        /// Number of pages to dirty.
        count: usize,
    },
    /// Read `len` bytes at `addr` (free at page granularity, but counted).
    Read {
        /// Source byte address.
        addr: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Copy register `reg`'s contents into memory at `addr` (truncated to
    /// the register's length).
    WriteFromRegister {
        /// Source register index.
        reg: usize,
        /// Destination byte address.
        addr: usize,
    },
    /// Register a name for this process in the kernel name table.
    RegisterName(String),
    /// Send a message (payload + this process's current predicates).
    Send {
        /// Destination.
        to: Target,
        /// Message payload.
        payload: Vec<u8>,
    },
    /// Receive the next acceptable message into register `reg`; blocks
    /// until one is available. May split this process into two worlds
    /// (§3.4.2).
    Recv {
        /// Destination register index.
        reg: usize,
    },
    /// Stage a one-byte write to shared sink device `sink_id` (§3.1:
    /// sink writes "must be done to a temporary copy until the
    /// transaction commits"). The write becomes permanent only when this
    /// process's fate resolves to success: directly at exit for a root
    /// process, or by merging into the parent's transaction when an
    /// alternate is absorbed. Losers' staged writes are discarded.
    SinkWrite {
        /// Which kernel-registered sink.
        sink_id: u32,
        /// Byte address on the device.
        addr: usize,
        /// Value to stage.
        value: u8,
    },
    /// Read a byte from sink `sink_id` into register `reg`, observing
    /// this process's own staged writes first ("it can read what was
    /// written", §3.1).
    SinkRead {
        /// Which kernel-registered sink.
        sink_id: u32,
        /// Byte address on the device.
        addr: usize,
        /// Destination register.
        reg: usize,
    },
    /// Pull item `index` from kernel source `source_id` into register
    /// `reg`. Blocks while this process holds unresolved predicates
    /// (§3.4.2: speculative processes "cannot interface with sources").
    SourcePull {
        /// Which kernel-registered source.
        source_id: u32,
        /// Stream index to read (buffered: re-reads are idempotent).
        index: usize,
        /// Destination register.
        reg: usize,
    },
    /// Execute an alternative block speculatively.
    AltBlock(AltBlockSpec),
    /// Terminate this process with failure if the most recent alternative
    /// block on this process failed.
    FailIfBlockFailed,
    /// Terminate this process immediately with failure.
    Fail,
    /// No operation (placeholder; charges nothing).
    Nop,
}

/// A straight-line workload program.
///
/// Programs are cheaply cloneable (`Arc` internally) because every
/// alternate's body is shared between the spec and the running child.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Arc<Vec<Op>>,
}

impl Program {
    /// Creates a program from an op list.
    pub fn new(ops: Vec<Op>) -> Self {
        Program { ops: Arc::new(ops) }
    }

    /// The empty program (exits immediately).
    pub fn empty() -> Self {
        Program::new(Vec::new())
    }

    /// A single `Compute` of `ms` milliseconds — the workhorse of the
    /// performance experiments.
    pub fn compute_ms(ms: u64) -> Self {
        Program::new(vec![Op::Compute(SimDuration::from_millis(ms))])
    }

    /// A single `Compute` of the given duration.
    pub fn compute(d: SimDuration) -> Self {
        Program::new(vec![Op::Compute(d)])
    }

    /// The ops.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns a new program with `op` appended.
    pub fn then(&self, op: Op) -> Program {
        let mut ops = (*self.ops).clone();
        ops.push(op);
        Program::new(ops)
    }
}

impl FromIterator<Op> for Program {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builders() {
        let p = Program::compute_ms(5);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(Program::empty().is_empty());
        let p2 = p.then(Op::Fail);
        assert_eq!(p2.len(), 2);
        assert_eq!(p.len(), 1, "then() does not mutate the original");
    }

    #[test]
    fn program_from_iterator() {
        let p: Program = vec![Op::Nop, Op::Fail].into_iter().collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn alt_block_builder_defaults() {
        let b = AltBlockSpec::new(vec![Alternative::new(
            GuardSpec::Const(true),
            Program::empty(),
        )]);
        assert_eq!(b.elimination, EliminationPolicy::Asynchronous);
        assert!(!b.prespawn_guard_check);
        let b = b
            .with_timeout(SimDuration::from_millis(100))
            .with_elimination(EliminationPolicy::Synchronous)
            .with_prespawn_guard_check();
        assert_eq!(b.timeout, SimDuration::from_millis(100));
        assert_eq!(b.elimination, EliminationPolicy::Synchronous);
        assert!(b.prespawn_guard_check);
    }

    #[test]
    #[should_panic(expected = "at least one alternative")]
    fn empty_block_panics() {
        AltBlockSpec::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_guard_panics() {
        Alternative::new(GuardSpec::WithProbability(1.5), Program::empty());
    }

    #[test]
    fn guard_validate_accepts_valid() {
        GuardSpec::Const(true).validate();
        GuardSpec::WithProbability(0.5).validate();
        GuardSpec::MemByteEquals {
            addr: 0,
            expected: 1,
        }
        .validate();
    }
}
