//! Execution traces.
//!
//! The kernel records every speculative-machinery event with its virtual
//! timestamp. Traces drive the Figure-2 reproduction (`exp_fig2_trace`)
//! and give tests an exact view of spawn/sync/elimination ordering.

use altx_des::SimTime;
use altx_predicates::Pid;
use std::fmt;

/// One timestamped kernel event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process was created (root spawn or alternate fork).
    Spawned {
        /// When.
        at: SimTime,
        /// The new process.
        pid: Pid,
        /// Its parent, if any.
        parent: Option<Pid>,
        /// Alternative index within the parent's block (0-based), if an
        /// alternate.
        alt_index: Option<usize>,
    },
    /// A parent entered `alt_wait`.
    AltWait {
        /// When.
        at: SimTime,
        /// The waiting parent.
        pid: Pid,
        /// Block instance.
        block_seq: u64,
    },
    /// An alternate's guard was evaluated.
    GuardEvaluated {
        /// When.
        at: SimTime,
        /// The alternate.
        pid: Pid,
        /// Whether the guard held.
        passed: bool,
    },
    /// An alternate synchronized successfully and was absorbed.
    Synchronized {
        /// When.
        at: SimTime,
        /// The winning alternate.
        winner: Pid,
        /// The absorbing parent.
        parent: Pid,
        /// Winning alternative index (0-based).
        alt_index: usize,
    },
    /// An alternate attempted to synchronize after a winner was chosen.
    TooLate {
        /// When.
        at: SimTime,
        /// The loser.
        pid: Pid,
    },
    /// A process was eliminated (losing sibling or doomed world).
    Eliminated {
        /// When.
        at: SimTime,
        /// The eliminated process.
        pid: Pid,
    },
    /// A process aborted (guard failure or explicit failure).
    Aborted {
        /// When.
        at: SimTime,
        /// The aborting process.
        pid: Pid,
    },
    /// A block failed (all alternatives failed, or timeout).
    BlockFailed {
        /// When.
        at: SimTime,
        /// The parent whose block failed.
        pid: Pid,
        /// Block instance.
        block_seq: u64,
        /// True iff the failure was the `alt_wait` timeout firing.
        timed_out: bool,
    },
    /// A receiver was split into two worlds by a predicated message
    /// (§3.4.2).
    WorldSplit {
        /// When.
        at: SimTime,
        /// The original (accepting) world.
        accepting: Pid,
        /// The newly created (rejecting) world.
        rejecting: Pid,
        /// The message sender whose fate divides the worlds.
        sender: Pid,
    },
    /// A message was delivered (accepted by the receiver).
    MessageAccepted {
        /// When.
        at: SimTime,
        /// Sender.
        from: Pid,
        /// Receiver.
        to: Pid,
    },
    /// A message was ignored (conflicting predicates).
    MessageIgnored {
        /// When.
        at: SimTime,
        /// Sender.
        from: Pid,
        /// Receiver.
        to: Pid,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Spawned { at, .. }
            | TraceEvent::AltWait { at, .. }
            | TraceEvent::GuardEvaluated { at, .. }
            | TraceEvent::Synchronized { at, .. }
            | TraceEvent::TooLate { at, .. }
            | TraceEvent::Eliminated { at, .. }
            | TraceEvent::Aborted { at, .. }
            | TraceEvent::BlockFailed { at, .. }
            | TraceEvent::WorldSplit { at, .. }
            | TraceEvent::MessageAccepted { at, .. }
            | TraceEvent::MessageIgnored { at, .. } => at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Spawned {
                at,
                pid,
                parent,
                alt_index,
            } => match (parent, alt_index) {
                (Some(pp), Some(i)) => {
                    write!(f, "[{at}] {pid} spawned by {pp} as alternative {}", i + 1)
                }
                (Some(pp), None) => write!(f, "[{at}] {pid} spawned by {pp}"),
                _ => write!(f, "[{at}] {pid} spawned (root)"),
            },
            TraceEvent::AltWait { at, pid, block_seq } => {
                write!(f, "[{at}] {pid} alt_wait(block #{block_seq})")
            }
            TraceEvent::GuardEvaluated { at, pid, passed } => {
                write!(
                    f,
                    "[{at}] {pid} guard {}",
                    if *passed { "SATISFIED" } else { "FAILED" }
                )
            }
            TraceEvent::Synchronized {
                at,
                winner,
                parent,
                alt_index,
            } => write!(
                f,
                "[{at}] {winner} synchronized with {parent} (alternative {} wins)",
                alt_index + 1
            ),
            TraceEvent::TooLate { at, pid } => write!(f, "[{at}] {pid} too late to synchronize"),
            TraceEvent::Eliminated { at, pid } => write!(f, "[{at}] {pid} eliminated"),
            TraceEvent::Aborted { at, pid } => write!(f, "[{at}] {pid} aborted"),
            TraceEvent::BlockFailed {
                at,
                pid,
                block_seq,
                timed_out,
            } => write!(
                f,
                "[{at}] {pid} block #{block_seq} FAILED{}",
                if *timed_out { " (timeout)" } else { "" }
            ),
            TraceEvent::WorldSplit {
                at,
                accepting,
                rejecting,
                sender,
            } => write!(
                f,
                "[{at}] world split on {sender}: {accepting} accepts, {rejecting} rejects"
            ),
            TraceEvent::MessageAccepted { at, from, to } => {
                write!(f, "[{at}] message {from} → {to} accepted")
            }
            TraceEvent::MessageIgnored { at, from, to } => {
                write!(f, "[{at}] message {from} → {to} ignored")
            }
        }
    }
}

/// Renders a trace as Chrome-tracing JSON (the `chrome://tracing` /
/// Perfetto array format): one duration event per simulated process
/// (spawn → termination) and instant events for synchronizations, world
/// splits, and messages. Load the output in a trace viewer to see
/// Figure 2 interactively.
///
/// Timestamps are microseconds of virtual time; `tid` is the simulated
/// pid.
pub fn chrome_trace_json(events: &[TraceEvent], finished_at: SimTime) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let us = |t: SimTime| t.as_nanos() as f64 / 1_000.0;

    /// A process lane: spawn instant plus optional (end, outcome).
    type Span = (SimTime, Option<(SimTime, &'static str)>);
    let mut spans: std::collections::BTreeMap<Pid, Span> = std::collections::BTreeMap::new();
    let mut instants: Vec<(SimTime, Pid, String)> = Vec::new();

    for e in events {
        match *e {
            TraceEvent::Spawned { at, pid, .. } => {
                spans.entry(pid).or_insert((at, None));
            }
            TraceEvent::Synchronized {
                at,
                winner,
                alt_index,
                ..
            } => {
                if let Some(span) = spans.get_mut(&winner) {
                    span.1 = Some((at, "synchronized"));
                }
                instants.push((at, winner, format!("alternative {} wins", alt_index + 1)));
            }
            TraceEvent::Aborted { at, pid } => {
                if let Some(span) = spans.get_mut(&pid) {
                    span.1 = Some((at, "guard failed"));
                }
            }
            TraceEvent::Eliminated { at, pid } => {
                if let Some(span) = spans.get_mut(&pid) {
                    span.1 = Some((at, "eliminated"));
                }
            }
            TraceEvent::TooLate { at, pid } => {
                if let Some(span) = spans.get_mut(&pid) {
                    span.1 = Some((at, "too late"));
                }
            }
            TraceEvent::WorldSplit {
                at,
                accepting,
                rejecting,
                sender,
            } => {
                instants.push((
                    at,
                    accepting,
                    format!("world split on {sender}: {rejecting} rejects"),
                ));
            }
            TraceEvent::MessageAccepted { at, from, to } => {
                instants.push((at, to, format!("accepted message from {from}")));
            }
            TraceEvent::MessageIgnored { at, from, to } => {
                instants.push((at, to, format!("ignored message from {from}")));
            }
            TraceEvent::BlockFailed {
                at, pid, block_seq, ..
            } => {
                instants.push((at, pid, format!("block #{block_seq} failed")));
            }
            TraceEvent::AltWait { .. } | TraceEvent::GuardEvaluated { .. } => {}
        }
    }

    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |s: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&s);
    };
    for (pid, (start, end)) in &spans {
        let (end_at, outcome) = end.unwrap_or((finished_at, "running"));
        push(
            format!(
                "  {{\"name\":\"{} ({})\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                esc(&pid.to_string()),
                outcome,
                us(*start),
                (us(end_at) - us(*start)).max(0.0),
                pid.as_u64()
            ),
            &mut out,
        );
    }
    for (at, pid, name) in &instants {
        push(
            format!(
                "  {{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                esc(name),
                us(*at),
                pid.as_u64()
            ),
            &mut out,
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_accessible() {
        let t = SimTime::from_nanos(1_000_000);
        let e = TraceEvent::Eliminated {
            at: t,
            pid: Pid::new(3),
        };
        assert_eq!(e.at(), t);
    }

    #[test]
    fn display_is_one_indexed_for_alternatives() {
        let e = TraceEvent::Synchronized {
            at: SimTime::ZERO,
            winner: Pid::new(2),
            parent: Pid::new(1),
            alt_index: 0,
        };
        assert!(e.to_string().contains("alternative 1 wins"), "{e}");
    }

    #[test]
    fn display_root_spawn() {
        let e = TraceEvent::Spawned {
            at: SimTime::ZERO,
            pid: Pid::new(1),
            parent: None,
            alt_index: None,
        };
        assert!(e.to_string().contains("(root)"), "{e}");
    }

    #[test]
    fn display_timeout_block_failure() {
        let e = TraceEvent::BlockFailed {
            at: SimTime::ZERO,
            pid: Pid::new(1),
            block_seq: 0,
            timed_out: true,
        };
        assert!(e.to_string().contains("(timeout)"), "{e}");
    }

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let t = |ms: u64| SimTime::from_nanos(ms * 1_000_000);
        let events = vec![
            TraceEvent::Spawned {
                at: t(0),
                pid: Pid::new(1),
                parent: None,
                alt_index: None,
            },
            TraceEvent::Spawned {
                at: t(1),
                pid: Pid::new(2),
                parent: Some(Pid::new(1)),
                alt_index: Some(0),
            },
            TraceEvent::Synchronized {
                at: t(10),
                winner: Pid::new(2),
                parent: Pid::new(1),
                alt_index: 0,
            },
            TraceEvent::MessageAccepted {
                at: t(5),
                from: Pid::new(2),
                to: Pid::new(1),
            },
        ];
        let json = chrome_trace_json(&events, t(12));
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "duration events: {json}");
        assert!(json.contains("\"ph\":\"i\""), "instant events: {json}");
        assert!(json.contains("pid2 (synchronized)"), "{json}");
        assert!(
            json.contains("pid1 (running)"),
            "root runs to the end: {json}"
        );
        assert!(
            json.contains("\"dur\":9000.000"),
            "2 spawned at 1ms, synced at 10ms: {json}"
        );
        // Balanced braces and no trailing comma before the close.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n]"), "{json}");
    }

    #[test]
    fn chrome_trace_escapes_quotes() {
        // No current event embeds quotes, but the escaper must be sound.
        let json = chrome_trace_json(&[], SimTime::ZERO);
        assert_eq!(json.trim(), "[\n\n]".trim_start());
    }
}
