//! Simulated processes.
//!
//! §3.1: "A process is an independently schedulable stream of
//! instructions … often associated with some unit of state, e.g., an
//! address space, and a set of operations provided by a kernel to manage
//! that state." Here a [`Process`] owns a program + program counter, an
//! [`AddressSpace`], a [`PredicateSet`], and a small register file used by
//! receive/source ops.

use crate::program::Program;
use altx_des::SimTime;
use altx_pager::AddressSpace;
use altx_predicates::{Pid, PredicateSet};

/// Scheduler-visible state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Waiting for a CPU.
    Runnable,
    /// Currently executing an op on a CPU.
    Running,
    /// Parent blocked in `alt_wait` for block `block_seq`.
    AltWaiting {
        /// Which block instance (process-local sequence number).
        block_seq: u64,
    },
    /// Blocked in `Recv` with no acceptable message.
    RecvBlocked,
    /// Blocked on a source operation until predicates resolve (§3.4.2).
    SourceBlocked,
    /// Terminated; exit status recorded.
    Zombie,
}

/// Why a process terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Ran its program to completion (for alternates: synchronized as the
    /// winner and was absorbed).
    Completed {
        /// Virtual time of termination.
        at: SimTime,
    },
    /// Guard failed, explicit `Fail` op, or block failure propagated.
    Failed {
        /// Virtual time of termination.
        at: SimTime,
    },
    /// Eliminated as a losing sibling or a doomed world.
    Eliminated {
        /// Virtual time of termination.
        at: SimTime,
    },
    /// Attempted to synchronize after a winner was already chosen and was
    /// told "too late" (§3.2.1's at-most-once backup).
    TooLate {
        /// Virtual time of termination.
        at: SimTime,
    },
}

impl ExitStatus {
    /// The virtual time of termination.
    pub fn at(&self) -> SimTime {
        match *self {
            ExitStatus::Completed { at }
            | ExitStatus::Failed { at }
            | ExitStatus::Eliminated { at }
            | ExitStatus::TooLate { at } => at,
        }
    }

    /// True for [`ExitStatus::Completed`].
    pub fn is_success(&self) -> bool {
        matches!(self, ExitStatus::Completed { .. })
    }
}

/// What the scheduler should do when the currently charged op's time
/// expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum AfterOp {
    /// Advance the program counter and requeue.
    #[default]
    Advance,
    /// The op left the process blocked (alt-wait, recv, source); the state
    /// field says which. Do not advance.
    Block,
    /// The process terminated during the op.
    Exit,
    /// A `Compute` op has remaining work (quantum preemption).
    ComputeContinue,
}

/// Where a child reports at synchronization time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AltLink {
    /// The parent pid.
    pub parent: Pid,
    /// The parent's block instance this child belongs to.
    pub block_seq: u64,
    /// This child's alternative index within the block (1-based in the
    /// paper's `alt_spawn` return convention; stored 0-based).
    pub index: usize,
}

/// A simulated process.
#[derive(Debug)]
pub struct Process {
    /// This process's pid.
    pub pid: Pid,
    /// Program being executed.
    pub program: Program,
    /// Program counter: index of the next op to execute.
    pub pc: usize,
    /// Remaining duration of a partially executed `Compute` op (quantum
    /// preemption support).
    pub compute_remaining: Option<altx_des::SimDuration>,
    /// The process's paged state.
    pub space: AddressSpace,
    /// Outstanding speculative assumptions.
    pub predicates: PredicateSet,
    /// Small register file for message/source payloads.
    pub registers: Vec<Vec<u8>>,
    /// Scheduler state.
    pub state: ProcState,
    /// Exit status once `state == Zombie`.
    pub exit: Option<ExitStatus>,
    /// If this process is an alternate, where it synchronizes.
    pub(crate) alt_link: Option<AltLink>,
    /// Scheduler action pending at the end of the current op's charge.
    pub(crate) after_op: AfterOp,
    /// Whether the most recent alt block executed *by this process as
    /// parent* failed (consulted by `FailIfBlockFailed`).
    pub last_block_failed: bool,
    /// Number of alt blocks this process has started (used to sequence
    /// block instances).
    pub blocks_started: u64,
}

impl Process {
    /// Creates a runnable process.
    pub fn new(pid: Pid, program: Program, space: AddressSpace, predicates: PredicateSet) -> Self {
        Process {
            pid,
            program,
            pc: 0,
            compute_remaining: None,
            space,
            predicates,
            registers: vec![Vec::new(); 8],
            state: ProcState::Runnable,
            exit: None,
            alt_link: None,
            after_op: AfterOp::default(),
            last_block_failed: false,
            blocks_started: 0,
        }
    }

    /// True iff the program counter has passed the last op.
    pub fn at_end(&self) -> bool {
        self.pc >= self.program.len()
    }

    /// True iff the process has terminated.
    pub fn is_zombie(&self) -> bool {
        self.state == ProcState::Zombie
    }

    /// Stores `data` in register `reg`, growing the file if needed.
    pub fn set_register(&mut self, reg: usize, data: Vec<u8>) {
        if reg >= self.registers.len() {
            self.registers.resize(reg + 1, Vec::new());
        }
        self.registers[reg] = data;
    }

    /// Reads register `reg` (empty slice if never written).
    pub fn register(&self, reg: usize) -> &[u8] {
        self.registers.get(reg).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_pager::PageSize;

    fn proc() -> Process {
        Process::new(
            Pid::new(1),
            Program::compute_ms(1),
            AddressSpace::zeroed(64, PageSize::new(16)),
            PredicateSet::new(),
        )
    }

    #[test]
    fn new_process_is_runnable() {
        let p = proc();
        assert_eq!(p.state, ProcState::Runnable);
        assert!(!p.is_zombie());
        assert!(!p.at_end());
        assert_eq!(p.pc, 0);
    }

    #[test]
    fn registers_grow_on_demand() {
        let mut p = proc();
        assert_eq!(p.register(3), &[] as &[u8]);
        p.set_register(12, vec![1, 2]);
        assert_eq!(p.register(12), &[1, 2]);
        assert_eq!(p.register(100), &[] as &[u8]);
    }

    #[test]
    fn exit_status_accessors() {
        let t = SimTime::from_nanos(5);
        assert!(ExitStatus::Completed { at: t }.is_success());
        assert!(!ExitStatus::Failed { at: t }.is_success());
        assert!(!ExitStatus::TooLate { at: t }.is_success());
        assert_eq!(ExitStatus::Eliminated { at: t }.at(), t);
    }

    #[test]
    fn at_end_after_pc_advance() {
        let mut p = proc();
        p.pc = 1;
        assert!(p.at_end());
    }
}
