//! # altx-kernel — the simulated speculative-execution kernel
//!
//! This crate is the heart of the reproduction: a deterministic,
//! virtual-time operating-system kernel implementing the paper's process
//! management design (§3.2):
//!
//! * **`alt_spawn(n)` / `alt_wait(timeout)`** — expressed as the
//!   [`Op::AltBlock`](program::Op) program operation: the parent forks one
//!   copy-on-write child per alternative, blocks, and the first child
//!   whose guard holds synchronizes; the parent *absorbs* the winner's
//!   page map and continues seamlessly.
//! * **Sibling elimination** (§3.2.1) — synchronous or asynchronous
//!   ([`program::EliminationPolicy`]), with teardown costs charged per the
//!   machine profile.
//! * **At-most-once synchronization** — late synchronizers are told "too
//!   late" and terminate themselves.
//! * **Predicates** (§3.3) — every alternate runs under sibling-rivalry
//!   assumptions; world-splitting message receipt (§3.4.2) clones the
//!   receiver; predicate resolution eliminates doomed worlds.
//! * **Sources** — processes with unresolved predicates block on source
//!   access (§3.4.2's side-effect restriction).
//!
//! Processes execute [`program::Program`]s — small op-lists (compute,
//! read/write memory, send/recv, alt-block, source access) — against a
//! shared virtual clock, a configurable number of CPUs, and a
//! [`MachineProfile`](altx_pager::MachineProfile) cost model, so every
//! experiment in the paper's §4 is reproducible with calibrated costs.
//!
//! # Example: racing three alternatives
//!
//! ```
//! use altx_des::SimDuration;
//! use altx_kernel::program::{AltBlockSpec, Alternative, GuardSpec, Op, Program};
//! use altx_kernel::{Kernel, KernelConfig};
//!
//! let block = AltBlockSpec::new(vec![
//!     Alternative::new(GuardSpec::Const(true), Program::compute_ms(30)),
//!     Alternative::new(GuardSpec::Const(true), Program::compute_ms(10)),
//!     Alternative::new(GuardSpec::Const(true), Program::compute_ms(20)),
//! ]);
//! let program = Program::new(vec![Op::AltBlock(block)]);
//!
//! let mut kernel = Kernel::new(KernelConfig::default());
//! let root = kernel.spawn(program, 64 * 1024);
//! let report = kernel.run();
//!
//! // The fastest alternative (index 1) wins.
//! let outcome = &report.block_outcomes(root)[0];
//! assert_eq!(outcome.winner, Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod process;
pub mod program;
pub mod trace;

pub use kernel::{BlockOutcome, Kernel, KernelConfig, RunReport};
pub use process::{ExitStatus, ProcState};
pub use program::{AltBlockSpec, Alternative, EliminationPolicy, GuardSpec, Op, Program, Target};
pub use trace::{chrome_trace_json, TraceEvent};
