//! Property-based tests of the kernel's racing semantics.
//!
//! These encode the paper's §2/§3.2 contract as machine-checked laws:
//! whatever the alternative times, guards, CPU count, machine profile, or
//! elimination policy, a block must select *at most one* alternative,
//! select *some* alternative iff one can succeed, account for every
//! spawned child, and do all of it deterministically.

use altx_check::{check, CaseRng};
use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, EliminationPolicy, GuardSpec, Kernel, KernelConfig, Op, Program,
    TraceEvent,
};
use altx_pager::MachineProfile;

#[derive(Debug, Clone)]
struct AltSpec {
    compute_ms: u64,
    guard_passes: bool,
    dirty_pages: usize,
}

fn arb_alt(rng: &mut CaseRng) -> AltSpec {
    AltSpec {
        compute_ms: rng.u64_in(1, 200),
        guard_passes: rng.bool(),
        dirty_pages: rng.usize_in(0, 8),
    }
}

fn run_race(
    alts: &[AltSpec],
    cpus: usize,
    sync_elim: bool,
) -> (altx_kernel::RunReport, altx_predicates::Pid) {
    let alternatives: Vec<Alternative> = alts
        .iter()
        .map(|a| {
            let mut ops = vec![Op::Compute(SimDuration::from_millis(a.compute_ms))];
            if a.dirty_pages > 0 {
                ops.push(Op::TouchPages {
                    first: 0,
                    count: a.dirty_pages,
                });
            }
            Alternative::new(GuardSpec::Const(a.guard_passes), Program::new(ops))
        })
        .collect();
    let policy = if sync_elim {
        EliminationPolicy::Synchronous
    } else {
        EliminationPolicy::Asynchronous
    };
    let spec = AltBlockSpec::new(alternatives).with_elimination(policy);
    let mut kernel = Kernel::new(KernelConfig {
        cpus,
        profile: MachineProfile::hp_9000_350(),
        quantum: SimDuration::from_millis(5),
        seed: 7,
        ipc_latency: SimDuration::ZERO,
    });
    let root = kernel.spawn(Program::new(vec![Op::AltBlock(spec)]), 64 * 1024);
    let report = kernel.run();
    (report, root)
}

/// Success iff some guard can pass; at most one synchronization; all
/// children accounted for.
#[test]
fn selection_contract() {
    check("selection_contract", 48, |rng| {
        let alts = rng.vec(1, 7, arb_alt);
        let cpus = rng.usize_in(1, 9);
        let sync_elim = rng.bool();
        let (report, root) = run_race(&alts, cpus, sync_elim);
        let outcome = &report.block_outcomes(root)[0];
        let any_can_pass = alts.iter().any(|a| a.guard_passes);

        assert_eq!(outcome.failed, !any_can_pass);
        if let Some(w) = outcome.winner {
            assert!(alts[w].guard_passes, "winner's guard must hold");
        }

        let syncs = report
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Synchronized { .. }))
            .count();
        assert_eq!(syncs, usize::from(any_can_pass));

        // Every spawned child terminates: wins, aborts, is eliminated, or
        // is told too-late. None left running or blocked.
        assert!(report.deadlocked.is_empty(), "{:?}", report.deadlocked);
        let terminated = report
            .trace()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Eliminated { .. }
                        | TraceEvent::TooLate { .. }
                        | TraceEvent::Aborted { .. }
                        | TraceEvent::Synchronized { .. }
                )
            })
            .count();
        assert_eq!(terminated, alts.len());
    });
}

/// With ample CPUs and all guards passing, the winner is an
/// alternative minimizing dispatch-order-adjusted finish time:
/// ready(i) + compute(i), where ready is staggered by one fork per
/// earlier alternative.
#[test]
fn fastest_first_modulo_spawn_stagger() {
    check("fastest_first_modulo_spawn_stagger", 48, |rng| {
        let times = rng.vec(1, 6, |r| r.u64_in(1, 500));
        let alts: Vec<AltSpec> = times
            .iter()
            .map(|&t| AltSpec {
                compute_ms: t,
                guard_passes: true,
                dirty_pages: 0,
            })
            .collect();
        let (report, root) = run_race(&alts, 16, false);
        let outcome = &report.block_outcomes(root)[0];
        let w = outcome.winner.expect("all guards pass");

        // Model the stagger: ready_i = (i+1) fork costs; fork(16 pages)
        // on the HP profile.
        let profile = MachineProfile::hp_9000_350();
        let fork = profile.fork_cost(16).as_nanos();
        let finish = |i: usize| (i as u64 + 1) * fork + times[i] * 1_000_000;
        let best = (0..times.len()).map(finish).min().expect("non-empty");
        // The winner must be within one sync window of the best (ties
        // can legitimately go to either; sync costs are identical).
        assert!(
            finish(w)
                <= best
                    + profile.syscall_cost().as_nanos()
                    + profile.context_switch_cost().as_nanos(),
            "winner {} finish {} vs best {}",
            w,
            finish(w),
            best
        );
    });
}

/// Determinism: identical inputs produce identical reports.
#[test]
fn runs_are_deterministic() {
    check("runs_are_deterministic", 48, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let cpus = rng.usize_in(1, 5);
        let (a, root_a) = run_race(&alts, cpus, false);
        let (b, root_b) = run_race(&alts, cpus, false);
        assert_eq!(root_a, root_b);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.block_outcomes(root_a), b.block_outcomes(root_b));
        assert_eq!(a.trace().len(), b.trace().len());
    });
}

/// Elimination policy never changes the selected winner, only the
/// parent's resume time (sync ≥ async).
#[test]
fn elimination_policy_is_performance_only() {
    check("elimination_policy_is_performance_only", 48, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let (sync, root_s) = run_race(&alts, 8, true);
        let (async_, root_a) = run_race(&alts, 8, false);
        let so = &sync.block_outcomes(root_s)[0];
        let ao = &async_.block_outcomes(root_a)[0];
        assert_eq!(so.winner, ao.winner);
        assert_eq!(so.failed, ao.failed);
        assert_eq!(so.decided_at, ao.decided_at);
        assert!(so.parent_resumed_at >= ao.parent_resumed_at);
    });
}

/// Cross-validation against the analytic model: on frictionless
/// hardware with ample CPUs, the race's elapsed time is *exactly*
/// the fastest alternative's time — τ(C_best) with τ(overhead) = 0.
#[test]
fn frictionless_race_equals_analytic_best() {
    check("frictionless_race_equals_analytic_best", 48, |rng| {
        let times = rng.vec(1, 8, |r| r.u64_in(1, 1_000));
        let alternatives: Vec<Alternative> = times
            .iter()
            .map(|&t| {
                Alternative::new(
                    GuardSpec::Const(true),
                    Program::compute(SimDuration::from_millis(t)),
                )
            })
            .collect();
        let mut kernel = Kernel::new(KernelConfig {
            cpus: 16,
            profile: MachineProfile::frictionless(),
            quantum: SimDuration::from_millis(5),
            seed: 1,
            ipc_latency: SimDuration::ZERO,
        });
        let root = kernel.spawn(
            Program::new(vec![Op::AltBlock(AltBlockSpec::new(alternatives))]),
            4 * 1024,
        );
        let report = kernel.run();
        let o = &report.block_outcomes(root)[0];
        let best = *times.iter().min().expect("non-empty");
        assert_eq!(o.elapsed(), SimDuration::from_millis(best));
        // And the winner is a minimal-time alternative.
        assert_eq!(times[o.winner.expect("all pass")], best);
        // CPU-busy accounting: on frictionless hardware, busy time is
        // exactly the compute performed before the decision — at least
        // the winner's, at most every alternative running to the
        // decision instant.
        assert!(report.stats.cpu_busy >= SimDuration::from_millis(best));
        assert!(report.stats.cpu_busy <= SimDuration::from_millis(best) * times.len() as u64);
    });
}

/// Fewer CPUs never makes the race finish earlier (virtual
/// concurrency is a pessimization, §4.2).
#[test]
fn more_cpus_never_hurt() {
    check("more_cpus_never_hurt", 48, |rng| {
        let times = rng.vec(2, 5, |r| r.u64_in(20, 200));
        let alts: Vec<AltSpec> = times
            .iter()
            .map(|&t| AltSpec {
                compute_ms: t,
                guard_passes: true,
                dirty_pages: 0,
            })
            .collect();
        let (one, r1) = run_race(&alts, 1, false);
        let (many, rm) = run_race(&alts, 16, false);
        let t1 = one.block_outcomes(r1)[0].elapsed();
        let tm = many.block_outcomes(rm)[0].elapsed();
        assert!(tm <= t1, "16 cpus {tm} vs 1 cpu {t1}");
    });
}
