//! Fuzz-style torture test: random nested alternative-block programs,
//! with the §2/§3.2 invariants checked on every run.
//!
//! The generator builds arbitrary trees of alt blocks (nested up to 3
//! deep) whose leaves are compute/write work with constant guards. For
//! any such tree the kernel must terminate every process, synchronize at
//! most once per block, pick only guard-satisfying winners, and be
//! bit-for-bit deterministic.

use altx_check::{check, CaseRng};
use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program, TraceEvent,
};

/// A generated alternative: either leaf work or a nested block.
#[derive(Debug, Clone)]
enum GenAlt {
    Leaf {
        compute_ms: u64,
        dirty_pages: usize,
        guard: bool,
    },
    Nested {
        inner: Vec<GenAlt>,
        guard: bool,
    },
}

impl GenAlt {
    fn guard(&self) -> bool {
        match self {
            GenAlt::Leaf { guard, .. } | GenAlt::Nested { guard, .. } => *guard,
        }
    }

    fn to_alternative(&self) -> Alternative {
        match self {
            GenAlt::Leaf {
                compute_ms,
                dirty_pages,
                guard,
            } => {
                let mut ops = vec![Op::Compute(SimDuration::from_millis(*compute_ms))];
                if *dirty_pages > 0 {
                    ops.push(Op::TouchPages {
                        first: 0,
                        count: *dirty_pages,
                    });
                }
                Alternative::new(GuardSpec::Const(*guard), Program::new(ops))
            }
            GenAlt::Nested { inner, guard } => {
                let block = AltBlockSpec::new(inner.iter().map(GenAlt::to_alternative).collect());
                Alternative::new(
                    GuardSpec::Const(*guard),
                    Program::new(vec![Op::AltBlock(block)]),
                )
            }
        }
    }

    fn count_blocks(&self) -> usize {
        match self {
            GenAlt::Leaf { .. } => 0,
            GenAlt::Nested { inner, .. } => {
                1 + inner.iter().map(GenAlt::count_blocks).sum::<usize>()
            }
        }
    }
}

/// Generates a leaf or (with decreasing probability by depth) a nested
/// block of 1–3 children — the same shape distribution the proptest
/// version produced with `prop_recursive(3, 12, 3, ...)`.
fn arb_alt(rng: &mut CaseRng, depth: usize) -> GenAlt {
    if depth < 3 && rng.chance(0.35) {
        let inner = rng.vec(1, 4, |r| arb_alt(r, depth + 1));
        GenAlt::Nested {
            inner,
            guard: rng.bool(),
        }
    } else {
        GenAlt::Leaf {
            compute_ms: rng.u64_in(1, 60),
            dirty_pages: rng.usize_in(0, 4),
            guard: rng.bool(),
        }
    }
}

#[test]
fn nested_block_trees_preserve_all_invariants() {
    check("nested_block_trees_preserve_all_invariants", 48, |rng| {
        let alts = rng.vec(1, 4, |r| arb_alt(r, 0));
        let cpus = rng.usize_in(1, 6);
        let spec = AltBlockSpec::new(alts.iter().map(GenAlt::to_alternative).collect());
        let run = |seed: u64| {
            let mut kernel = Kernel::new(KernelConfig {
                cpus,
                seed,
                ..KernelConfig::default()
            });
            let root = kernel.spawn(Program::new(vec![Op::AltBlock(spec.clone())]), 16 * 1024);
            (kernel.run(), root)
        };
        let (report, root) = run(1);

        // 1. Everything terminates: no deadlocks, no stuck processes.
        assert!(report.deadlocked.is_empty(), "{:?}", report.deadlocked);
        assert!(report.exit(root).expect("root exits").is_success());

        // 2. The top block's outcome matches the generated guards: it
        //    succeeds iff some top-level alternative's guard is true
        //    (nested failures do not abort an alternative whose own
        //    guard holds).
        let top = &report.block_outcomes(root)[0];
        let any_pass = alts.iter().any(|a| a.guard());
        assert_eq!(top.failed, !any_pass);
        if let Some(w) = top.winner {
            assert!(alts[w].guard(), "winner's guard must hold");
        }

        // 3. At most one synchronization per (parent, block) pair.
        let mut syncs = std::collections::HashMap::new();
        for e in report.trace() {
            if let TraceEvent::Synchronized { parent, .. } = e {
                *syncs.entry(*parent).or_insert(0usize) += 1;
            }
        }
        // A parent runs blocks sequentially, so per-parent sync counts
        // must not exceed its block count; the root runs exactly one.
        assert!(syncs.get(&root).copied().unwrap_or(0) <= 1);

        // 4. Total blocks decided ≤ blocks in the tree + 1 (some nested
        //    blocks never run when their alternative loses early).
        let total_blocks: usize = 1 + alts.iter().map(GenAlt::count_blocks).sum::<usize>();
        let decided: usize = report
            .trace()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Synchronized { .. } | TraceEvent::BlockFailed { .. }
                )
            })
            .count();
        assert!(decided <= total_blocks, "{decided} > {total_blocks}");

        // 5. Every spawned process reached a terminal trace event.
        let spawned: std::collections::BTreeSet<_> = report
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Spawned {
                    pid,
                    parent: Some(_),
                    ..
                } => Some(*pid),
                _ => None,
            })
            .collect();
        let terminated: std::collections::BTreeSet<_> = report
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Synchronized { winner, .. } => Some(*winner),
                TraceEvent::Aborted { pid, .. }
                | TraceEvent::Eliminated { pid, .. }
                | TraceEvent::TooLate { pid, .. } => Some(*pid),
                _ => None,
            })
            .collect();
        assert!(
            spawned.is_subset(&terminated),
            "leaked processes: {:?}",
            spawned.difference(&terminated).collect::<Vec<_>>()
        );

        // 6. Determinism.
        let (again, root2) = run(1);
        assert_eq!(root, root2);
        assert_eq!(report.finished_at, again.finished_at);
        assert_eq!(report.stats, again.stats);
    });
}
