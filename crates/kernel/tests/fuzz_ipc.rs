//! Fuzz-style IPC test: random (but well-formed) send/receive meshes
//! between ordinary processes, plus speculative senders, with delivery
//! and containment invariants checked.
//!
//! "Well-formed" means every `Recv` has a guaranteed matching unconditional
//! `Send`, so quiescence with a deadlock indicates a kernel bug, not a
//! workload artifact. Speculative senders (alternates inside a racing
//! block) inject additional predicated messages that may split receivers;
//! the invariant is that splits always resolve back to exactly one world
//! per receiver.

use altx_check::{check, CaseRng};
use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program, Target, TraceEvent,
};

#[derive(Debug, Clone)]
struct Mesh {
    /// For each receiver r: the list of (sender index, payload byte).
    /// Every listed sender sends exactly these messages, in order.
    inbox_plan: Vec<Vec<(usize, u8)>>,
    n_senders: usize,
    /// Compute padding before each sender begins (ms).
    sender_delay_ms: Vec<u64>,
    /// Whether to add a racing block whose alternates also message
    /// receiver 0 speculatively.
    speculative_noise: bool,
    ipc_latency_ms: u64,
}

fn arb_mesh(rng: &mut CaseRng) -> Mesh {
    let nr = rng.usize_in(1, 4);
    let ns = rng.usize_in(1, 4);
    let delays: Vec<u64> = (0..4).map(|_| rng.u64_in(0, 10)).collect();
    let speculative_noise = rng.bool();
    let ipc_latency_ms = rng.u64_in(0, 5);
    let raw = rng.vec(0, 12, |r| (r.usize_in(0, 4), r.u8()));
    let mut inbox_plan = vec![Vec::new(); nr];
    for (i, (s, payload)) in raw.into_iter().enumerate() {
        inbox_plan[i % nr].push((s % ns, payload));
    }
    Mesh {
        inbox_plan,
        n_senders: ns,
        sender_delay_ms: delays,
        speculative_noise,
        ipc_latency_ms,
    }
}

fn build_and_run(mesh: &Mesh) -> (altx_kernel::RunReport, Vec<altx_predicates::Pid>, Kernel) {
    let mut kernel = Kernel::new(KernelConfig {
        ipc_latency: SimDuration::from_millis(mesh.ipc_latency_ms),
        ..KernelConfig::default()
    });

    // Receivers: recv exactly the planned number of messages.
    let mut receiver_pids = Vec::new();
    for (r, plan) in mesh.inbox_plan.iter().enumerate() {
        let mut ops = vec![Op::RegisterName(format!("rx{r}"))];
        for k in 0..plan.len() {
            ops.push(Op::Recv { reg: k });
        }
        receiver_pids.push(kernel.spawn(Program::new(ops), 4 * 1024));
    }

    // Senders: after registration settles, send their planned messages in
    // receiver order.
    for s in 0..mesh.n_senders {
        let mut ops = vec![Op::Compute(SimDuration::from_millis(
            20 + mesh.sender_delay_ms[s % mesh.sender_delay_ms.len()],
        ))];
        for (r, plan) in mesh.inbox_plan.iter().enumerate() {
            for &(sender, payload) in plan {
                if sender == s {
                    ops.push(Op::Send {
                        to: Target::Name(format!("rx{r}")),
                        payload: vec![payload],
                    });
                }
            }
        }
        kernel.spawn(Program::new(ops), 4 * 1024);
    }

    // Optional speculative noise: a racing block whose loser messages
    // rx0 before losing.
    if mesh.speculative_noise {
        let noisy = Program::new(vec![
            Op::Send {
                to: Target::Name("rx0".into()),
                payload: vec![0xEE],
            },
            Op::Compute(SimDuration::from_millis(500)),
        ]);
        let quiet = Program::compute_ms(5);
        kernel.spawn(
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(10)),
                Op::AltBlock(AltBlockSpec::new(vec![
                    Alternative::new(GuardSpec::Const(true), noisy),
                    Alternative::new(GuardSpec::Const(true), quiet),
                ])),
            ]),
            4 * 1024,
        );
    }

    let report = kernel.run();
    (report, receiver_pids, kernel)
}

#[test]
fn ipc_meshes_deliver_and_contain() {
    check("ipc_meshes_deliver_and_contain", 40, |rng| {
        let mesh = arb_mesh(rng);
        let (report, receiver_pids, kernel) = build_and_run(&mesh);

        // For every receiver's logical process: exactly one world
        // completes (the mesh guarantees enough unconditional messages).
        for (r, (&rx, plan)) in receiver_pids.iter().zip(&mesh.inbox_plan).enumerate() {
            // Worlds of rx: the original plus split-offs.
            let mut worlds = std::collections::BTreeSet::from([rx]);
            for e in report.trace() {
                if let TraceEvent::WorldSplit {
                    accepting,
                    rejecting,
                    ..
                } = e
                {
                    if worlds.contains(accepting) {
                        worlds.insert(*rejecting);
                    }
                }
            }
            let survivors: Vec<_> = worlds
                .iter()
                .filter(|&&w| report.exit(w).map(|s| s.is_success()).unwrap_or(false))
                .copied()
                .collect();
            assert_eq!(
                survivors.len(),
                1,
                "receiver {r} worlds {worlds:?} must have one survivor"
            );
            let survivor = survivors[0];

            // The survivor received exactly the planned unconditional
            // payloads (multiset equality: order across senders may vary
            // with delays, order within a sender is FIFO).
            let mut got: Vec<u8> = (0..plan.len())
                .map(|k| {
                    let reg = kernel.register_of(survivor, k).expect("world exists");
                    assert!(!reg.is_empty(), "register {k} filled");
                    reg[0]
                })
                .collect();
            let mut want: Vec<u8> = plan.iter().map(|&(_, p)| p).collect();
            got.sort_unstable();
            want.sort_unstable();
            // Speculative noise may have *replaced* one expected payload
            // in the accepting world only if that world died; the
            // survivor's view must contain no 0xEE unless planned.
            if !mesh.speculative_noise || !want.contains(&0xEE) {
                assert!(
                    !got.contains(&0xEE) || want.contains(&0xEE),
                    "loser payload leaked into survivor: {got:?} vs {want:?}"
                );
            }
            assert_eq!(got, want, "receiver {r}");
        }
    });
}
