% Sample knowledge base for the altx Prolog REPL.
%
%   cargo run --release -p altx-prolog --bin altx_prolog crates/prolog/examples/routes.pl
%
% Try:
%   route(vienna, Where)
%   :parallel plan(vienna, lisbon, P)
%   :profile plan(vienna, lisbon, P)
%   findall(C, rail(vienna, C), Neighbours)

rail(vienna, munich).    rail(munich, paris).    rail(paris, madrid).
rail(madrid, lisbon).    rail(vienna, zurich).   rail(zurich, paris).
flight(vienna, lisbon).  flight(munich, madrid).

route(X, Y) :- rail(X, Y).
route(X, Z) :- rail(X, Y), route(Y, Z).

% plan/3: three strategies for getting from X to Y — an OR choice point
% with data-dependent costs.
plan(X, Y, by_rail)   :- route(X, Y).
plan(X, Y, via_hub)   :- route(X, paris), route(paris, Y), X \= paris, Y \= paris.
plan(X, Y, by_flight) :- flight(X, Y).

connected(X, Y) :- plan(X, Y, _), !.
