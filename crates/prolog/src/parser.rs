//! Tokenizer and recursive-descent reader for Prolog programs and
//! queries.
//!
//! Supported syntax: facts and rules (`head :- goal, goal.`), atoms,
//! integers (including negatives), variables (`Uppercase`/`_`), compound
//! terms, list sugar (`[a, b | T]`), parenthesized expressions, and the
//! standard binary operators at their conventional precedences:
//!
//! * 900 (prefix): `\+` (negation as failure)
//! * 700 (non-associative): `=`, `\=`, `<`, `=<`, `>`, `>=`, `=:=`,
//!   `=\=`, `is`
//! * 500 (left): `+`, `-`
//! * 400 (left): `*`, `//`, `mod`
//!
//! The cut `!` parses as an atom and is given its committed-choice
//! semantics by the solver. Line comments start with `%`.

use crate::term::{Term, VarId};
use std::collections::HashMap;
use std::fmt;

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A clause as read from source: head, body goals, and how many distinct
/// variables it uses.
#[derive(Debug, Clone, PartialEq)]
pub struct RawClause {
    /// The clause head.
    pub head: Term,
    /// The body goals (empty for a fact).
    pub body: Vec<Term>,
    /// Number of variables `0..nvars` used by head and body.
    pub nvars: usize,
}

/// A parsed query: goals plus the named variables the caller may ask
/// about.
#[derive(Debug, Clone, PartialEq)]
pub struct RawQuery {
    /// The conjunction of goals.
    pub goals: Vec<Term>,
    /// Name → variable id for the query's named variables.
    pub var_names: HashMap<String, VarId>,
    /// Number of variables used.
    pub nvars: usize,
}

/// Parses a whole program (sequence of clauses).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_program(src: &str) -> Result<Vec<RawClause>, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let mut clauses = Vec::new();
    while !p.at_end() {
        clauses.push(p.clause()?);
    }
    Ok(clauses)
}

/// Parses a query: a conjunction of goals, optionally ending with `.`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_query(src: &str) -> Result<RawQuery, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let goals = p.conjunction()?;
    if p.peek() == Some(&Tok::ClauseEnd) {
        p.next();
    }
    if !p.at_end() {
        return Err(p.error("trailing input after query"));
    }
    Ok(RawQuery {
        goals,
        var_names: p.vars,
        nvars: p.next_var,
    })
}

// ---------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Atom(String),
    Var(String),
    Int(i64),
    Op(&'static str),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Bar,
    Neck, // :-
    ClauseEnd,
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBracket, i));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBracket, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '|' => {
                out.push((Tok::Bar, i));
                i += 1;
            }
            '!' => {
                out.push((Tok::Atom("!".to_string()), i));
                i += 1;
            }
            '.' => {
                // End of clause iff followed by whitespace or EOF.
                let next = bytes.get(i + 1).copied();
                if next.is_none() || next.is_some_and(|b| (b as char).is_whitespace() || b == b'%')
                {
                    out.push((Tok::ClauseEnd, i));
                    i += 1;
                } else {
                    return Err(ParseError {
                        message: "unexpected '.' (not a clause end)".into(),
                        offset: i,
                    });
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push((Tok::Neck, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected ':-'".into(),
                        offset: i,
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().map_err(|_| ParseError {
                    message: "integer overflow".into(),
                    offset: start,
                })?;
                out.push((Tok::Int(n), start));
            }
            'a'..='z' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match word {
                    "is" => out.push((Tok::Op("is"), start)),
                    "mod" => out.push((Tok::Op("mod"), start)),
                    _ => out.push((Tok::Atom(word.to_string()), start)),
                }
            }
            'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Var(src[start..i].to_string()), start));
            }
            '=' => {
                if src[i..].starts_with("=<") {
                    out.push((Tok::Op("=<"), i));
                    i += 2;
                } else if src[i..].starts_with("=:=") {
                    out.push((Tok::Op("=:="), i));
                    i += 3;
                } else if src[i..].starts_with("=\\=") {
                    out.push((Tok::Op("=\\="), i));
                    i += 3;
                } else {
                    out.push((Tok::Op("="), i));
                    i += 1;
                }
            }
            '\\' => {
                if src[i..].starts_with("\\=") {
                    out.push((Tok::Op("\\="), i));
                    i += 2;
                } else if src[i..].starts_with("\\+") {
                    out.push((Tok::Op("\\+"), i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "unexpected '\\'".into(),
                        offset: i,
                    });
                }
            }
            '<' => {
                out.push((Tok::Op("<"), i));
                i += 1;
            }
            '>' => {
                if src[i..].starts_with(">=") {
                    out.push((Tok::Op(">="), i));
                    i += 2;
                } else {
                    out.push((Tok::Op(">"), i));
                    i += 1;
                }
            }
            '+' => {
                out.push((Tok::Op("+"), i));
                i += 1;
            }
            '-' => {
                out.push((Tok::Op("-"), i));
                i += 1;
            }
            '*' => {
                out.push((Tok::Op("*"), i));
                i += 1;
            }
            '/' => {
                if src[i..].starts_with("//") {
                    out.push((Tok::Op("//"), i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "unsupported operator '/' (use '//')".into(),
                        offset: i,
                    });
                }
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                });
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
    vars: HashMap<String, VarId>,
    next_var: usize,
}

const COMPARISONS: &[&str] = &["=", "\\=", "<", "=<", ">", ">=", "=:=", "=\\=", "is"];

impl Parser {
    fn new(tokens: Vec<(Tok, usize)>) -> Self {
        Parser {
            tokens,
            pos: 0,
            vars: HashMap::new(),
            next_var: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, o)| *o)
            .unwrap_or(0)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            offset: self.offset(),
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.next();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn clause(&mut self) -> Result<RawClause, ParseError> {
        // Fresh variable scope per clause.
        self.vars.clear();
        self.next_var = 0;
        let head = self.expr()?;
        if head.functor_arity().is_none() {
            return Err(self.error("clause head must be an atom or compound"));
        }
        let body = if self.peek() == Some(&Tok::Neck) {
            self.next();
            self.conjunction()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::ClauseEnd, "'.' at end of clause")?;
        Ok(RawClause {
            head,
            body,
            nvars: self.next_var,
        })
    }

    fn conjunction(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut goals = vec![self.expr()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            goals.push(self.expr()?);
        }
        Ok(goals)
    }

    /// Precedence 900: negation-as-failure prefix, then 700 comparisons.
    fn expr(&mut self) -> Result<Term, ParseError> {
        if let Some(Tok::Op("\\+")) = self.peek() {
            self.next();
            let inner = self.expr()?;
            return Ok(Term::compound("\\+", vec![inner]));
        }
        let lhs = self.additive()?;
        if let Some(Tok::Op(op)) = self.peek() {
            if COMPARISONS.contains(op) {
                let op = *op;
                self.next();
                let rhs = self.additive()?;
                return Ok(Term::compound(op, vec![lhs, rhs]));
            }
        }
        Ok(lhs)
    }

    /// Precedence 500: `+`/`-`, left associative.
    fn additive(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.multiplicative()?;
        while let Some(Tok::Op(op @ ("+" | "-"))) = self.peek() {
            let op = *op;
            self.next();
            let rhs = self.multiplicative()?;
            lhs = Term::compound(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    /// Precedence 400: `*`/`//`/`mod`, left associative.
    fn multiplicative(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.primary()?;
        while let Some(Tok::Op(op @ ("*" | "//" | "mod"))) = self.peek() {
            let op = *op;
            self.next();
            let rhs = self.primary()?;
            lhs = Term::compound(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(Term::Int(n)),
            Some(Tok::Op("-")) => match self.next() {
                Some(Tok::Int(n)) => Ok(Term::Int(-n)),
                _ => Err(self.error("expected integer after unary '-'")),
            },
            Some(Tok::Var(name)) => {
                if name == "_" {
                    // Anonymous: fresh every occurrence.
                    let id = self.next_var;
                    self.next_var += 1;
                    Ok(Term::Var(VarId(id)))
                } else {
                    let next_var = &mut self.next_var;
                    let id = *self.vars.entry(name).or_insert_with(|| {
                        let id = VarId(*next_var);
                        *next_var += 1;
                        id
                    });
                    Ok(Term::Var(id))
                }
            }
            Some(Tok::Atom(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.next();
                    let mut args = vec![self.expr()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.next();
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Term::compound(&name, args))
                } else {
                    Ok(Term::atom(&name))
                }
            }
            Some(Tok::LParen) => {
                let t = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(t)
            }
            Some(Tok::LBracket) => self.list_tail(),
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }

    fn list_tail(&mut self) -> Result<Term, ParseError> {
        if self.peek() == Some(&Tok::RBracket) {
            self.next();
            return Ok(Term::nil());
        }
        let mut items = vec![self.expr()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            items.push(self.expr()?);
        }
        let tail = if self.peek() == Some(&Tok::Bar) {
            self.next();
            self.expr()?
        } else {
            Term::nil()
        };
        self.expect(&Tok::RBracket, "']'")?;
        Ok(items
            .into_iter()
            .rev()
            .fold(tail, |acc, item| Term::compound(".", vec![item, acc])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let clauses = parse_program(
            "edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        assert_eq!(clauses.len(), 4);
        assert!(clauses[0].body.is_empty());
        assert_eq!(clauses[3].body.len(), 2);
        assert_eq!(clauses[3].nvars, 3);
        assert_eq!(clauses[2].head.to_string(), "path(_G0, _G1)");
    }

    #[test]
    fn variables_are_scoped_per_clause() {
        let clauses = parse_program("f(X). g(X).").unwrap();
        assert_eq!(clauses[0].nvars, 1);
        assert_eq!(clauses[1].nvars, 1);
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let clauses = parse_program("f(_, _).").unwrap();
        assert_eq!(clauses[0].nvars, 2);
        let Term::Compound { args, .. } = &clauses[0].head else {
            panic!("compound head");
        };
        assert_ne!(args[0], args[1]);
    }

    #[test]
    fn parses_lists() {
        let q = parse_query("member(X, [1, 2, 3])").unwrap();
        assert_eq!(q.goals[0].to_string(), "member(_G0, [1, 2, 3])");
        let q = parse_query("append([1 | T], Y, Z)").unwrap();
        assert_eq!(q.goals[0].to_string(), "append([1|_G0], _G1, _G2)");
        let q = parse_query("f([])").unwrap();
        assert_eq!(q.goals[0].to_string(), "f([])");
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let q = parse_query("X is 1 + 2 * 3").unwrap();
        assert_eq!(q.goals[0].to_string(), "is(_G0, +(1, *(2, 3)))");
        let q = parse_query("X is (1 + 2) * 3").unwrap();
        assert_eq!(q.goals[0].to_string(), "is(_G0, *(+(1, 2), 3))");
    }

    #[test]
    fn parses_comparisons() {
        for op in ["=", "\\=", "<", "=<", ">", ">=", "=:=", "=\\="] {
            let q = parse_query(&format!("1 {op} 2")).unwrap();
            assert_eq!(q.goals[0].functor_arity(), Some((op, 2)));
        }
    }

    #[test]
    fn negative_integers() {
        let q = parse_query("f(-5)").unwrap();
        assert_eq!(q.goals[0].to_string(), "f(-5)");
    }

    #[test]
    fn comments_are_skipped() {
        let clauses = parse_program("% a comment\nf(a). % trailing\n").unwrap();
        assert_eq!(clauses.len(), 1);
    }

    #[test]
    fn query_var_names_are_exposed() {
        let q = parse_query("path(a, Where), edge(Where, Next)").unwrap();
        assert_eq!(q.goals.len(), 2);
        assert!(q.var_names.contains_key("Where"));
        assert!(q.var_names.contains_key("Next"));
        assert_eq!(q.nvars, 2);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_program("f(a)").unwrap_err();
        assert!(err.message.contains("'.'"), "{err}");
        let err = parse_program("f(a) :- .").unwrap_err();
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn rejects_bad_heads() {
        assert!(parse_program("42.").is_err());
        assert!(parse_program("X.").is_err());
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = parse_program("f(a) ; g(b).").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
    }
}
