//! Unification with trail-based backtracking.
//!
//! §5.2: "Many normal operations are subsumed by the unification
//! algorithm by which Prolog attempts to satisfy predicates; variables
//! are bound during the unification process to values which caused the
//! predicates to become true."

use crate::term::{Term, VarId};

/// A growable variable store with a trail for cheap backtracking.
///
/// # Example
///
/// ```
/// use altx_prolog::{Bindings, Term};
///
/// let mut b = Bindings::new();
/// b.ensure(2);
/// assert!(b.unify(&Term::var(0), &Term::atom("elrod")));
/// assert_eq!(b.resolve(&Term::var(0)).to_string(), "elrod");
/// ```
#[derive(Debug, Clone)]
pub struct Bindings {
    slots: Vec<Option<Term>>,
    trail: Vec<VarId>,
    /// Unification attempts performed (the work metric behind the
    /// OR-parallel cost model).
    pub unifications: u64,
    /// Whether `unify` performs the occurs check (default: true).
    /// Disabling it matches classic Prolog's default for speed, at the
    /// price of allowing cyclic ("rational") terms that
    /// [`resolve`](Self::resolve) cannot materialize.
    pub occurs_check: bool,
}

impl Default for Bindings {
    fn default() -> Self {
        Bindings {
            slots: Vec::new(),
            trail: Vec::new(),
            unifications: 0,
            occurs_check: true,
        }
    }
}

/// A restore point for backtracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrailMark(usize);

impl Bindings {
    /// Creates an empty store.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Ensures slots exist for variables `0..n`.
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no variables exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Allocates `count` fresh variables, returning the first new id.
    pub fn fresh(&mut self, count: usize) -> usize {
        let base = self.slots.len();
        self.slots.resize(base + count, None);
        base
    }

    /// Current trail position, for later [`undo_to`](Self::undo_to).
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.trail.len())
    }

    /// Undoes all bindings made since `mark`.
    pub fn undo_to(&mut self, mark: TrailMark) {
        while self.trail.len() > mark.0 {
            let var = self.trail.pop().expect("trail non-empty");
            self.slots[var.0] = None;
        }
    }

    /// Follows variable chains until a non-variable term or an unbound
    /// variable is reached (shallow walk — does not descend into
    /// compounds).
    pub fn walk<'a>(&'a self, term: &'a Term) -> &'a Term {
        let mut cur = term;
        while let Term::Var(v) = cur {
            match self.slots.get(v.0).and_then(Option::as_ref) {
                Some(bound) => cur = bound,
                None => return cur,
            }
        }
        cur
    }

    /// Fully substitutes bindings into `term`, producing a term whose
    /// remaining variables are genuinely unbound.
    pub fn resolve(&self, term: &Term) -> Term {
        let walked = self.walk(term);
        match walked {
            Term::Compound { functor, args } => Term::Compound {
                functor: functor.clone(),
                args: args.iter().map(|a| self.resolve(a)).collect(),
            },
            other => other.clone(),
        }
    }

    fn bind(&mut self, var: VarId, term: Term) {
        debug_assert!(self.slots[var.0].is_none(), "rebinding a bound variable");
        self.slots[var.0] = Some(term);
        self.trail.push(var);
    }

    /// Unifies `a` and `b`, binding variables as needed. On failure the
    /// bindings are left as they were (internal bindings are undone).
    pub fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let mark = self.mark();
        if self.unify_inner(a, b) {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    fn unify_inner(&mut self, a: &Term, b: &Term) -> bool {
        self.unifications += 1;
        let a = self.walk(a).clone();
        let b = self.walk(b).clone();
        match (a, b) {
            (Term::Var(x), Term::Var(y)) if x == y => true,
            (Term::Var(x), t) => {
                if self.occurs_check && self.occurs(x, &t) {
                    return false;
                }
                self.bind(x, t);
                true
            }
            (t, Term::Var(y)) => {
                if self.occurs_check && self.occurs(y, &t) {
                    return false;
                }
                self.bind(y, t);
                true
            }
            (Term::Atom(x), Term::Atom(y)) => x == y,
            (Term::Int(x), Term::Int(y)) => x == y,
            (
                Term::Compound {
                    functor: f,
                    args: xs,
                },
                Term::Compound {
                    functor: g,
                    args: ys,
                },
            ) => {
                if f != g || xs.len() != ys.len() {
                    return false;
                }
                xs.iter().zip(&ys).all(|(x, y)| self.unify_inner(x, y))
            }
            _ => false,
        }
    }

    /// True iff variable `v` is bound (directly or through a chain).
    pub fn is_bound(&self, v: VarId) -> bool {
        !matches!(self.walk(&Term::Var(v)), Term::Var(_))
    }

    /// True iff variable `v` occurs (after walking) in `term`.
    fn occurs(&self, v: VarId, term: &Term) -> bool {
        match self.walk(term) {
            Term::Var(w) => *w == v,
            Term::Atom(_) | Term::Int(_) => false,
            Term::Compound { args, .. } => args.iter().any(|a| self.occurs(v, a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(b: &mut Bindings, n: usize) {
        b.ensure(n);
    }

    #[test]
    fn unify_atoms() {
        let mut b = Bindings::new();
        assert!(b.unify(&Term::atom("a"), &Term::atom("a")));
        assert!(!b.unify(&Term::atom("a"), &Term::atom("b")));
        assert!(!b.unify(&Term::atom("a"), &Term::Int(1)));
    }

    #[test]
    fn unify_binds_variable() {
        let mut b = Bindings::new();
        vars(&mut b, 1);
        assert!(b.unify(&Term::var(0), &Term::atom("elrod")));
        assert!(b.is_bound(VarId(0)));
        assert_eq!(b.resolve(&Term::var(0)), Term::atom("elrod"));
    }

    #[test]
    fn unify_compound_recursively() {
        let mut b = Bindings::new();
        vars(&mut b, 2);
        let lhs = Term::compound("f", vec![Term::var(0), Term::atom("c")]);
        let rhs = Term::compound("f", vec![Term::atom("a"), Term::var(1)]);
        assert!(b.unify(&lhs, &rhs));
        assert_eq!(b.resolve(&Term::var(0)), Term::atom("a"));
        assert_eq!(b.resolve(&Term::var(1)), Term::atom("c"));
    }

    #[test]
    fn failed_unification_undoes_partial_bindings() {
        let mut b = Bindings::new();
        vars(&mut b, 1);
        let lhs = Term::compound("f", vec![Term::var(0), Term::atom("x")]);
        let rhs = Term::compound("f", vec![Term::atom("a"), Term::atom("y")]);
        assert!(!b.unify(&lhs, &rhs));
        assert!(!b.is_bound(VarId(0)), "partial binding rolled back");
    }

    #[test]
    fn variable_chains_walk() {
        let mut b = Bindings::new();
        vars(&mut b, 3);
        assert!(b.unify(&Term::var(0), &Term::var(1)));
        assert!(b.unify(&Term::var(1), &Term::var(2)));
        assert!(b.unify(&Term::var(2), &Term::Int(9)));
        assert_eq!(b.resolve(&Term::var(0)), Term::Int(9));
    }

    #[test]
    fn arity_mismatch_fails() {
        let mut b = Bindings::new();
        assert!(!b.unify(
            &Term::compound("f", vec![Term::Int(1)]),
            &Term::compound("f", vec![Term::Int(1), Term::Int(2)]),
        ));
    }

    #[test]
    fn trail_marks_nest() {
        let mut b = Bindings::new();
        vars(&mut b, 2);
        let outer = b.mark();
        assert!(b.unify(&Term::var(0), &Term::Int(1)));
        let inner = b.mark();
        assert!(b.unify(&Term::var(1), &Term::Int(2)));
        b.undo_to(inner);
        assert!(b.is_bound(VarId(0)));
        assert!(!b.is_bound(VarId(1)));
        b.undo_to(outer);
        assert!(!b.is_bound(VarId(0)));
    }

    #[test]
    fn fresh_allocates_new_ids() {
        let mut b = Bindings::new();
        vars(&mut b, 2);
        let base = b.fresh(3);
        assert_eq!(base, 2);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn unification_count_increments() {
        let mut b = Bindings::new();
        let before = b.unifications;
        b.unify(&Term::atom("a"), &Term::atom("a"));
        assert!(b.unifications > before);
    }

    #[test]
    fn same_var_unifies_without_binding() {
        let mut b = Bindings::new();
        vars(&mut b, 1);
        assert!(b.unify(&Term::var(0), &Term::var(0)));
        assert!(!b.is_bound(VarId(0)));
    }

    #[test]
    fn occurs_check_rejects_cyclic_binding() {
        let mut b = Bindings::new();
        vars(&mut b, 1);
        let cyclic = Term::compound("f", vec![Term::var(0)]);
        assert!(!b.unify(&Term::var(0), &cyclic), "X = f(X) must fail");
        assert!(!b.is_bound(VarId(0)), "failed unify leaves X free");
        // Deeper occurrence, both orders.
        let deep = Term::compound("g", vec![Term::compound("f", vec![Term::var(0)])]);
        assert!(!b.unify(&deep, &Term::var(0)));
    }

    #[test]
    fn occurs_check_can_be_disabled() {
        let mut b = Bindings::new();
        b.occurs_check = false;
        vars(&mut b, 1);
        let cyclic = Term::compound("f", vec![Term::var(0)]);
        assert!(b.unify(&Term::var(0), &cyclic), "rational-tree mode binds");
        assert!(b.is_bound(VarId(0)));
    }

    #[test]
    fn occurs_check_follows_chains() {
        let mut b = Bindings::new();
        vars(&mut b, 2);
        assert!(b.unify(&Term::var(0), &Term::var(1)));
        // X0 → X1; binding X1 to f(X0) would be cyclic through the chain.
        let cyclic = Term::compound("f", vec![Term::var(0)]);
        assert!(!b.unify(&Term::var(1), &cyclic));
    }
}
