//! Built-in predicates: unification, arithmetic, comparison.

use crate::term::Term;
use crate::unify::Bindings;
use std::fmt;

/// Evaluation failure for arithmetic goals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Why evaluation failed.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arithmetic error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluates an arithmetic expression term to an integer.
///
/// # Errors
///
/// Returns [`EvalError`] for unbound variables, non-numeric atoms,
/// unknown operators, or division by zero.
pub fn eval_arith(bindings: &Bindings, term: &Term) -> Result<i64, EvalError> {
    let t = bindings.walk(term).clone();
    match t {
        Term::Int(n) => Ok(n),
        Term::Var(_) => Err(EvalError {
            message: "unbound variable in arithmetic expression".into(),
        }),
        Term::Atom(a) => Err(EvalError {
            message: format!("atom '{a}' is not a number"),
        }),
        Term::Compound { functor, args } if args.len() == 2 => {
            let lhs = eval_arith(bindings, &args[0])?;
            let rhs = eval_arith(bindings, &args[1])?;
            match &*functor {
                "+" => Ok(lhs.wrapping_add(rhs)),
                "-" => Ok(lhs.wrapping_sub(rhs)),
                "*" => Ok(lhs.wrapping_mul(rhs)),
                "//" => {
                    if rhs == 0 {
                        Err(EvalError {
                            message: "division by zero".into(),
                        })
                    } else {
                        Ok(lhs.wrapping_div(rhs))
                    }
                }
                "mod" => {
                    if rhs == 0 {
                        Err(EvalError {
                            message: "mod by zero".into(),
                        })
                    } else {
                        Ok(lhs.rem_euclid(rhs))
                    }
                }
                other => Err(EvalError {
                    message: format!("unknown arithmetic operator '{other}'"),
                }),
            }
        }
        Term::Compound { functor, .. } => Err(EvalError {
            message: format!("'{functor}' is not an arithmetic operator"),
        }),
    }
}

/// Whether `name/arity` is a built-in goal handled by [`call_builtin`].
pub fn is_builtin(name: &str, arity: usize) -> bool {
    arity == 2
        && matches!(
            name,
            "=" | "\\=" | "is" | "<" | "=<" | ">" | ">=" | "=:=" | "=\\="
        )
        || (arity == 0 && matches!(name, "true" | "fail" | "false"))
}

/// Executes a built-in goal against the bindings. Returns `Some(true)` on
/// success, `Some(false)` on failure, `None` if the goal is not a
/// built-in. Arithmetic errors count as failure (the goal is
/// unsatisfiable), matching how a query-level error surfaces in this
/// engine.
pub fn call_builtin(bindings: &mut Bindings, goal: &Term) -> Option<bool> {
    let (name, arity) = goal.functor_arity()?;
    if arity == 0 {
        return match name {
            "true" => Some(true),
            "fail" | "false" => Some(false),
            _ => None,
        };
    }
    if arity != 2 {
        return None;
    }
    let Term::Compound { args, .. } = goal else {
        return None;
    };
    let (a, b) = (&args[0], &args[1]);
    match name {
        "=" => Some(bindings.unify(a, b)),
        "\\=" => {
            // Negation of unifiability; must not leave bindings behind.
            let mark = bindings.mark();
            let unified = bindings.unify(a, b);
            bindings.undo_to(mark);
            Some(!unified)
        }
        "is" => match eval_arith(bindings, b) {
            Ok(value) => Some(bindings.unify(a, &Term::Int(value))),
            Err(_) => Some(false),
        },
        "<" | "=<" | ">" | ">=" | "=:=" | "=\\=" => {
            match (eval_arith(bindings, a), eval_arith(bindings, b)) {
                (Ok(x), Ok(y)) => Some(match name {
                    "<" => x < y,
                    "=<" => x <= y,
                    ">" => x > y,
                    ">=" => x >= y,
                    "=:=" => x == y,
                    "=\\=" => x != y,
                    _ => unreachable!(),
                }),
                _ => Some(false),
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn goal(src: &str) -> (Bindings, Term) {
        let q = parse_query(src).expect("valid query");
        let mut b = Bindings::new();
        b.ensure(q.nvars);
        (b, q.goals[0].clone())
    }

    #[test]
    fn eval_precedence_and_ops() {
        let (b, g) = goal("X is 2 + 3 * 4 - 10 // 2");
        let Term::Compound { args, .. } = &g else {
            panic!()
        };
        assert_eq!(eval_arith(&b, &args[1]), Ok(2 + 12 - 5));
    }

    #[test]
    fn eval_mod_is_euclidean() {
        let (b, g) = goal("X is -7 mod 3");
        let Term::Compound { args, .. } = &g else {
            panic!()
        };
        assert_eq!(eval_arith(&b, &args[1]), Ok(2));
    }

    #[test]
    fn eval_errors() {
        let (b, g) = goal("X is Y + 1");
        let Term::Compound { args, .. } = &g else {
            panic!()
        };
        assert!(eval_arith(&b, &args[1]).is_err());
        let (b, g) = goal("X is 1 // 0");
        let Term::Compound { args, .. } = &g else {
            panic!()
        };
        let err = eval_arith(&b, &args[1]).unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    #[test]
    fn builtin_is_binds() {
        let (mut b, g) = goal("X is 6 * 7");
        assert_eq!(call_builtin(&mut b, &g), Some(true));
        assert_eq!(b.resolve(&Term::var(0)), Term::Int(42));
    }

    #[test]
    fn builtin_unify_and_disunify() {
        let (mut b, g) = goal("X = foo");
        assert_eq!(call_builtin(&mut b, &g), Some(true));
        let (mut b, g) = goal("foo \\= bar");
        assert_eq!(call_builtin(&mut b, &g), Some(true));
        let (mut b, g) = goal("foo \\= foo");
        assert_eq!(call_builtin(&mut b, &g), Some(false));
    }

    #[test]
    fn disunify_leaves_no_bindings() {
        let (mut b, g) = goal("X \\= foo");
        // X unifies with foo, so \= fails — and X must stay unbound.
        assert_eq!(call_builtin(&mut b, &g), Some(false));
        assert_eq!(b.resolve(&Term::var(0)), Term::var(0));
    }

    #[test]
    fn comparisons() {
        for (src, expect) in [
            ("1 < 2", true),
            ("2 < 1", false),
            ("2 =< 2", true),
            ("3 > 2", true),
            ("2 >= 3", false),
            ("4 =:= 2 + 2", true),
            ("4 =\\= 2 + 2", false),
        ] {
            let (mut b, g) = goal(src);
            assert_eq!(call_builtin(&mut b, &g), Some(expect), "{src}");
        }
    }

    #[test]
    fn comparison_with_unbound_fails() {
        let (mut b, g) = goal("X < 2");
        assert_eq!(call_builtin(&mut b, &g), Some(false));
    }

    #[test]
    fn non_builtins_return_none() {
        let (mut b, g) = goal("foo(X, Y)");
        assert_eq!(call_builtin(&mut b, &g), None);
        assert!(!is_builtin("foo", 2));
        assert!(is_builtin("is", 2));
        assert!(is_builtin("true", 0));
    }
}
