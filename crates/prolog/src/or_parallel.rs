//! OR-parallel solving: racing the clauses of the top choice point.
//!
//! §5.2: OR-parallelism "maps closely to our problem of attempting
//! alternatives in parallel. The alternatives here are specialized to
//! predicates." When only the first solution is wanted, the clause
//! choices of the query's first goal are mutually exclusive alternatives:
//! each alternate explores one branch on a *copy* of the bindings (no
//! shared-environment pointer chains, no merging — §5.2's solution (4)
//! with the merge made unnecessary by single selection).
//!
//! Three executions are provided:
//!
//! * [`solve_first_parallel`] — real threads, one per branch, shared
//!   cancellation (sibling elimination), first solution wins;
//! * [`profile_branches`] — per-branch work profiles (resolution steps),
//!   the input to the analytic model;
//! * [`simulate_race`] — the same race on the calibrated simulated
//!   kernel, mapping steps to virtual time; used by experiment E8 to
//!   sweep per-process overhead and granularity.

use crate::parser::{parse_query, ParseError};
use crate::solve::{KnowledgeBase, Solution, Solver};
use altx::CancelToken;
use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, EliminationPolicy, GuardSpec, Kernel, KernelConfig, Op, Program,
};
use altx_pager::MachineProfile;
use std::time::Duration;

/// Work profile of one branch of the top-level choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchProfile {
    /// Which matching clause this branch starts with.
    pub clause_index: usize,
    /// Whether the branch yields a solution.
    pub succeeded: bool,
    /// Resolution steps to the branch's first solution, or to exhaustion
    /// if it fails.
    pub steps: u64,
}

/// Result of a threaded OR-parallel query.
#[derive(Debug)]
pub struct OrParallelReport {
    /// The first solution found, if any branch succeeded.
    pub solution: Option<Solution>,
    /// The branch (clause index at the top choice point) that produced
    /// it.
    pub winner_branch: Option<usize>,
    /// Number of branches raced.
    pub branches: usize,
    /// Real wall-clock time.
    pub wall: Duration,
}

/// Profiles every branch of the query's top choice point by solving with
/// the first resolution pinned to each matching clause in turn.
///
/// # Errors
///
/// Returns [`ParseError`] if the query is malformed.
pub fn profile_branches(kb: &KnowledgeBase, query: &str) -> Result<Vec<BranchProfile>, ParseError> {
    let q = parse_query(query)?;
    let n = top_branch_count(kb, &q);
    let mut profiles = Vec::with_capacity(n);
    for k in 0..n {
        let mut solver = Solver::new(kb);
        let sols = solver.solve_restricted(&q, 1, Some(k));
        profiles.push(BranchProfile {
            clause_index: k,
            succeeded: !sols.is_empty(),
            steps: solver.steps(),
        });
    }
    Ok(profiles)
}

fn top_branch_count(kb: &KnowledgeBase, q: &crate::parser::RawQuery) -> usize {
    q.goals
        .first()
        .and_then(|g| g.functor_arity())
        .map(|(name, arity)| kb.matching(name, arity).len())
        .unwrap_or(0)
}

/// Solves for the first solution by racing one OS thread per top-level
/// branch; losing branches are cancelled (sibling elimination).
///
/// Any branch's valid solution may win — exactly the nondeterministic
/// selection the sequential semantics permit.
///
/// # Errors
///
/// Returns [`ParseError`] if the query is malformed.
pub fn solve_first_parallel(
    kb: &KnowledgeBase,
    query: &str,
) -> Result<OrParallelReport, ParseError> {
    let start = std::time::Instant::now();
    let q = parse_query(query)?;
    let n = top_branch_count(kb, &q);
    if n == 0 {
        return Ok(OrParallelReport {
            solution: None,
            winner_branch: None,
            branches: 0,
            wall: start.elapsed(),
        });
    }

    let token = CancelToken::new();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Option<Solution>)>();

    std::thread::scope(|scope| {
        for k in 0..n {
            let tx = tx.clone();
            let token = token.clone();
            let q = q.clone();
            scope.spawn(move || {
                let mut solver = Solver::new(kb);
                solver.cancel = Some(token);
                let solution = solver.solve_restricted(&q, 1, Some(k)).into_iter().next();
                let _ = tx.send((k, solution));
            });
        }
        drop(tx);

        let mut winner: Option<(usize, Solution)> = None;
        for (k, solution) in rx.iter() {
            if let Some(s) = solution {
                if winner.is_none() {
                    token.cancel();
                    winner = Some((k, s));
                }
            }
        }

        Ok(OrParallelReport {
            winner_branch: winner.as_ref().map(|(k, _)| *k),
            solution: winner.map(|(_, s)| s),
            branches: n,
            wall: start.elapsed(),
        })
    })
}

/// Parameters mapping resolution work onto the simulated kernel.
#[derive(Debug, Clone)]
pub struct OrSimConfig {
    /// Virtual time per resolution step (the interpreter's speed).
    pub time_per_step: SimDuration,
    /// Simulated CPUs.
    pub cpus: usize,
    /// Machine cost profile (fork and teardown overheads — "how
    /// aggressively available parallelism is exploited is a function of
    /// the overhead associated with maintaining a process", §5.2).
    pub profile: MachineProfile,
    /// Interpreter image size (address space forked per branch).
    pub image_bytes: usize,
}

impl Default for OrSimConfig {
    fn default() -> Self {
        OrSimConfig {
            time_per_step: SimDuration::from_micros(50),
            cpus: 16,
            profile: MachineProfile::default(),
            image_bytes: 320 * 1024,
        }
    }
}

/// Sequential vs OR-parallel comparison for one query under a cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrRaceComparison {
    /// Virtual time of sequential DFS to the first solution (failed
    /// branches paid in clause order first).
    pub sequential: SimDuration,
    /// Virtual time of the simulated OR-parallel race (fork + race +
    /// selection).
    pub parallel: SimDuration,
    /// `sequential / parallel`.
    pub speedup: f64,
    /// Whether any branch succeeds at all.
    pub satisfiable: bool,
}

/// Runs the OR-parallel race on the simulated kernel: each branch is an
/// alternative whose compute time is `steps × time_per_step` and whose
/// guard is its success; compares with sequential DFS.
pub fn simulate_race(profiles: &[BranchProfile], cfg: &OrSimConfig) -> OrRaceComparison {
    assert!(!profiles.is_empty(), "no branches to race");

    // Sequential DFS: branches are explored in clause order; each failed
    // branch costs its full exhaustion, the first succeeding branch costs
    // its steps-to-first-solution.
    let mut seq_steps: u64 = 0;
    let mut satisfiable = false;
    for p in profiles {
        seq_steps += p.steps;
        if p.succeeded {
            satisfiable = true;
            break;
        }
    }
    let sequential = cfg.time_per_step * seq_steps;

    // Parallel: the kernel race with per-branch success guards.
    let alternatives: Vec<Alternative> = profiles
        .iter()
        .map(|p| {
            Alternative::new(
                GuardSpec::Const(p.succeeded),
                Program::new(vec![Op::Compute(cfg.time_per_step * p.steps)]),
            )
        })
        .collect();
    let block = AltBlockSpec::new(alternatives).with_elimination(EliminationPolicy::Asynchronous);
    let mut kernel = Kernel::new(KernelConfig {
        cpus: cfg.cpus,
        profile: cfg.profile.clone(),
        quantum: SimDuration::from_millis(1),
        seed: 3,
        ipc_latency: SimDuration::ZERO,
    });
    let root = kernel.spawn(Program::new(vec![Op::AltBlock(block)]), cfg.image_bytes);
    let report = kernel.run();
    let outcome = &report.block_outcomes(root)[0];
    let parallel = outcome.elapsed();

    OrRaceComparison {
        sequential,
        parallel,
        speedup: sequential.as_secs_f64() / parallel.as_secs_f64(),
        satisfiable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A database where the first clauses lead into deep failing searches
    /// and a later clause succeeds quickly — the OR-parallel sweet spot.
    const SKEWED: &str = "
        deep(0).
        deep(N) :- N > 0, M is N - 1, deep(M).
        % route/2: three strategies, data-dependent costs.
        route(X, slow) :- deep(X), fail_marker(X).
        route(X, medium) :- deep(X), deep(X), fail_marker(X).
        route(_, fast).
        fail_marker(never).
    ";

    #[test]
    fn profiles_reflect_branch_costs() {
        let kb = KnowledgeBase::parse(SKEWED).unwrap();
        let profiles = profile_branches(&kb, "route(400, R)").unwrap();
        assert_eq!(profiles.len(), 3);
        assert!(!profiles[0].succeeded);
        assert!(!profiles[1].succeeded);
        assert!(profiles[2].succeeded);
        // Branch 1 does roughly double branch 0's work; branch 2 is tiny.
        assert!(profiles[0].steps > 400);
        assert!(profiles[1].steps > profiles[0].steps);
        assert!(profiles[2].steps < 10);
    }

    #[test]
    fn parallel_solve_finds_a_valid_solution() {
        let kb = KnowledgeBase::parse(SKEWED).unwrap();
        let report = solve_first_parallel(&kb, "route(400, R)").unwrap();
        assert_eq!(report.branches, 3);
        let sol = report.solution.expect("satisfiable");
        assert_eq!(sol.binding_str("R").unwrap(), "fast");
        assert_eq!(report.winner_branch, Some(2));
    }

    #[test]
    fn parallel_agrees_with_sequential_on_satisfiability() {
        let kb = KnowledgeBase::parse(SKEWED).unwrap();
        // Unsatisfiable query: every branch fails.
        let report = solve_first_parallel(&kb, "fail_marker(100)").unwrap();
        assert!(report.solution.is_none());
        let mut solver = Solver::new(&kb);
        assert!(solver.solve_str("fail_marker(100)", 1).unwrap().is_empty());
    }

    #[test]
    fn unknown_predicate_races_zero_branches() {
        let kb = KnowledgeBase::parse(SKEWED).unwrap();
        let report = solve_first_parallel(&kb, "nosuch(X)").unwrap();
        assert_eq!(report.branches, 0);
        assert!(report.solution.is_none());
    }

    #[test]
    fn simulated_race_beats_sequential_on_skewed_branches() {
        let kb = KnowledgeBase::parse(SKEWED).unwrap();
        let profiles = profile_branches(&kb, "route(2000, R)").unwrap();
        let cmp = simulate_race(&profiles, &OrSimConfig::default());
        assert!(cmp.satisfiable);
        // Sequential pays both failing branches first; parallel finds the
        // cheap success immediately.
        assert!(cmp.speedup > 2.0, "speedup {}", cmp.speedup);
    }

    #[test]
    fn simulated_race_overhead_dominates_tiny_queries() {
        // All branches trivial: racing cannot pay for the forks.
        let profiles = vec![
            BranchProfile {
                clause_index: 0,
                succeeded: true,
                steps: 2,
            },
            BranchProfile {
                clause_index: 1,
                succeeded: true,
                steps: 2,
            },
        ];
        let cmp = simulate_race(&profiles, &OrSimConfig::default());
        assert!(cmp.speedup < 1.0, "speedup {}", cmp.speedup);
    }

    #[test]
    fn unsatisfiable_race_reports_it() {
        let profiles = vec![
            BranchProfile {
                clause_index: 0,
                succeeded: false,
                steps: 100,
            },
            BranchProfile {
                clause_index: 1,
                succeeded: false,
                steps: 200,
            },
        ];
        let cmp = simulate_race(&profiles, &OrSimConfig::default());
        assert!(!cmp.satisfiable);
        // Sequential pays for everything when all branches fail.
        assert_eq!(cmp.sequential, SimDuration::from_micros(50) * 300);
    }

    #[test]
    #[should_panic(expected = "no branches")]
    fn empty_profiles_panic() {
        simulate_race(&[], &OrSimConfig::default());
    }
}
