//! Prolog terms.

use std::fmt;
use std::sync::Arc;

/// A variable identifier: an index into a [`Bindings`](crate::Bindings)
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// A Prolog term.
///
/// Lists are the conventional sugar over `'.'(Head, Tail)` and the atom
/// `[]`; [`Term::list`] and [`Term::as_list`] convert both ways.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An atom, e.g. `foo`, `[]`.
    Atom(Arc<str>),
    /// An integer.
    Int(i64),
    /// A logic variable.
    Var(VarId),
    /// A compound term `functor(args…)` with arity ≥ 1.
    Compound {
        /// The functor name.
        functor: Arc<str>,
        /// The argument terms (non-empty).
        args: Vec<Term>,
    },
}

impl Term {
    /// Builds an atom.
    pub fn atom(name: &str) -> Term {
        Term::Atom(Arc::from(name))
    }

    /// Builds a variable.
    pub fn var(id: usize) -> Term {
        Term::Var(VarId(id))
    }

    /// Builds a compound term.
    ///
    /// # Panics
    ///
    /// Panics if `args` is empty — a zero-arity "compound" is an atom.
    pub fn compound(functor: &str, args: Vec<Term>) -> Term {
        assert!(
            !args.is_empty(),
            "compound term needs arguments; use an atom"
        );
        Term::Compound {
            functor: Arc::from(functor),
            args,
        }
    }

    /// The empty list atom `[]`.
    pub fn nil() -> Term {
        Term::atom("[]")
    }

    /// Builds a proper list from items.
    pub fn list(items: impl IntoIterator<Item = Term>) -> Term {
        let items: Vec<Term> = items.into_iter().collect();
        items.into_iter().rev().fold(Term::nil(), |tail, head| {
            Term::compound(".", vec![head, tail])
        })
    }

    /// Decomposes a proper list into its items; `None` for improper lists
    /// or non-lists.
    pub fn as_list(&self) -> Option<Vec<&Term>> {
        let mut items = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::Atom(a) if &**a == "[]" => return Some(items),
                Term::Compound { functor, args } if &**functor == "." && args.len() == 2 => {
                    items.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// The functor name and arity of this term, treating atoms as arity
    /// 0. Variables and integers have none.
    pub fn functor_arity(&self) -> Option<(&str, usize)> {
        match self {
            Term::Atom(a) => Some((a, 0)),
            Term::Compound { functor, args } => Some((functor, args.len())),
            _ => None,
        }
    }

    /// True iff the term contains no variables (after substitution).
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Atom(_) | Term::Int(_) => true,
            Term::Compound { args, .. } => args.iter().all(Term::is_ground),
        }
    }

    /// The largest variable id occurring in the term, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Term::Var(VarId(v)) => Some(*v),
            Term::Atom(_) | Term::Int(_) => None,
            Term::Compound { args, .. } => args.iter().filter_map(Term::max_var).max(),
        }
    }

    /// Returns the term with every variable id shifted by `offset` —
    /// clause renaming for resolution.
    pub fn shift_vars(&self, offset: usize) -> Term {
        match self {
            Term::Var(VarId(v)) => Term::Var(VarId(v + offset)),
            Term::Atom(_) | Term::Int(_) => self.clone(),
            Term::Compound { functor, args } => Term::Compound {
                functor: Arc::clone(functor),
                args: args.iter().map(|a| a.shift_vars(offset)).collect(),
            },
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Lists print in bracket sugar.
        if let Some(items) = self.as_list() {
            write!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
            return write!(f, "]");
        }
        match self {
            Term::Atom(a) => write!(f, "{a}"),
            Term::Int(n) => write!(f, "{n}"),
            Term::Var(VarId(v)) => write!(f, "_G{v}"),
            Term::Compound { functor, args } => {
                // Partial lists print as [H|T].
                if &**functor == "." && args.len() == 2 {
                    return write!(f, "[{}|{}]", args[0], args[1]);
                }
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Term::atom("foo").to_string(), "foo");
        assert_eq!(Term::Int(42).to_string(), "42");
        assert_eq!(Term::var(3).to_string(), "_G3");
        assert_eq!(
            Term::compound("f", vec![Term::atom("a"), Term::Int(1)]).to_string(),
            "f(a, 1)"
        );
    }

    #[test]
    #[should_panic(expected = "needs arguments")]
    fn zero_arity_compound_panics() {
        Term::compound("f", vec![]);
    }

    #[test]
    fn list_round_trip() {
        let l = Term::list([Term::Int(1), Term::Int(2), Term::Int(3)]);
        assert_eq!(l.to_string(), "[1, 2, 3]");
        let items = l.as_list().expect("proper list");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], &Term::Int(1));
        assert_eq!(Term::nil().as_list().expect("empty").len(), 0);
    }

    #[test]
    fn improper_list_prints_bar() {
        let l = Term::compound(".", vec![Term::Int(1), Term::var(0)]);
        assert_eq!(l.as_list(), None);
        assert_eq!(l.to_string(), "[1|_G0]");
    }

    #[test]
    fn functor_arity() {
        assert_eq!(Term::atom("a").functor_arity(), Some(("a", 0)));
        assert_eq!(
            Term::compound("f", vec![Term::Int(1)]).functor_arity(),
            Some(("f", 1))
        );
        assert_eq!(Term::var(0).functor_arity(), None);
        assert_eq!(Term::Int(1).functor_arity(), None);
    }

    #[test]
    fn groundness() {
        assert!(Term::atom("a").is_ground());
        assert!(!Term::var(0).is_ground());
        assert!(!Term::compound("f", vec![Term::var(1)]).is_ground());
        assert!(Term::compound("f", vec![Term::Int(1)]).is_ground());
    }

    #[test]
    fn var_shifting() {
        let t = Term::compound(
            "f",
            vec![Term::var(0), Term::compound("g", vec![Term::var(2)])],
        );
        assert_eq!(t.max_var(), Some(2));
        let s = t.shift_vars(10);
        assert_eq!(s.max_var(), Some(12));
        assert_eq!(Term::atom("a").shift_vars(5), Term::atom("a"));
    }
}
