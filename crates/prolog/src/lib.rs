//! # altx-prolog — OR-parallelism in Prolog
//!
//! The paper's second application (§5.2): a Prolog whose interpreter
//! "detects and exploits OR-parallelism" by racing the alternative
//! clauses for a goal as mutually exclusive alternatives. When only the
//! *first* solution is wanted — the common `once`-style usage — the
//! clause choices at a choice point are exactly the paper's construct:
//! at most one alternative's bindings survive; the rest are discarded,
//! unobserved.
//!
//! This crate is a complete, self-contained Prolog engine:
//!
//! * [`term`] — terms (atoms, variables, integers, compounds, lists).
//! * [`parser`] — a tokenizer + recursive-descent reader for programs and
//!   queries, with the standard arithmetic/comparison operators.
//! * [`unify`] — unification with trail-based backtracking (§5.2: "the
//!   unification algorithm by which Prolog attempts to satisfy
//!   predicates").
//! * [`solve`] — sequential SLD resolution (depth-first, leftmost goal,
//!   clause order) with step accounting, cut (`!`), negation as failure
//!   (`\+`), `call/1`, `findall/3`, and dynamic clauses
//!   (`assertz`/`asserta`/`retract` — private to each solver, so
//!   OR-parallel branches update isolated database copies, §5.2's
//!   copy-don't-share solution).
//! * [`or_parallel`] — the paper's transformation: top-level clause
//!   alternatives raced on real threads
//!   ([`or_parallel::solve_first_parallel`]) and an analytic/simulated
//!   branch profile ([`or_parallel::profile_branches`]) used by
//!   experiment E8. "What our method does is copy, and since we choose
//!   only one alternative, no merging is necessary."
//!
//! # Example
//!
//! ```
//! use altx_prolog::{KnowledgeBase, Solver};
//!
//! let kb = KnowledgeBase::parse(
//!     "edge(a, b). edge(b, c). edge(c, d).
//!      path(X, Y) :- edge(X, Y).
//!      path(X, Z) :- edge(X, Y), path(Y, Z).",
//! ).unwrap();
//! let mut solver = Solver::new(&kb);
//! let solutions = solver.solve_str("path(a, X)", 10).unwrap();
//! let xs: Vec<String> = solutions.iter().map(|s| s.binding_str("X").unwrap()).collect();
//! assert_eq!(xs, ["b", "c", "d"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtins;
pub mod or_parallel;
pub mod parser;
pub mod solve;
pub mod term;
pub mod unify;

pub use or_parallel::{
    profile_branches, simulate_race, solve_first_parallel, BranchProfile, OrParallelReport,
    OrRaceComparison, OrSimConfig,
};
pub use parser::{parse_program, parse_query, ParseError};
pub use solve::{KnowledgeBase, Solution, Solver};
pub use term::Term;
pub use unify::Bindings;
