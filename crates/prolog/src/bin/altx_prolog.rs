//! An interactive Prolog top level over the altx engine.
//!
//! ```text
//! cargo run --release -p altx-prolog --bin altx_prolog [program.pl …]
//! ```
//!
//! Commands at the `?-` prompt:
//!
//! * `goal, goal, …` — solve a query (up to 10 solutions printed);
//! * `:parallel goal` — race the top choice point OR-parallel and print
//!   the first solution plus the winning branch;
//! * `:profile goal`  — print per-branch step profiles and the simulated
//!   sequential-vs-parallel comparison on the 1989 cost model;
//! * `:consult <file>` — load more clauses;
//! * `:listing` — count clauses per predicate;
//! * `:help`, `:quit`.

use altx_prolog::{
    parse_program, profile_branches, simulate_race, solve_first_parallel, KnowledgeBase,
    OrSimConfig, Solver,
};
use std::io::{BufRead, Write};

fn consult(kb: &mut KnowledgeBase, path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let clauses = parse_program(&text).map_err(|e| format!("{path}: {e}"))?;
    let n = clauses.len();
    for c in clauses {
        kb.add(c);
    }
    Ok(n)
}

fn show_solutions(kb: &KnowledgeBase, query: &str) {
    let mut solver = Solver::new(kb);
    solver.max_steps = 5_000_000;
    match solver.solve_str(query, 10) {
        Err(e) => println!("  parse error: {e}"),
        Ok(solutions) => {
            if solutions.is_empty() {
                println!("  false. ({} steps{})", solver.steps(), trunc(&solver));
                return;
            }
            for s in &solutions {
                let bindings: Vec<String> = s
                    .iter()
                    .map(|(name, term)| format!("{name} = {term}"))
                    .collect();
                if bindings.is_empty() {
                    println!("  true");
                } else {
                    println!("  {}", bindings.join(", "));
                }
            }
            println!(
                "  ({} solution(s) in {} steps{}{})",
                solutions.len(),
                solver.steps(),
                if solutions.len() == 10 {
                    ", limit reached"
                } else {
                    ""
                },
                trunc(&solver)
            );
        }
    }
}

fn trunc(solver: &Solver<'_>) -> &'static str {
    if solver.truncated() {
        ", truncated"
    } else {
        ""
    }
}

fn show_parallel(kb: &KnowledgeBase, query: &str) {
    match solve_first_parallel(kb, query) {
        Err(e) => println!("  parse error: {e}"),
        Ok(report) => match report.solution {
            Some(s) => {
                let bindings: Vec<String> = s
                    .iter()
                    .map(|(name, term)| format!("{name} = {term}"))
                    .collect();
                println!(
                    "  {} [branch {} of {}, {:?}]",
                    if bindings.is_empty() {
                        "true".to_string()
                    } else {
                        bindings.join(", ")
                    },
                    report.winner_branch.map(|b| b + 1).unwrap_or(0),
                    report.branches,
                    report.wall
                );
            }
            None => println!("  false. ({} branches raced)", report.branches),
        },
    }
}

fn show_profile(kb: &KnowledgeBase, query: &str) {
    match profile_branches(kb, query) {
        Err(e) => println!("  parse error: {e}"),
        Ok(profiles) if profiles.is_empty() => println!("  no matching clauses"),
        Ok(profiles) => {
            for p in &profiles {
                println!(
                    "  branch {}: {:>8} steps, {}",
                    p.clause_index + 1,
                    p.steps,
                    if p.succeeded { "succeeds" } else { "fails" }
                );
            }
            let cmp = simulate_race(&profiles, &OrSimConfig::default());
            println!(
                "  1989 model: sequential {}, OR-parallel {}, speedup {:.2}x",
                cmp.sequential, cmp.parallel, cmp.speedup
            );
        }
    }
}

fn main() {
    let mut kb = KnowledgeBase::new();
    for path in std::env::args().skip(1) {
        match consult(&mut kb, &path) {
            Ok(n) => println!("% consulted {path}: {n} clauses"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("altx Prolog — OR-parallel top level (:help for commands)");

    let stdin = std::io::stdin();
    loop {
        print!("?- ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (cmd, arg) = rest.split_once(' ').unwrap_or((rest, ""));
            match cmd {
                "quit" | "q" => break,
                "help" | "h" => {
                    println!("  goal, goal.      solve (10 solutions max)");
                    println!("  :parallel goal   OR-parallel first solution");
                    println!("  :profile goal    branch profiles + 1989 race model");
                    println!("  :consult file    load clauses");
                    println!("  :listing         clause counts");
                    println!("  :quit");
                }
                "parallel" | "p" => show_parallel(&kb, arg),
                "profile" => show_profile(&kb, arg),
                "consult" | "c" => match consult(&mut kb, arg.trim()) {
                    Ok(n) => println!("% consulted {}: {n} clauses", arg.trim()),
                    Err(e) => println!("  error: {e}"),
                },
                "listing" | "l" => println!("  {} clauses loaded", kb.len()),
                other => println!("  unknown command :{other} (:help)"),
            }
            continue;
        }
        show_solutions(&kb, line);
    }
    println!("bye.");
}
