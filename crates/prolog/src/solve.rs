//! Sequential SLD resolution.
//!
//! Depth-first, leftmost-goal, clause-order search — the standard Prolog
//! strategy and the sequential baseline the OR-parallel transformation is
//! measured against. The solver counts *steps* (clause resolution
//! attempts + built-in calls), which is the work metric the cost model
//! feeds to the performance analysis.

use crate::builtins::call_builtin;
use crate::parser::{parse_program, parse_query, ParseError, RawClause, RawQuery};
use crate::term::Term;
use crate::unify::Bindings;
use altx::CancelToken;
use std::collections::HashMap;

/// A stored clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The head.
    pub head: Term,
    /// Body goals (empty for facts).
    pub body: Vec<Term>,
    /// Variables used by the clause.
    pub nvars: usize,
}

/// A program: clauses indexed by functor/arity, in source order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KnowledgeBase {
    clauses: Vec<Clause>,
    index: HashMap<(String, usize), Vec<usize>>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// Parses a program text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input.
    pub fn parse(src: &str) -> Result<Self, ParseError> {
        let mut kb = KnowledgeBase::new();
        for raw in parse_program(src)? {
            kb.add(raw);
        }
        Ok(kb)
    }

    /// Adds a clause (appended after existing clauses of its predicate).
    pub fn add(&mut self, raw: RawClause) {
        let (name, arity) = raw
            .head
            .functor_arity()
            .expect("parser guarantees clause heads");
        let idx = self.clauses.len();
        self.index
            .entry((name.to_string(), arity))
            .or_default()
            .push(idx);
        self.clauses.push(Clause {
            head: raw.head,
            body: raw.body,
            nvars: raw.nvars,
        });
    }

    /// Clause indices matching `name/arity`, in source order.
    pub fn matching(&self, name: &str, arity: usize) -> &[usize] {
        self.index
            .get(&(name.to_string(), arity))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The clause at `idx`.
    pub fn clause(&self, idx: usize) -> &Clause {
        &self.clauses[idx]
    }

    /// Total number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True iff the program is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// One solution: the query's named variables resolved to terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    bindings: HashMap<String, Term>,
}

impl Solution {
    /// The term bound to variable `name`.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        self.bindings.get(name)
    }

    /// The bound term rendered as text.
    pub fn binding_str(&self, name: &str) -> Option<String> {
        self.bindings.get(name).map(Term::to_string)
    }

    /// Iterates `(name, term)` pairs sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        let mut pairs: Vec<(&str, &Term)> =
            self.bindings.iter().map(|(k, v)| (k.as_str(), v)).collect();
        pairs.sort_by_key(|(k, _)| *k);
        pairs.into_iter()
    }
}

/// The SLD solver. Holds tunable limits and counters; reusable across
/// queries (counters reset per query).
#[derive(Debug, Clone)]
pub struct Solver<'kb> {
    kb: &'kb KnowledgeBase,
    /// Hard cap on resolution steps per query (guards infinite loops).
    pub max_steps: u64,
    /// Hard cap on recursion depth.
    pub max_depth: usize,
    /// Cooperative cancellation (polled every few steps); used by the
    /// OR-parallel engine for sibling elimination.
    pub cancel: Option<CancelToken>,
    steps: u64,
    truncated: bool,
    /// Dynamic clauses added by `assertz`/`asserta` — private to this
    /// solver (§5.2's copy solution for shared-environment updates: each
    /// OR-parallel branch owns its own database delta). Tombstoned by
    /// `retract`; the bool marks asserta (try-first) clauses. Push-only
    /// so combined clause indices held by live choice points stay
    /// stable.
    local: Vec<Option<(Clause, bool)>>,
}

impl<'kb> Solver<'kb> {
    /// Creates a solver with generous default limits.
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        Solver {
            kb,
            max_steps: 10_000_000,
            max_depth: 100_000,
            cancel: None,
            steps: 0,
            truncated: false,
            local: Vec::new(),
        }
    }

    /// Number of live dynamic clauses in this solver's local database.
    pub fn dynamic_clause_count(&self) -> usize {
        self.local.iter().filter(|c| c.is_some()).count()
    }

    /// Clause indices matching `name/arity` in search order: asserta
    /// clauses (newest first), then KB clauses, then assertz clauses in
    /// assertion order. Indices are stable across later assertions.
    fn matching_all(&self, name: &str, arity: usize) -> Vec<usize> {
        let base = self.kb.len();
        let mut front = Vec::new();
        let mut back = Vec::new();
        for (i, slot) in self.local.iter().enumerate() {
            if let Some((c, is_front)) = slot {
                if c.head.functor_arity() == Some((name, arity)) {
                    if *is_front {
                        front.push(base + i);
                    } else {
                        back.push(base + i);
                    }
                }
            }
        }
        front.reverse(); // newest asserta first
        let mut out = front;
        out.extend_from_slice(self.kb.matching(name, arity));
        out.extend(back);
        out
    }

    /// The clause at a combined index (KB or local).
    fn clause_at(&self, idx: usize) -> &Clause {
        if idx < self.kb.len() {
            self.kb.clause(idx)
        } else {
            &self.local[idx - self.kb.len()]
                .as_ref()
                .expect("matching_all never yields tombstones")
                .0
        }
    }

    /// Converts a resolved fact term into a clause with freshly numbered
    /// variables. `None` for terms that cannot head a clause.
    fn term_to_fact(term: &Term) -> Option<Clause> {
        term.functor_arity()?;
        // Renumber whatever variables remain so the clause is
        // self-contained.
        let mut map = HashMap::new();
        fn renumber(t: &Term, map: &mut HashMap<usize, usize>) -> Term {
            match t {
                Term::Var(v) => {
                    let next = map.len();
                    Term::Var(crate::term::VarId(*map.entry(v.0).or_insert(next)))
                }
                Term::Atom(_) | Term::Int(_) => t.clone(),
                Term::Compound { functor, args } => Term::Compound {
                    functor: functor.clone(),
                    args: args.iter().map(|a| renumber(a, map)).collect(),
                },
            }
        }
        let head = renumber(term, &mut map);
        Some(Clause {
            head,
            body: Vec::new(),
            nvars: map.len(),
        })
    }

    /// Steps consumed by the last query.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// True iff the last query hit a limit or was cancelled before the
    /// search space was exhausted.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Parses and solves a query, returning up to `limit` solutions.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the query is malformed.
    pub fn solve_str(&mut self, query: &str, limit: usize) -> Result<Vec<Solution>, ParseError> {
        let q = parse_query(query)?;
        Ok(self.solve(&q, limit))
    }

    /// Solves a parsed query, returning up to `limit` solutions.
    pub fn solve(&mut self, query: &RawQuery, limit: usize) -> Vec<Solution> {
        self.solve_restricted(query, limit, None)
    }

    /// Solves with the *first* resolution of the *first* user goal pinned
    /// to the `restrict`-th matching clause — the restriction the
    /// OR-parallel engine uses to give each alternate one branch of the
    /// top choice point.
    ///
    /// The search is fully iterative (explicit choice-point stack over a
    /// persistent goal list), so deep recursions in the *object* program
    /// cannot overflow the host stack.
    pub fn solve_restricted(
        &mut self,
        query: &RawQuery,
        limit: usize,
        restrict: Option<usize>,
    ) -> Vec<Solution> {
        self.steps = 0;
        self.truncated = false;
        if limit == 0 {
            return Vec::new();
        }
        let mut bindings = Bindings::new();
        bindings.ensure(query.nvars);

        let mut goals: GoalList = None;
        for g in query.goals.iter().rev() {
            goals = push_goal(goals, g.clone());
        }

        let mut out = Vec::new();
        let mut cps: Vec<ChoicePoint> = Vec::new();
        let mut restrict_pending = restrict;
        // Built-in failures/successes also need trail isolation between
        // sibling branches; choice points carry the marks.
        'outer: loop {
            // Limits and cancellation.
            if self.steps >= self.max_steps || cps.len() >= self.max_depth {
                self.truncated = true;
                return out;
            }
            if self.steps.is_multiple_of(64) {
                if let Some(token) = &self.cancel {
                    if token.is_cancelled() {
                        self.truncated = true;
                        return out;
                    }
                }
            }

            let Some(node) = goals.clone() else {
                // All goals satisfied: record a solution.
                out.push(Solution {
                    bindings: query
                        .var_names
                        .iter()
                        .map(|(name, &v)| (name.clone(), bindings.resolve(&Term::Var(v))))
                        .collect(),
                });
                if out.len() >= limit {
                    return out;
                }
                match self.backtrack(&mut bindings, &mut cps) {
                    Some(next) => {
                        goals = next;
                        continue 'outer;
                    }
                    None => return out,
                }
            };
            let goal = node.goal.clone();
            let rest = node.rest.clone();
            self.steps += 1;

            // Cut: commit to the bindings and clause choices made so far
            // by discarding choice points above the cut barrier. A bare
            // `!` at query level cuts everything (barrier 0); `!` inside
            // a clause body was translated to `$cut`(barrier) when the
            // body was expanded.
            if let Some(barrier) = cut_barrier(&goal) {
                cps.truncate(barrier.min(cps.len()));
                goals = rest;
                continue 'outer;
            }

            // Meta-predicates.
            if let Term::Compound { functor, args } = &goal {
                match (&**functor, args.len()) {
                    // Negation as failure: `\+ G` succeeds iff a
                    // sub-proof of G (on a snapshot of the bindings)
                    // fails. No bindings escape.
                    ("\\+", 1) => {
                        let succeeded = self.prove_subgoal(&bindings, &args[0]);
                        if self.steps >= self.max_steps {
                            self.truncated = true;
                            return out;
                        }
                        if !succeeded {
                            goals = rest;
                            continue 'outer;
                        }
                        match self.backtrack(&mut bindings, &mut cps) {
                            Some(next) => {
                                goals = next;
                                continue 'outer;
                            }
                            None => return out,
                        }
                    }
                    // call/1: the walked argument becomes the goal. A cut
                    // inside the called goal is local to it (the sub-goal
                    // re-enters the loop as a plain goal; `!` reaching
                    // here bare would cut to the query root, so we wrap
                    // it to a no-op-cut at the current stack height).
                    ("call", 1) => {
                        let target = bindings.resolve(&args[0]);
                        match target {
                            Term::Var(_) | Term::Int(_) => {
                                // Uncallable: fail.
                                match self.backtrack(&mut bindings, &mut cps) {
                                    Some(next) => {
                                        goals = next;
                                        continue 'outer;
                                    }
                                    None => return out,
                                }
                            }
                            t => {
                                let t = install_cut_barrier(t, cps.len());
                                goals = push_goal(rest, t);
                                continue 'outer;
                            }
                        }
                    }
                    // assertz/asserta: add a fact to this solver's local
                    // database (facts only — rule terms are not
                    // constructible in argument position). Assertions are
                    // NOT undone on backtracking, per standard Prolog.
                    ("assertz", 1) | ("asserta", 1) => {
                        let resolved = bindings.resolve(&args[0]);
                        match Solver::term_to_fact(&resolved) {
                            Some(clause) => {
                                // asserta semantics (clause-first) only
                                // affect ordering among *dynamic*
                                // clauses; KB clauses always precede.
                                let front =
                                    goal.functor_arity().is_some_and(|(n, _)| n == "asserta");
                                self.local.push(Some((clause, front)));
                                goals = rest;
                                continue 'outer;
                            }
                            None => match self.backtrack(&mut bindings, &mut cps) {
                                Some(next) => {
                                    goals = next;
                                    continue 'outer;
                                }
                                None => return out,
                            },
                        }
                    }
                    // retract/1: remove the first *dynamic* clause whose
                    // head unifies (the shared KB is immutable; dynamic
                    // state lives in the solver copy).
                    ("retract", 1) => {
                        let mut removed = false;
                        let mark = bindings.mark();
                        for slot in self.local.iter_mut() {
                            if let Some((c, _)) = slot {
                                let base = bindings.fresh(c.nvars);
                                let head = c.head.shift_vars(base);
                                if bindings.unify(&args[0], &head) {
                                    *slot = None;
                                    removed = true;
                                    break;
                                }
                            }
                        }
                        if removed {
                            goals = rest;
                            continue 'outer;
                        }
                        bindings.undo_to(mark);
                        match self.backtrack(&mut bindings, &mut cps) {
                            Some(next) => {
                                goals = next;
                                continue 'outer;
                            }
                            None => return out,
                        }
                    }
                    // findall/3: collect every solution of Goal's
                    // Template into a list; deterministic from the outer
                    // search's perspective, never binds Goal's variables.
                    ("findall", 3) => {
                        let collected = self.findall(&bindings, &args[0], &args[1]);
                        if self.steps >= self.max_steps {
                            self.truncated = true;
                            return out;
                        }
                        let list = Term::list(collected);
                        if bindings.unify(&args[2], &list) {
                            goals = rest;
                            continue 'outer;
                        }
                        match self.backtrack(&mut bindings, &mut cps) {
                            Some(next) => {
                                goals = next;
                                continue 'outer;
                            }
                            None => return out,
                        }
                    }
                    _ => {}
                }
            }

            // Built-ins are deterministic: no choice point, but a failed
            // built-in triggers backtracking.
            if let Some(result) = call_builtin(&mut bindings, &goal) {
                if result {
                    goals = rest;
                    continue 'outer;
                }
                match self.backtrack(&mut bindings, &mut cps) {
                    Some(next) => {
                        goals = next;
                        continue 'outer;
                    }
                    None => return out,
                }
            }

            // User goal: open a choice point over the matching clauses.
            let matches: Vec<usize> = match goal.functor_arity() {
                Some((name, arity)) => match restrict_pending.take() {
                    Some(k) => self
                        .matching_all(name, arity)
                        .get(k)
                        .copied()
                        .into_iter()
                        .collect(),
                    None => self.matching_all(name, arity),
                },
                // Unsatisfiable goal (integer or unbound variable).
                None => Vec::new(),
            };
            cps.push(ChoicePoint {
                goal,
                rest,
                matches,
                next: 0,
                mark: bindings.mark(),
            });
            match self.backtrack(&mut bindings, &mut cps) {
                Some(next) => {
                    goals = next;
                }
                None => return out,
            }
        }
    }

    /// Resumes at the most recent choice point with clauses left to try.
    /// Returns the new goal list, or `None` when the search space is
    /// exhausted.
    fn backtrack(
        &mut self,
        bindings: &mut Bindings,
        cps: &mut Vec<ChoicePoint>,
    ) -> Option<GoalList> {
        loop {
            // The cut barrier for clauses expanded from the topmost
            // choice point: everything above (and including) it is
            // discarded when a `!` in the body executes.
            let barrier = cps.len().checked_sub(1);
            let cp = cps.last_mut()?;
            let barrier = barrier.expect("non-empty");
            bindings.undo_to(cp.mark);
            while cp.next < cp.matches.len() {
                let clause_idx = cp.matches[cp.next];
                cp.next += 1;
                self.steps += 1;
                if self.steps >= self.max_steps {
                    self.truncated = true;
                    return None;
                }
                let clause = self.clause_at(clause_idx);
                let base = bindings.fresh(clause.nvars);
                let head = clause.head.shift_vars(base);
                let body: Vec<Term> = clause.body.iter().map(|g| g.shift_vars(base)).collect();
                if bindings.unify(&cp.goal, &head) {
                    let mut next = cp.rest.clone();
                    for g in body.into_iter().rev() {
                        next = push_goal(next, install_cut_barrier(g, barrier));
                    }
                    return Some(next);
                }
                // Head mismatch: bindings from the failed unify were
                // already rolled back by `unify`; fresh vars linger but
                // are unreachable.
            }
            cps.pop();
        }
    }

    /// Convenience: the first solution and the steps it took.
    pub fn first_solution(&mut self, query: &RawQuery) -> Option<(Solution, u64)> {
        let sols = self.solve(query, 1);
        let steps = self.steps;
        sols.into_iter().next().map(|s| (s, steps))
    }
}

impl<'kb> Solver<'kb> {
    /// Proves `goal` once against a snapshot of `bindings`, charging the
    /// work to this solver's step budget. Used by negation-as-failure;
    /// no bindings escape the sub-proof.
    fn prove_subgoal(&mut self, bindings: &Bindings, goal: &Term) -> bool {
        let resolved = bindings.resolve(goal);
        let nvars = resolved.max_var().map(|v| v + 1).unwrap_or(0);
        let sub_query = RawQuery {
            goals: vec![resolved],
            var_names: HashMap::new(),
            nvars,
        };
        let mut sub = Solver::new(self.kb);
        sub.max_steps = self.max_steps.saturating_sub(self.steps).max(1);
        sub.max_depth = self.max_depth;
        sub.cancel = self.cancel.clone();
        sub.local = self.local.clone(); // sub-proofs see dynamic clauses
        let found = !sub.solve(&sub_query, 1).is_empty();
        self.steps += sub.steps();
        if sub.truncated() {
            self.truncated = true;
        }
        found
    }

    /// Enumerates every solution of `goal` in a sub-proof, returning the
    /// resolved instances of `template` — findall/3's collection step.
    fn findall(&mut self, bindings: &Bindings, template: &Term, goal: &Term) -> Vec<Term> {
        let resolved_goal = bindings.resolve(goal);
        let resolved_template = bindings.resolve(template);
        // Rename so the sub-query's variable ids are self-contained:
        // both terms already share `bindings`' id space, which is fine —
        // the sub-solver just needs enough slots.
        let nvars = resolved_goal
            .max_var()
            .max(resolved_template.max_var())
            .map(|v| v + 1)
            .unwrap_or(0);
        let mut var_names = HashMap::new();
        // Expose the template through a synthetic variable name so the
        // generic solution extraction can resolve it per solution.
        var_names.insert("$findall".to_string(), crate::term::VarId(nvars));
        let wrapper = Term::compound(
            "=",
            vec![Term::Var(crate::term::VarId(nvars)), resolved_template],
        );
        let sub_query = RawQuery {
            goals: vec![wrapper, resolved_goal],
            var_names,
            nvars: nvars + 1,
        };
        let mut sub = Solver::new(self.kb);
        sub.max_steps = self.max_steps.saturating_sub(self.steps).max(1);
        sub.max_depth = self.max_depth;
        sub.cancel = self.cancel.clone();
        sub.local = self.local.clone(); // sub-proofs see dynamic clauses
        let solutions = sub.solve(&sub_query, usize::MAX);
        self.steps += sub.steps();
        if sub.truncated() {
            self.truncated = true;
        }
        solutions
            .into_iter()
            .map(|s| {
                s.binding("$findall")
                    .expect("wrapper binds template")
                    .clone()
            })
            .collect()
    }
}

/// Recognizes a cut goal: a bare `!` cuts to the query root; a
/// `$cut(barrier)` (installed at clause expansion) cuts to its barrier.
fn cut_barrier(goal: &Term) -> Option<usize> {
    match goal {
        Term::Atom(a) if &**a == "!" => Some(0),
        Term::Compound { functor, args } if &**functor == "$cut" && args.len() == 1 => {
            match args[0] {
                Term::Int(b) if b >= 0 => Some(b as usize),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Rewrites bare `!` atoms in an expanded clause body into
/// `$cut(barrier)` markers. Does not descend into argument positions:
/// cut is transparent only at the body's goal level (a `!` inside, e.g.,
/// a `\+` argument is handled by the sub-proof's own query-level rule).
fn install_cut_barrier(goal: Term, barrier: usize) -> Term {
    match &goal {
        Term::Atom(a) if &**a == "!" => Term::compound("$cut", vec![Term::Int(barrier as i64)]),
        _ => goal,
    }
}

/// Persistent (structurally shared) goal list: choice points capture it
/// by pointer, making backtracking O(1) in goal-stack size.
type GoalList = Option<std::rc::Rc<GoalNode>>;

#[derive(Debug)]
struct GoalNode {
    goal: Term,
    rest: GoalList,
}

fn push_goal(rest: GoalList, goal: Term) -> GoalList {
    Some(std::rc::Rc::new(GoalNode { goal, rest }))
}

#[derive(Debug)]
struct ChoicePoint {
    goal: Term,
    rest: GoalList,
    matches: Vec<usize>,
    next: usize,
    mark: crate::unify::TrailMark,
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAMILY: &str = "
        parent(tom, bob). parent(tom, liz).
        parent(bob, ann). parent(bob, pat).
        parent(pat, jim).
        grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
    ";

    fn kb(src: &str) -> KnowledgeBase {
        KnowledgeBase::parse(src).expect("valid program")
    }

    #[test]
    fn facts_resolve() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("parent(tom, X)", 10).unwrap();
        let xs: Vec<String> = sols.iter().map(|s| s.binding_str("X").unwrap()).collect();
        assert_eq!(xs, ["bob", "liz"]);
    }

    #[test]
    fn rules_resolve() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("grandparent(tom, Who)", 10).unwrap();
        let who: Vec<String> = sols.iter().map(|s| s.binding_str("Who").unwrap()).collect();
        assert_eq!(who, ["ann", "pat"]);
    }

    #[test]
    fn recursive_rules() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("ancestor(tom, X)", 20).unwrap();
        let xs: Vec<String> = sols.iter().map(|s| s.binding_str("X").unwrap()).collect();
        assert_eq!(xs, ["bob", "liz", "ann", "pat", "jim"]);
    }

    #[test]
    fn ground_query_yields_empty_solution() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("parent(tom, bob)", 10).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].iter().count(), 0);
        assert!(s.solve_str("parent(bob, tom)", 10).unwrap().is_empty());
    }

    #[test]
    fn solution_limit_respected() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        assert_eq!(s.solve_str("parent(X, Y)", 3).unwrap().len(), 3);
        assert_eq!(s.solve_str("parent(X, Y)", 0).unwrap().len(), 0);
    }

    #[test]
    fn list_programs_work() {
        let kb = kb("
            append([], L, L).
            append([H | T], L, [H | R]) :- append(T, L, R).
            member(X, [X | _]).
            member(X, [_ | T]) :- member(X, T).
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("append([1, 2], [3], Z)", 5).unwrap();
        assert_eq!(sols[0].binding_str("Z").unwrap(), "[1, 2, 3]");
        // append as a generator: all splits of [1,2,3].
        let sols = s.solve_str("append(A, B, [1, 2, 3])", 10).unwrap();
        assert_eq!(sols.len(), 4);
        let sols = s.solve_str("member(X, [a, b, c])", 10).unwrap();
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn naive_reverse() {
        let kb = kb("
            append([], L, L).
            append([H | T], L, [H | R]) :- append(T, L, R).
            nrev([], []).
            nrev([H | T], R) :- nrev(T, RT), append(RT, [H], R).
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("nrev([1, 2, 3, 4, 5], R)", 1).unwrap();
        assert_eq!(sols[0].binding_str("R").unwrap(), "[5, 4, 3, 2, 1]");
        assert!(s.steps() > 10, "nrev does real work: {} steps", s.steps());
    }

    #[test]
    fn arithmetic_in_programs() {
        let kb = kb("
            fact(0, 1).
            fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("fact(10, F)", 1).unwrap();
        assert_eq!(sols[0].binding_str("F").unwrap(), "3628800");
    }

    #[test]
    fn step_limit_truncates_runaway_queries() {
        let kb = kb("loop(X) :- loop(X).");
        let mut s = Solver::new(&kb);
        s.max_steps = 10_000;
        let sols = s.solve_str("loop(a)", 1).unwrap();
        assert!(sols.is_empty());
        assert!(s.truncated());
        assert!(s.steps() >= 10_000);
    }

    #[test]
    fn cancellation_stops_search() {
        let kb = kb("loop(X) :- loop(X).");
        let mut s = Solver::new(&kb);
        let token = CancelToken::new();
        token.cancel();
        s.cancel = Some(token);
        let sols = s.solve_str("loop(a)", 1).unwrap();
        assert!(sols.is_empty());
        assert!(s.truncated());
        assert!(s.steps() < 1000, "cancelled early: {}", s.steps());
    }

    #[test]
    fn restricted_solve_pins_first_clause() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        let q = parse_query("ancestor(tom, X)").unwrap();
        // Branch 0: the base case only → direct children.
        let sols = s.solve_restricted(&q, 20, Some(0));
        let xs: Vec<String> = sols.iter().map(|s| s.binding_str("X").unwrap()).collect();
        assert_eq!(xs, ["bob", "liz"]);
        // Branch 1: the recursive case only → strict descendants beyond
        // children.
        let sols = s.solve_restricted(&q, 20, Some(1));
        let xs: Vec<String> = sols.iter().map(|s| s.binding_str("X").unwrap()).collect();
        assert_eq!(xs, ["ann", "pat", "jim"]);
        // Out-of-range branch: no solutions.
        assert!(s.solve_restricted(&q, 20, Some(9)).is_empty());
    }

    #[test]
    fn conjunction_queries() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("parent(tom, X), parent(X, Y)", 10).unwrap();
        let pairs: Vec<(String, String)> = sols
            .iter()
            .map(|s| (s.binding_str("X").unwrap(), s.binding_str("Y").unwrap()))
            .collect();
        assert_eq!(
            pairs,
            [("bob".into(), "ann".into()), ("bob".into(), "pat".into())]
        );
    }

    #[test]
    fn unknown_predicate_fails_cleanly() {
        let kb = kb(FAMILY);
        let mut s = Solver::new(&kb);
        assert!(s.solve_str("nosuch(X)", 5).unwrap().is_empty());
        assert!(!s.truncated());
    }

    #[test]
    fn cut_commits_to_first_matching_clause() {
        let kb = kb("
            member(X, [X | _]).
            member(X, [_ | T]) :- member(X, T).
            first(X, L) :- member(X, L), !.
        ");
        let mut s = Solver::new(&kb);
        // Without cut: three solutions. With cut: exactly one.
        assert_eq!(s.solve_str("member(X, [1, 2, 3])", 10).unwrap().len(), 3);
        let sols = s.solve_str("first(X, [1, 2, 3])", 10).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].binding_str("X").unwrap(), "1");
    }

    #[test]
    fn cut_is_local_to_its_clause() {
        // The cut commits within f/1; choice points of the *caller*'s
        // other goals survive.
        let kb = kb("
            f(1) :- !.
            f(2).
            g(a). g(b).
            pair(X, Y) :- g(X), f(Y).
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("pair(X, Y)", 10).unwrap();
        let pairs: Vec<(String, String)> = sols
            .iter()
            .map(|s| (s.binding_str("X").unwrap(), s.binding_str("Y").unwrap()))
            .collect();
        // f/1 always yields only 1 (cut), but g/1 still backtracks.
        assert_eq!(pairs, [("a".into(), "1".into()), ("b".into(), "1".into())]);
    }

    #[test]
    fn cut_implements_if_then_else() {
        let kb = kb("
            max(X, Y, X) :- X >= Y, !.
            max(_, Y, Y).
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("max(7, 3, M)", 10).unwrap();
        assert_eq!(sols.len(), 1, "cut prevents the fallthrough clause");
        assert_eq!(sols[0].binding_str("M").unwrap(), "7");
        let sols = s.solve_str("max(2, 9, M)", 10).unwrap();
        assert_eq!(sols[0].binding_str("M").unwrap(), "9");
    }

    #[test]
    fn query_level_cut_stops_all_backtracking() {
        let kb = kb("p(1). p(2). p(3). q(x). q(y).");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("p(X), !, q(Y)", 10).unwrap();
        // ! froze p's choice at 1; q still enumerates after the cut?
        // No: a query-level cut discards ALL earlier choice points, and
        // q's choice points are created after the cut, so they survive.
        let got: Vec<(String, String)> = sols
            .iter()
            .map(|s| (s.binding_str("X").unwrap(), s.binding_str("Y").unwrap()))
            .collect();
        assert_eq!(got, [("1".into(), "x".into()), ("1".into(), "y".into())]);
    }

    #[test]
    fn negation_as_failure() {
        let kb = kb("
            bird(tweety). bird(polly).
            penguin(polly).
            flies(X) :- bird(X), \\+ penguin(X).
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("flies(X)", 10).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].binding_str("X").unwrap(), "tweety");
        assert!(s.solve_str("flies(polly)", 1).unwrap().is_empty());
        assert!(!s.solve_str("\\+ penguin(tweety)", 1).unwrap().is_empty());
    }

    #[test]
    fn negation_leaves_no_bindings() {
        let kb = kb("p(1).");
        let mut s = Solver::new(&kb);
        // \+ p(X) fails (p(1) provable with X=1), and X stays unbound
        // in the failure — no binding leaks into later goals.
        assert!(s.solve_str("\\+ p(X)", 1).unwrap().is_empty());
        // Double negation succeeds without binding X.
        let sols = s.solve_str("\\+ \\+ p(X), X = unbound_witness", 1).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].binding_str("X").unwrap(), "unbound_witness");
    }

    #[test]
    fn negation_counts_subproof_steps() {
        let kb = kb("
            deep(0).
            deep(N) :- N > 0, M is N - 1, deep(M).
        ");
        let mut s = Solver::new(&kb);
        assert_eq!(s.solve_str("\\+ deep(50)", 1).unwrap().len(), 0);
        let steps_with_subproof = s.steps();
        assert!(
            steps_with_subproof > 100,
            "sub-proof work must be charged: {steps_with_subproof}"
        );
    }

    #[test]
    fn call_invokes_bound_goal() {
        let kb = kb("
            p(1). p(2).
            apply(G) :- call(G).
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("G = p(X), call(G)", 10).unwrap();
        assert_eq!(sols.len(), 2);
        assert_eq!(sols[0].binding_str("X").unwrap(), "1");
        // Through a rule, too.
        let sols = s.solve_str("apply(p(2))", 10).unwrap();
        assert_eq!(sols.len(), 1);
        // Calling an unbound or non-callable term fails cleanly.
        assert!(s.solve_str("call(Y)", 1).unwrap().is_empty());
    }

    #[test]
    fn findall_collects_all_solutions() {
        let kb = kb("p(1). p(2). p(3).");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("findall(X, p(X), L)", 1).unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap(), "[1, 2, 3]");
        // Template can be compound.
        let sols = s.solve_str("findall(f(X), p(X), L)", 1).unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap(), "[f(1), f(2), f(3)]");
    }

    #[test]
    fn findall_of_failing_goal_is_empty_list() {
        let kb = kb("p(1).");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("findall(X, nosuch(X), L)", 1).unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap(), "[]");
    }

    #[test]
    fn findall_does_not_bind_goal_variables() {
        let kb = kb("p(1). p(2).");
        let mut s = Solver::new(&kb);
        // X stays free after findall; binding it afterwards still works.
        let sols = s.solve_str("findall(X, p(X), L), X = free", 1).unwrap();
        assert_eq!(sols[0].binding_str("X").unwrap(), "free");
        assert_eq!(sols[0].binding_str("L").unwrap(), "[1, 2]");
    }

    #[test]
    fn findall_respects_outer_bindings() {
        let kb = kb("q(a, 1). q(a, 2). q(b, 3).");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("K = a, findall(V, q(K, V), L)", 1).unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap(), "[1, 2]");
    }

    #[test]
    fn findall_composes_with_list_predicates() {
        let kb = kb("
            p(3). p(1). p(2).
            len([], 0).
            len([_ | T], N) :- len(T, M), N is M + 1.
        ");
        let mut s = Solver::new(&kb);
        let sols = s.solve_str("findall(X, p(X), L), len(L, N)", 1).unwrap();
        assert_eq!(sols[0].binding_str("N").unwrap(), "3");
    }

    #[test]
    fn assertz_adds_facts_for_later_goals() {
        let kb = kb("seed(1).");
        let mut s = Solver::new(&kb);
        let sols = s
            .solve_str(
                "assertz(extra(2)), assertz(extra(3)), findall(X, extra(X), L)",
                1,
            )
            .unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap(), "[2, 3]");
        assert_eq!(s.dynamic_clause_count(), 2);
        // Dynamic clauses persist across queries on the same solver…
        let sols = s.solve_str("extra(X)", 10).unwrap();
        assert_eq!(sols.len(), 2);
        // …but a fresh solver sees only the shared KB.
        let mut fresh = Solver::new(&kb);
        assert!(fresh.solve_str("extra(X)", 1).unwrap().is_empty());
    }

    #[test]
    fn asserta_clauses_are_tried_before_kb_clauses() {
        let kb = kb("pick(kb_first).");
        let mut s = Solver::new(&kb);
        let sols = s
            .solve_str(
                "asserta(pick(front)), assertz(pick(back)), findall(X, pick(X), L)",
                1,
            )
            .unwrap();
        assert_eq!(
            sols[0].binding_str("L").unwrap(),
            "[front, kb_first, back]",
            "search order: asserta, KB, assertz"
        );
    }

    #[test]
    fn assertz_is_not_undone_by_backtracking() {
        let kb = kb("p(1). p(2).");
        let mut s = Solver::new(&kb);
        // assertz happens on the p(1) branch; backtracking to p(2) must
        // not remove the asserted fact (standard Prolog semantics).
        let sols = s
            .solve_str("p(X), assertz(saw(X)), X = 2, findall(Y, saw(Y), L)", 1)
            .unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap(), "[1, 2]");
    }

    #[test]
    fn retract_removes_first_matching_dynamic_clause() {
        let kb = kb("fixed(0).");
        let mut s = Solver::new(&kb);
        let sols = s
            .solve_str(
                "assertz(d(1)), assertz(d(2)), retract(d(1)), findall(X, d(X), L)",
                1,
            )
            .unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap(), "[2]");
        assert_eq!(s.dynamic_clause_count(), 1);
        // retract cannot touch the immutable shared KB.
        assert!(s.solve_str("retract(fixed(0))", 1).unwrap().is_empty());
        assert_eq!(s.solve_str("fixed(X)", 5).unwrap().len(), 1);
    }

    #[test]
    fn retract_fails_when_nothing_matches() {
        let kb = kb("p(1).");
        let mut s = Solver::new(&kb);
        assert!(s.solve_str("retract(nothing(here))", 1).unwrap().is_empty());
    }

    #[test]
    fn asserted_facts_generalize_unbound_variables() {
        let kb = kb("p(1).");
        let mut s = Solver::new(&kb);
        // Y is unbound at assertion time: the stored fact is pair(1, _),
        // matching any second argument afterwards.
        let sols = s
            .solve_str("p(X), assertz(pair(X, Y)), findall(B, pair(1, B), L)", 1)
            .unwrap();
        assert_eq!(sols[0].binding_str("L").unwrap().matches("_G").count(), 1);
        let sols = s.solve_str("pair(1, bound_now)", 1).unwrap();
        assert_eq!(sols.len(), 1, "generalized variable matches anything");
    }

    #[test]
    fn or_parallel_branches_have_isolated_databases() {
        // §5.2: "What our method does is copy" — each racing branch
        // asserts into its own solver; no branch observes another's
        // writes. We emulate the race's per-branch solvers directly.
        let kb = kb("
            branch(one). branch(two).
            run(B) :- branch(B), assertz(mine(B)), mine(B).
        ");
        let q = parse_query("run(B)").unwrap();
        let mut s1 = Solver::new(&kb);
        let r1 = s1.solve_restricted(&q, 1, Some(0));
        let mut s2 = Solver::new(&kb);
        let r2 = s2.solve_restricted(&q, 1, Some(0));
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1);
        // Each solver saw exactly its own assertions.
        assert_eq!(s1.dynamic_clause_count(), 1);
        assert_eq!(s2.dynamic_clause_count(), 1);
    }

    #[test]
    fn kb_accessors() {
        let kb = kb(FAMILY);
        assert_eq!(kb.len(), 8);
        assert!(!kb.is_empty());
        assert_eq!(kb.matching("parent", 2).len(), 5);
        assert_eq!(kb.matching("ancestor", 2).len(), 2);
        assert!(kb.matching("parent", 3).is_empty());
    }
}
