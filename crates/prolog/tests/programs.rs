//! Whole-program integration tests: classic Prolog programs running on
//! the engine end-to-end, sequential and OR-parallel.

use altx_prolog::{solve_first_parallel, KnowledgeBase, Solver};

/// N-queens via permutation generation + attack checking. Exercises
/// lists, arithmetic, negation-as-failure, and deep backtracking.
const QUEENS: &str = "
    select(X, [X | T], T).
    select(X, [H | T], [H | R]) :- select(X, T, R).

    range(N, N, [N]).
    range(L, N, [L | R]) :- L < N, M is L + 1, range(M, N, R).

    abs_diff(A, B, D) :- A >= B, D is A - B.
    abs_diff(A, B, D) :- A < B, D is B - A.

    % safe(Q, Others, Dist): Q attacks nothing in Others diagonally.
    safe(_, [], _).
    safe(Q, [H | T], D) :-
        abs_diff(Q, H, Diff), Diff =\\= D,
        E is D + 1, safe(Q, T, E).

    place([], []).
    place(Unplaced, [Q | Rest]) :-
        select(Q, Unplaced, Remaining),
        place(Remaining, Rest),
        safe(Q, Rest, 1).

    queens(N, Solution) :- range(1, N, Columns), place(Columns, Solution).
";

fn assert_valid_queens(n: i64, rendered: &str) {
    // rendered like "[2, 4, 1, 3]"
    let cols: Vec<i64> = rendered
        .trim_matches(['[', ']'])
        .split(',')
        .map(|s| s.trim().parse().expect("integer column"))
        .collect();
    assert_eq!(cols.len(), n as usize);
    let mut sorted = cols.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (1..=n).collect::<Vec<_>>(), "a permutation");
    for i in 0..cols.len() {
        for j in i + 1..cols.len() {
            assert_ne!(
                (cols[i] - cols[j]).abs(),
                (j - i) as i64,
                "diagonal attack in {rendered}"
            );
        }
    }
}

#[test]
fn six_queens_first_solution() {
    let kb = KnowledgeBase::parse(QUEENS).expect("valid program");
    let mut solver = Solver::new(&kb);
    let sols = solver.solve_str("queens(6, S)", 1).expect("parses");
    assert!(!solver.truncated(), "search within limits");
    let s = sols[0].binding_str("S").expect("bound");
    assert_valid_queens(6, &s);
}

#[test]
fn four_queens_has_exactly_two_solutions() {
    let kb = KnowledgeBase::parse(QUEENS).expect("valid program");
    let mut solver = Solver::new(&kb);
    let sols = solver.solve_str("queens(4, S)", 10).expect("parses");
    assert_eq!(sols.len(), 2);
    for s in &sols {
        assert_valid_queens(4, &s.binding_str("S").expect("bound"));
    }
}

#[test]
fn three_queens_is_unsatisfiable() {
    let kb = KnowledgeBase::parse(QUEENS).expect("valid program");
    let mut solver = Solver::new(&kb);
    assert!(solver
        .solve_str("queens(3, S)", 1)
        .expect("parses")
        .is_empty());
    assert!(!solver.truncated());
}

#[test]
fn queens_or_parallel_returns_a_valid_board() {
    let kb = KnowledgeBase::parse(QUEENS).expect("valid program");
    let report = solve_first_parallel(&kb, "queens(6, S)").expect("parses");
    let sol = report.solution.expect("satisfiable");
    assert_valid_queens(6, &sol.binding_str("S").expect("bound"));
}

/// Zebra-style constraint puzzle (scaled down): exercises many-way
/// joins and negation.
const PUZZLE: &str = "
    color(red). color(green). color(blue).
    owner(ann). owner(bob). owner(cal).

    % Each owner has a distinct color; constraints narrow it to one
    % assignment.
    distinct(A, B, C) :- color(A), color(B), color(C),
                         A \\= B, A \\= C, B \\= C.

    houses(Ann, Bob, Cal) :-
        distinct(Ann, Bob, Cal),
        Ann \\= red,          % Ann's house is not red
        Bob = green,          % Bob's is green
        \\+ Cal = blue.       % Cal's is not blue
";

#[test]
fn constraint_puzzle_has_unique_solution() {
    let kb = KnowledgeBase::parse(PUZZLE).expect("valid program");
    let mut solver = Solver::new(&kb);
    let sols = solver.solve_str("houses(A, B, C)", 10).expect("parses");
    assert_eq!(sols.len(), 1, "constraints pin a single model");
    let s = &sols[0];
    assert_eq!(s.binding_str("A").expect("A"), "blue");
    assert_eq!(s.binding_str("B").expect("B"), "green");
    assert_eq!(s.binding_str("C").expect("C"), "red");
}

/// List utilities: length via accumulators, membership, deletion — the
/// read-mostly symbolic workload §7 describes.
const LISTS: &str = "
    len([], 0).
    len([_ | T], N) :- len(T, M), N is M + 1.

    append([], L, L).
    append([H | T], L, [H | R]) :- append(T, L, R).

    delete_all(_, [], []).
    delete_all(X, [X | T], R) :- !, delete_all(X, T, R).
    delete_all(X, [H | T], [H | R]) :- delete_all(X, T, R).
";

#[test]
fn list_utilities() {
    let kb = KnowledgeBase::parse(LISTS).expect("valid program");
    let mut solver = Solver::new(&kb);

    let sols = solver.solve_str("len([a, b, c, d], N)", 1).expect("parses");
    assert_eq!(sols[0].binding_str("N").expect("N"), "4");

    // delete_all uses cut to commit to the matching-head clause.
    let sols = solver
        .solve_str("delete_all(1, [1, 2, 1, 3, 1], R)", 5)
        .expect("parses");
    assert_eq!(sols.len(), 1, "cut makes deletion deterministic");
    assert_eq!(sols[0].binding_str("R").expect("R"), "[2, 3]");

    // Generator mode still works where no cut applies.
    let sols = solver
        .solve_str("append(X, Y, [1, 2])", 10)
        .expect("parses");
    assert_eq!(sols.len(), 3);
}
