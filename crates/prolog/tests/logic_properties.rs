//! Property-based tests of the Prolog engine's logical laws.

use altx_prolog::{
    parse_query, profile_branches, solve_first_parallel, Bindings, KnowledgeBase, Solver, Term,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Term / unification laws.
// ---------------------------------------------------------------------

/// Arbitrary ground or open terms over a tiny signature, with variables
/// drawn from 0..4.
fn arb_term(depth: u32) -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        Just(Term::atom("a")),
        Just(Term::atom("b")),
        (0i64..5).prop_map(Term::Int),
        (0usize..4).prop_map(Term::var),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop::collection::vec(inner, 1..3)
            .prop_map(|args| Term::compound("f", args))
    })
    .boxed()
}

proptest! {
    /// Unification is symmetric in success.
    #[test]
    fn unify_symmetric(a in arb_term(3), b in arb_term(3)) {
        let mut b1 = Bindings::new();
        b1.ensure(4);
        let mut b2 = Bindings::new();
        b2.ensure(4);
        prop_assert_eq!(b1.unify(&a, &b), b2.unify(&b, &a));
    }

    /// Unification is reflexive and binds nothing new on t = t.
    #[test]
    fn unify_reflexive(t in arb_term(3)) {
        let mut b = Bindings::new();
        b.ensure(4);
        prop_assert!(b.unify(&t, &t));
    }

    /// A successful unification is a *unifier*: resolving both sides
    /// afterwards yields syntactically identical terms.
    #[test]
    fn unify_produces_a_unifier(a in arb_term(3), b in arb_term(3)) {
        let mut bind = Bindings::new();
        bind.ensure(4);
        if bind.unify(&a, &b) {
            prop_assert_eq!(bind.resolve(&a), bind.resolve(&b));
        }
    }

    /// resolve() is idempotent.
    #[test]
    fn resolve_idempotent(a in arb_term(3), b in arb_term(3)) {
        let mut bind = Bindings::new();
        bind.ensure(4);
        let _ = bind.unify(&a, &b);
        let once = bind.resolve(&a);
        prop_assert_eq!(bind.resolve(&once), once.clone());
    }

    /// Failed unification leaves the store exactly as it was (trail
    /// correctness), checked via resolution of every variable.
    #[test]
    fn failed_unify_restores_store(a in arb_term(3), b in arb_term(3), c in arb_term(3)) {
        let mut bind = Bindings::new();
        bind.ensure(4);
        let _ = bind.unify(&a, &b); // set up arbitrary prior state
        let before: Vec<Term> = (0..4).map(|v| bind.resolve(&Term::var(v))).collect();
        let mark = bind.mark();
        if !bind.unify(&Term::compound("g", vec![c]), &Term::atom("not_g")) {
            let after: Vec<Term> = (0..4).map(|v| bind.resolve(&Term::var(v))).collect();
            prop_assert_eq!(&before, &after);
        }
        bind.undo_to(mark);
        let restored: Vec<Term> = (0..4).map(|v| bind.resolve(&Term::var(v))).collect();
        prop_assert_eq!(before, restored);
    }
}

// ---------------------------------------------------------------------
// Solver vs brute-force oracle on generated fact bases.
// ---------------------------------------------------------------------

/// A random binary-relation fact base over atoms a..e, restricted to
/// DAG edges (source index < target index): plain SLD resolution of the
/// textbook `reach/2` diverges on cyclic graphs, which is a property of
/// Prolog's search strategy, not a bug to be tested away here.
fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..4, 1usize..5), 0..12).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| {
                let (lo, hi) = (a.min(b), a.max(b));
                (lo != hi).then_some((lo, hi))
            })
            .collect()
    })
}

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn kb_from_edges(edges: &[(usize, usize)]) -> KnowledgeBase {
    let mut src = String::new();
    for &(x, y) in edges {
        src.push_str(&format!("edge({}, {}). ", NAMES[x], NAMES[y]));
    }
    src.push_str(
        "reach(X, X).
         reach(X, Z) :- edge(X, Y), reach(Y, Z).",
    );
    KnowledgeBase::parse(&src).expect("generated program is valid")
}

/// Reflexive-transitive closure by plain Rust.
fn oracle_reach(edges: &[(usize, usize)]) -> [[bool; 5]; 5] {
    let mut r = [[false; 5]; 5];
    for (i, row) in r.iter_mut().enumerate() {
        row[i] = true;
    }
    loop {
        let mut changed = false;
        for &(x, y) in edges {
            for row in r.iter_mut() {
                if row[x] && !row[y] {
                    row[y] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return r;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The solver's reach/2 agrees with a Rust transitive-closure oracle
    /// on every node pair, and the OR-parallel solver agrees with both.
    #[test]
    fn reachability_matches_oracle(edges in arb_edges()) {
        let kb = kb_from_edges(&edges);
        let expect = oracle_reach(&edges);
        let mut solver = Solver::new(&kb);
        solver.max_steps = 2_000_000;
        for s in 0..5 {
            for t in 0..5 {
                let q = format!("reach({}, {})", NAMES[s], NAMES[t]);
                let seq = !solver.solve_str(&q, 1).unwrap().is_empty();
                prop_assert!(!solver.truncated(), "query too deep: {q}");
                prop_assert_eq!(seq, expect[s][t], "{}", q);
                let par = solve_first_parallel(&kb, &q).unwrap().solution.is_some();
                prop_assert_eq!(par, expect[s][t], "parallel {}", q);
            }
        }
    }

    /// Enumerating all solutions of reach(a, X) yields exactly the
    /// oracle's reachable set, each exactly once per derivation-free
    /// count (set equality).
    #[test]
    fn enumeration_matches_oracle_set(edges in arb_edges()) {
        let kb = kb_from_edges(&edges);
        let expect = oracle_reach(&edges);
        let mut solver = Solver::new(&kb);
        solver.max_steps = 2_000_000;
        let sols = solver.solve_str("reach(a, X)", 500).unwrap();
        prop_assume!(!solver.truncated());
        let got: std::collections::BTreeSet<String> =
            sols.iter().map(|s| s.binding_str("X").unwrap()).collect();
        let want: std::collections::BTreeSet<String> = (0..5)
            .filter(|&t| expect[0][t])
            .map(|t| NAMES[t].to_string())
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Branch profiles partition sequential work: for an unsatisfiable
    /// first goal, DFS steps equal the per-branch totals (±bookkeeping).
    #[test]
    fn profiles_partition_work(edges in arb_edges()) {
        let kb = kb_from_edges(&edges);
        // reach(b, zz): zz is not a node, so the query fails after full
        // exploration — unless b reaches nothing, still fine.
        let q = "reach(b, zz)";
        let profiles = profile_branches(&kb, q).unwrap();
        let mut solver = Solver::new(&kb);
        solver.max_steps = 2_000_000;
        prop_assert!(solver.solve_str(q, 1).unwrap().is_empty());
        prop_assume!(!solver.truncated());
        let total: u64 = profiles.iter().map(|p| p.steps).sum();
        prop_assert!(
            solver.steps().abs_diff(total) <= profiles.len() as u64 + 2,
            "seq {} vs branch total {}",
            solver.steps(),
            total
        );
    }

    /// parse → display → parse round-trips for queries over the term
    /// grammar (modulo variable renaming, which display normalizes).
    #[test]
    fn display_parse_round_trip(t in arb_term(3)) {
        // Embed in a goal so the parser accepts it.
        let text = format!("holds({t})");
        let q1 = parse_query(&text).expect("display emits parseable text");
        let text2 = q1.goals[0].to_string();
        let q2 = parse_query(&text2).expect("round trip");
        prop_assert_eq!(q1.goals[0].to_string(), q2.goals[0].to_string());
    }
}
