//! Property-based tests of the Prolog engine's logical laws.

use altx_check::{check, CaseRng};
use altx_prolog::{
    parse_query, profile_branches, solve_first_parallel, Bindings, KnowledgeBase, Solver, Term,
};

// ---------------------------------------------------------------------
// Term / unification laws.
// ---------------------------------------------------------------------

/// Arbitrary ground or open terms over a tiny signature, with variables
/// drawn from 0..4 and compounds nesting up to `depth` levels.
fn arb_term(rng: &mut CaseRng, depth: u32) -> Term {
    if depth > 0 && rng.chance(0.4) {
        let args = rng.vec(1, 3, |r| arb_term(r, depth - 1));
        return Term::compound("f", args);
    }
    match rng.usize_in(0, 4) {
        0 => Term::atom("a"),
        1 => Term::atom("b"),
        2 => Term::Int(rng.i64_in(0, 5)),
        _ => Term::var(rng.usize_in(0, 4)),
    }
}

/// Unification is symmetric in success.
#[test]
fn unify_symmetric() {
    check("unify_symmetric", 256, |rng| {
        let a = arb_term(rng, 3);
        let b = arb_term(rng, 3);
        let mut b1 = Bindings::new();
        b1.ensure(4);
        let mut b2 = Bindings::new();
        b2.ensure(4);
        assert_eq!(b1.unify(&a, &b), b2.unify(&b, &a));
    });
}

/// Unification is reflexive and binds nothing new on t = t.
#[test]
fn unify_reflexive() {
    check("unify_reflexive", 256, |rng| {
        let t = arb_term(rng, 3);
        let mut b = Bindings::new();
        b.ensure(4);
        assert!(b.unify(&t, &t));
    });
}

/// A successful unification is a *unifier*: resolving both sides
/// afterwards yields syntactically identical terms.
#[test]
fn unify_produces_a_unifier() {
    check("unify_produces_a_unifier", 256, |rng| {
        let a = arb_term(rng, 3);
        let b = arb_term(rng, 3);
        let mut bind = Bindings::new();
        bind.ensure(4);
        if bind.unify(&a, &b) {
            assert_eq!(bind.resolve(&a), bind.resolve(&b));
        }
    });
}

/// resolve() is idempotent.
#[test]
fn resolve_idempotent() {
    check("resolve_idempotent", 256, |rng| {
        let a = arb_term(rng, 3);
        let b = arb_term(rng, 3);
        let mut bind = Bindings::new();
        bind.ensure(4);
        let _ = bind.unify(&a, &b);
        let once = bind.resolve(&a);
        assert_eq!(bind.resolve(&once), once.clone());
    });
}

/// Failed unification leaves the store exactly as it was (trail
/// correctness), checked via resolution of every variable.
#[test]
fn failed_unify_restores_store() {
    check("failed_unify_restores_store", 256, |rng| {
        let a = arb_term(rng, 3);
        let b = arb_term(rng, 3);
        let c = arb_term(rng, 3);
        let mut bind = Bindings::new();
        bind.ensure(4);
        let _ = bind.unify(&a, &b); // set up arbitrary prior state
        let before: Vec<Term> = (0..4).map(|v| bind.resolve(&Term::var(v))).collect();
        let mark = bind.mark();
        if !bind.unify(&Term::compound("g", vec![c]), &Term::atom("not_g")) {
            let after: Vec<Term> = (0..4).map(|v| bind.resolve(&Term::var(v))).collect();
            assert_eq!(&before, &after);
        }
        bind.undo_to(mark);
        let restored: Vec<Term> = (0..4).map(|v| bind.resolve(&Term::var(v))).collect();
        assert_eq!(before, restored);
    });
}

// ---------------------------------------------------------------------
// Solver vs brute-force oracle on generated fact bases.
// ---------------------------------------------------------------------

/// A random binary-relation fact base over atoms a..e, restricted to
/// DAG edges (source index < target index): plain SLD resolution of the
/// textbook `reach/2` diverges on cyclic graphs, which is a property of
/// Prolog's search strategy, not a bug to be tested away here.
fn arb_edges(rng: &mut CaseRng) -> Vec<(usize, usize)> {
    rng.vec(0, 12, |r| (r.usize_in(0, 4), r.usize_in(1, 5)))
        .into_iter()
        .filter_map(|(a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            (lo != hi).then_some((lo, hi))
        })
        .collect()
}

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn kb_from_edges(edges: &[(usize, usize)]) -> KnowledgeBase {
    let mut src = String::new();
    for &(x, y) in edges {
        src.push_str(&format!("edge({}, {}). ", NAMES[x], NAMES[y]));
    }
    src.push_str(
        "reach(X, X).
         reach(X, Z) :- edge(X, Y), reach(Y, Z).",
    );
    KnowledgeBase::parse(&src).expect("generated program is valid")
}

/// Reflexive-transitive closure by plain Rust.
fn oracle_reach(edges: &[(usize, usize)]) -> [[bool; 5]; 5] {
    let mut r = [[false; 5]; 5];
    for (i, row) in r.iter_mut().enumerate() {
        row[i] = true;
    }
    loop {
        let mut changed = false;
        for &(x, y) in edges {
            for row in r.iter_mut() {
                if row[x] && !row[y] {
                    row[y] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return r;
        }
    }
}

/// The solver's reach/2 agrees with a Rust transitive-closure oracle
/// on every node pair, and the OR-parallel solver agrees with both.
#[test]
fn reachability_matches_oracle() {
    check("reachability_matches_oracle", 32, |rng| {
        let edges = arb_edges(rng);
        let kb = kb_from_edges(&edges);
        let expect = oracle_reach(&edges);
        let mut solver = Solver::new(&kb);
        solver.max_steps = 2_000_000;
        for s in 0..5 {
            for t in 0..5 {
                let q = format!("reach({}, {})", NAMES[s], NAMES[t]);
                let seq = !solver.solve_str(&q, 1).unwrap().is_empty();
                assert!(!solver.truncated(), "query too deep: {q}");
                assert_eq!(seq, expect[s][t], "{q}");
                let par = solve_first_parallel(&kb, &q).unwrap().solution.is_some();
                assert_eq!(par, expect[s][t], "parallel {q}");
            }
        }
    });
}

/// Enumerating all solutions of reach(a, X) yields exactly the
/// oracle's reachable set, each exactly once per derivation-free
/// count (set equality).
#[test]
fn enumeration_matches_oracle_set() {
    check("enumeration_matches_oracle_set", 32, |rng| {
        let edges = arb_edges(rng);
        let kb = kb_from_edges(&edges);
        let expect = oracle_reach(&edges);
        let mut solver = Solver::new(&kb);
        solver.max_steps = 2_000_000;
        let sols = solver.solve_str("reach(a, X)", 500).unwrap();
        if solver.truncated() {
            return;
        }
        let got: std::collections::BTreeSet<String> =
            sols.iter().map(|s| s.binding_str("X").unwrap()).collect();
        let want: std::collections::BTreeSet<String> = (0..5)
            .filter(|&t| expect[0][t])
            .map(|t| NAMES[t].to_string())
            .collect();
        assert_eq!(got, want);
    });
}

/// Branch profiles partition sequential work: for an unsatisfiable
/// first goal, DFS steps equal the per-branch totals (±bookkeeping).
#[test]
fn profiles_partition_work() {
    check("profiles_partition_work", 32, |rng| {
        let edges = arb_edges(rng);
        let kb = kb_from_edges(&edges);
        // reach(b, zz): zz is not a node, so the query fails after full
        // exploration — unless b reaches nothing, still fine.
        let q = "reach(b, zz)";
        let profiles = profile_branches(&kb, q).unwrap();
        let mut solver = Solver::new(&kb);
        solver.max_steps = 2_000_000;
        assert!(solver.solve_str(q, 1).unwrap().is_empty());
        if solver.truncated() {
            return;
        }
        let total: u64 = profiles.iter().map(|p| p.steps).sum();
        assert!(
            solver.steps().abs_diff(total) <= profiles.len() as u64 + 2,
            "seq {} vs branch total {}",
            solver.steps(),
            total
        );
    });
}

/// parse → display → parse round-trips for queries over the term
/// grammar (modulo variable renaming, which display normalizes).
#[test]
fn display_parse_round_trip() {
    check("display_parse_round_trip", 256, |rng| {
        let t = arb_term(rng, 3);
        // Embed in a goal so the parser accepts it.
        let text = format!("holds({t})");
        let q1 = parse_query(&text).expect("display emits parseable text");
        let text2 = q1.goals[0].to_string();
        let q2 = parse_query(&text2).expect("round trip");
        assert_eq!(q1.goals[0].to_string(), q2.goals[0].to_string());
    });
}
