//! Microbenchmarks of the Prolog engine: unification, the classic
//! naive-reverse workload, and OR-parallel racing on the host.
//!
//! §7 argues logic programs are an ideal target: "an overwhelming
//! preponderance of read references" and data-driven execution times.

use altx_bench::Micro;
use altx_prolog::{solve_first_parallel, KnowledgeBase, Solver, Term};

fn lists_kb() -> KnowledgeBase {
    KnowledgeBase::parse(
        "append([], L, L).
         append([H | T], L, [H | R]) :- append(T, L, R).
         nrev([], []).
         nrev([H | T], R) :- nrev(T, RT), append(RT, [H], R).",
    )
    .expect("valid program")
}

fn bench_unify(m: &Micro) {
    for depth in [4usize, 16, 64] {
        // f(f(...f(a)...)) against itself with a variable at the bottom.
        let mut ground = Term::atom("a");
        let mut open = Term::var(0);
        for _ in 0..depth {
            ground = Term::compound("f", vec![ground]);
            open = Term::compound("f", vec![open]);
        }
        m.run(&format!("unify/deep_terms/{depth}"), || {
            let mut bindings = altx_prolog::Bindings::new();
            bindings.ensure(1);
            bindings.unify(&ground, &open)
        });
    }
}

fn bench_nrev(m: &Micro) {
    let kb = lists_kb();
    let m = m.sample_size(8);
    for len in [10usize, 20, 30] {
        let items: Vec<String> = (0..len).map(|i| i.to_string()).collect();
        let query = format!("nrev([{}], R)", items.join(", "));
        m.run(&format!("nrev/first_solution/{len}"), || {
            let mut solver = Solver::new(&kb);
            solver.solve_str(&query, 1).expect("valid").len()
        });
    }
}

fn bench_or_parallel(m: &Micro) {
    let kb = KnowledgeBase::parse(
        "countdown(0).
         countdown(N) :- N > 0, M is N - 1, countdown(M).
         q(D) :- countdown(D), fail.
         q(D) :- countdown(D), countdown(D), fail.
         q(_).",
    )
    .expect("valid program");
    let m = m.sample_size(8);
    m.run("or_parallel/sequential_dfs", || {
        let mut solver = Solver::new(&kb);
        solver.solve_str("q(3000)", 1).expect("valid").len()
    });
    m.run("or_parallel/threaded_race", || {
        solve_first_parallel(&kb, "q(3000)")
            .expect("valid")
            .winner_branch
    });
}

fn main() {
    let m = Micro::new();
    bench_unify(&m);
    bench_nrev(&m);
    bench_or_parallel(&m);
}
