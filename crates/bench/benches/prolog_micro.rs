//! Criterion microbenchmarks of the Prolog engine: unification, the
//! classic naive-reverse workload, and OR-parallel racing on the host.
//!
//! §7 argues logic programs are an ideal target: "an overwhelming
//! preponderance of read references" and data-driven execution times.

use altx_prolog::{solve_first_parallel, KnowledgeBase, Solver, Term};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn lists_kb() -> KnowledgeBase {
    KnowledgeBase::parse(
        "append([], L, L).
         append([H | T], L, [H | R]) :- append(T, L, R).
         nrev([], []).
         nrev([H | T], R) :- nrev(T, RT), append(RT, [H], R).",
    )
    .expect("valid program")
}

fn bench_unify(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify");
    for depth in [4usize, 16, 64] {
        // f(f(...f(a)...)) against itself with a variable at the bottom.
        let mut ground = Term::atom("a");
        let mut open = Term::var(0);
        for _ in 0..depth {
            ground = Term::compound("f", vec![ground]);
            open = Term::compound("f", vec![open]);
        }
        group.bench_with_input(BenchmarkId::new("deep_terms", depth), &depth, |b, _| {
            b.iter(|| {
                let mut bindings = altx_prolog::Bindings::new();
                bindings.ensure(1);
                black_box(bindings.unify(&ground, &open))
            });
        });
    }
    group.finish();
}

fn bench_nrev(c: &mut Criterion) {
    let kb = lists_kb();
    let mut group = c.benchmark_group("nrev");
    group.sample_size(20);
    for len in [10usize, 20, 30] {
        let items: Vec<String> = (0..len).map(|i| i.to_string()).collect();
        let query = format!("nrev([{}], R)", items.join(", "));
        group.bench_with_input(BenchmarkId::new("first_solution", len), &len, |b, _| {
            b.iter(|| {
                let mut solver = Solver::new(&kb);
                black_box(solver.solve_str(&query, 1).expect("valid").len())
            });
        });
    }
    group.finish();
}

fn bench_or_parallel(c: &mut Criterion) {
    let kb = KnowledgeBase::parse(
        "countdown(0).
         countdown(N) :- N > 0, M is N - 1, countdown(M).
         q(D) :- countdown(D), fail.
         q(D) :- countdown(D), countdown(D), fail.
         q(_).",
    )
    .expect("valid program");
    let mut group = c.benchmark_group("or_parallel");
    group.sample_size(20);
    group.bench_function("sequential_dfs", |b| {
        b.iter(|| {
            let mut solver = Solver::new(&kb);
            black_box(solver.solve_str("q(3000)", 1).expect("valid").len())
        });
    });
    group.bench_function("threaded_race", |b| {
        b.iter(|| black_box(solve_first_parallel(&kb, "q(3000)").expect("valid").winner_branch));
    });
    group.finish();
}

criterion_group!(benches, bench_unify, bench_nrev, bench_or_parallel);
criterion_main!(benches);
