//! Microbenchmarks of the simulation substrates themselves:
//! how fast the deterministic kernel, consensus simulator, and
//! checkpoint codec run on the host. These bound experiment turnaround,
//! not paper results.

use altx_bench::Micro;
use altx_cluster::Checkpoint;
use altx_consensus::{CandidateSpec, ConsensusConfig, ConsensusSim};
use altx_des::{SimDuration, SimTime};
use altx_kernel::{AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program};
use altx_pager::{AddressSpace, PageSize};

fn bench_kernel_race(m: &Micro) {
    for n in [2usize, 8, 32] {
        m.run(&format!("sim_kernel/race/{n}"), || {
            let alts: Vec<Alternative> = (0..n)
                .map(|i| {
                    Alternative::new(GuardSpec::Const(true), Program::compute_ms(10 + i as u64))
                })
                .collect();
            let mut kernel = Kernel::new(KernelConfig::default());
            let root = kernel.spawn(
                Program::new(vec![Op::AltBlock(AltBlockSpec::new(alts))]),
                64 * 1024,
            );
            let report = kernel.run();
            report.block_outcomes(root)[0].winner
        });
    }
    // A contended single-CPU run exercises the quantum-slicing path.
    m.run("sim_kernel/race_1cpu_sliced", || {
        let alts: Vec<Alternative> = (0..4)
            .map(|_| Alternative::new(GuardSpec::Const(true), Program::compute_ms(100)))
            .collect();
        let mut kernel = Kernel::new(KernelConfig {
            cpus: 1,
            quantum: SimDuration::from_millis(1),
            ..KernelConfig::default()
        });
        let root = kernel.spawn(
            Program::new(vec![Op::AltBlock(AltBlockSpec::new(alts))]),
            16 * 1024,
        );
        kernel.run().block_outcomes(root)[0].winner
    });
}

fn bench_consensus_sim(m: &Micro) {
    m.run("sim_consensus_lossy", || {
        let mut cfg = ConsensusConfig::simple(
            5,
            vec![
                CandidateSpec::new(1, SimTime::ZERO),
                CandidateSpec::new(2, SimTime::from_nanos(1_000_000)),
            ],
        );
        cfg.faults.drop_probability = 0.3;
        ConsensusSim::new(cfg).run().winner
    });
}

fn bench_checkpoint(m: &Micro) {
    for kb in [16usize, 64, 320] {
        let mut space = AddressSpace::zeroed(kb * 1024, PageSize::K2);
        let pages = space.page_count();
        space.touch_pages(0, pages / 2, 0x5A); // half resident
        let image = Checkpoint::capture(&space);
        m.run(&format!("checkpoint/capture/{kb}"), || {
            Checkpoint::capture(&space).len()
        });
        m.run(&format!("checkpoint/restore/{kb}"), || {
            image.restore().expect("valid").page_count()
        });
    }
}

fn main() {
    let m = Micro::new();
    bench_kernel_race(&m);
    bench_consensus_sim(&m);
    bench_checkpoint(&m);
}
