//! Criterion microbenchmarks of the simulation substrates themselves:
//! how fast the deterministic kernel, consensus simulator, and
//! checkpoint codec run on the host. These bound experiment turnaround,
//! not paper results.

use altx_cluster::Checkpoint;
use altx_consensus::{CandidateSpec, ConsensusConfig, ConsensusSim};
use altx_des::{SimDuration, SimTime};
use altx_kernel::{
    AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program,
};
use altx_pager::{AddressSpace, PageSize};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_kernel_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    for n in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("race", n), &n, |b, &n| {
            b.iter(|| {
                let alts: Vec<Alternative> = (0..n)
                    .map(|i| {
                        Alternative::new(
                            GuardSpec::Const(true),
                            Program::compute_ms(10 + i as u64),
                        )
                    })
                    .collect();
                let mut kernel = Kernel::new(KernelConfig::default());
                let root = kernel.spawn(
                    Program::new(vec![Op::AltBlock(AltBlockSpec::new(alts))]),
                    64 * 1024,
                );
                let report = kernel.run();
                black_box(report.block_outcomes(root)[0].winner)
            });
        });
    }
    // A contended single-CPU run exercises the quantum-slicing path.
    group.bench_function("race_1cpu_sliced", |b| {
        b.iter(|| {
            let alts: Vec<Alternative> = (0..4)
                .map(|_| Alternative::new(GuardSpec::Const(true), Program::compute_ms(100)))
                .collect();
            let mut kernel = Kernel::new(KernelConfig {
                cpus: 1,
                quantum: SimDuration::from_millis(1),
                ..KernelConfig::default()
            });
            let root = kernel.spawn(
                Program::new(vec![Op::AltBlock(AltBlockSpec::new(alts))]),
                16 * 1024,
            );
            black_box(kernel.run().block_outcomes(root)[0].winner)
        });
    });
    group.finish();
}

fn bench_consensus_sim(c: &mut Criterion) {
    c.bench_function("sim_consensus_lossy", |b| {
        b.iter(|| {
            let mut cfg = ConsensusConfig::simple(
                5,
                vec![
                    CandidateSpec::new(1, SimTime::ZERO),
                    CandidateSpec::new(2, SimTime::from_nanos(1_000_000)),
                ],
            );
            cfg.faults.drop_probability = 0.3;
            black_box(ConsensusSim::new(cfg).run().winner)
        });
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    for kb in [16usize, 64, 320] {
        let mut space = AddressSpace::zeroed(kb * 1024, PageSize::K2);
        let pages = space.page_count();
        space.touch_pages(0, pages / 2, 0x5A); // half resident
        let image = Checkpoint::capture(&space);
        group.bench_with_input(BenchmarkId::new("capture", kb), &kb, |b, _| {
            b.iter(|| black_box(Checkpoint::capture(&space).len()));
        });
        group.bench_with_input(BenchmarkId::new("restore", kb), &kb, |b, _| {
            b.iter(|| black_box(image.restore().expect("valid").page_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_race, bench_consensus_sim, bench_checkpoint);
criterion_main!(benches);
