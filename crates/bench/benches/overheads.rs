//! Microbenchmarks of τ(overhead)'s components (§4.3) in the
//! real-thread engine and its substrates: setup (spawn + COW fork),
//! runtime (COW faults), and selection, plus the predicate and message
//! machinery that §3.3/§3.4 argue is cheap.

use altx::engine::{OrderedEngine, ThreadedEngine};
use altx::{AddressSpace, AltBlock, Engine, PageSize};
use altx_bench::Micro;
use altx_ipc::{classify, Message};
use altx_predicates::{Pid, PredicateSet};

/// Setup + selection: racing N trivial alternatives measures pure engine
/// overhead (no useful work to hide it behind).
fn bench_engine_overhead(m: &Micro) {
    for n in [1usize, 2, 4, 8] {
        let mut block: AltBlock<usize> = AltBlock::new();
        for i in 0..n {
            block = block.alternative(format!("alt{i}"), move |_w, _t| Some(i));
        }
        m.run(&format!("engine_overhead/threaded_trivial/{n}"), || {
            let mut ws = AddressSpace::zeroed(64 * 1024, PageSize::K4);
            ThreadedEngine::new().execute(&block, &mut ws).value
        });
        m.run(&format!("engine_overhead/ordered_trivial/{n}"), || {
            let mut ws = AddressSpace::zeroed(64 * 1024, PageSize::K4);
            OrderedEngine::new().execute(&block, &mut ws).value
        });
    }
}

/// Runtime overhead: COW fork of an address space and the per-page copy
/// cost of the first write — the §4.4 quantities on host hardware.
fn bench_cow(m: &Micro) {
    for pages in [16usize, 64, 256] {
        let bytes = pages * PageSize::K4.bytes();
        let parent = AddressSpace::from_bytes(&vec![7u8; bytes], PageSize::K4);
        m.run(&format!("cow/fork/{pages}"), || {
            parent.cow_fork().page_count()
        });
        m.run(&format!("cow/fork_write_all/{pages}"), || {
            let mut child = parent.cow_fork();
            child.touch_pages(0, pages, 0xFF);
            child.stats().pages_copied
        });
        m.run(&format!("cow/fork_write_one/{pages}"), || {
            let mut child = parent.cow_fork();
            child.write(0, &[1, 2, 3]);
            child.stats().pages_copied
        });
    }
}

/// The predicate algebra: §3.3 claims process-status predicates are cheap
/// to maintain; measure set construction, comparison, and resolution.
fn bench_predicates(m: &Micro) {
    for n in [4usize, 16, 64] {
        let mut receiver = PredicateSet::new();
        for i in 0..n as u64 {
            if i % 2 == 0 {
                receiver.assume_completes(Pid::new(i)).expect("fresh");
            } else {
                receiver.assume_fails(Pid::new(i)).expect("fresh");
            }
        }
        let mut sender = receiver.clone();
        sender.assume_completes(Pid::new(1_000)).expect("fresh");
        m.run(&format!("predicates/compare/{n}"), || {
            receiver.compare(&sender)
        });
        m.run(&format!("predicates/sibling_rivalry/{n}"), || {
            let cohort: Vec<Pid> = (0..n as u64).map(|i| Pid::new(10_000 + i)).collect();
            PredicateSet::child_of(&receiver)
                .with_sibling_rivalry(cohort[0], cohort.iter().copied())
                .expect("fresh cohort")
        });
        m.run(&format!("predicates/resolve/{n}"), || {
            let mut s = receiver.clone();
            s.resolve(Pid::new(0), altx_predicates::Outcome::Completed)
        });
    }
}

/// Message classification (§3.4.2): the per-message acceptance decision.
fn bench_message_classify(m: &Micro) {
    let mut receiver = PredicateSet::new();
    for i in 0..16u64 {
        receiver.assume_completes(Pid::new(i)).expect("fresh");
    }
    let mut sender_pred = receiver.clone();
    sender_pred.assume_completes(Pid::new(99)).expect("fresh");
    let msg = Message::new(
        Pid::new(99),
        Pid::new(1),
        sender_pred,
        &b"payload-bytes"[..],
    );
    m.run("message_classify_split", || classify(&receiver, &msg));
}

fn main() {
    let m = Micro::new();
    bench_engine_overhead(&m);
    bench_cow(&m);
    bench_predicates(&m);
    bench_message_classify(&m);
}
