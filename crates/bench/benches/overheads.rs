//! Criterion microbenchmarks of τ(overhead)'s components (§4.3) in the
//! real-thread engine and its substrates: setup (spawn + COW fork),
//! runtime (COW faults), and selection, plus the predicate and message
//! machinery that §3.3/§3.4 argue is cheap.

use altx::engine::{OrderedEngine, ThreadedEngine};
use altx::{AddressSpace, AltBlock, Engine, PageSize};
use altx_ipc::{classify, Message};
use altx_predicates::{Pid, PredicateSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Setup + selection: racing N trivial alternatives measures pure engine
/// overhead (no useful work to hide it behind).
fn bench_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_overhead");
    for n in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threaded_trivial", n), &n, |b, &n| {
            let mut block: AltBlock<usize> = AltBlock::new();
            for i in 0..n {
                block = block.alternative(format!("alt{i}"), move |_w, _t| Some(i));
            }
            b.iter(|| {
                let mut ws = AddressSpace::zeroed(64 * 1024, PageSize::K4);
                black_box(ThreadedEngine::new().execute(&block, &mut ws).value)
            });
        });
        group.bench_with_input(BenchmarkId::new("ordered_trivial", n), &n, |b, &n| {
            let mut block: AltBlock<usize> = AltBlock::new();
            for i in 0..n {
                block = block.alternative(format!("alt{i}"), move |_w, _t| Some(i));
            }
            b.iter(|| {
                let mut ws = AddressSpace::zeroed(64 * 1024, PageSize::K4);
                black_box(OrderedEngine::new().execute(&block, &mut ws).value)
            });
        });
    }
    group.finish();
}

/// Runtime overhead: COW fork of an address space and the per-page copy
/// cost of the first write — the §4.4 quantities on host hardware.
fn bench_cow(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow");
    for pages in [16usize, 64, 256] {
        let bytes = pages * PageSize::K4.bytes();
        let parent = AddressSpace::from_bytes(&vec![7u8; bytes], PageSize::K4);
        group.bench_with_input(BenchmarkId::new("fork", pages), &pages, |b, _| {
            b.iter(|| black_box(parent.cow_fork().page_count()));
        });
        group.bench_with_input(BenchmarkId::new("fork_write_all", pages), &pages, |b, &p| {
            b.iter(|| {
                let mut child = parent.cow_fork();
                child.touch_pages(0, p, 0xFF);
                black_box(child.stats().pages_copied)
            });
        });
        group.bench_with_input(BenchmarkId::new("fork_write_one", pages), &pages, |b, _| {
            b.iter(|| {
                let mut child = parent.cow_fork();
                child.write(0, &[1, 2, 3]);
                black_box(child.stats().pages_copied)
            });
        });
    }
    group.finish();
}

/// The predicate algebra: §3.3 claims process-status predicates are cheap
/// to maintain; measure set construction, comparison, and resolution.
fn bench_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicates");
    for n in [4usize, 16, 64] {
        let mut receiver = PredicateSet::new();
        for i in 0..n as u64 {
            if i % 2 == 0 {
                receiver.assume_completes(Pid::new(i)).expect("fresh");
            } else {
                receiver.assume_fails(Pid::new(i)).expect("fresh");
            }
        }
        let mut sender = receiver.clone();
        sender.assume_completes(Pid::new(1_000)).expect("fresh");
        group.bench_with_input(BenchmarkId::new("compare", n), &n, |b, _| {
            b.iter(|| black_box(receiver.compare(&sender)));
        });
        group.bench_with_input(BenchmarkId::new("sibling_rivalry", n), &n, |b, &n| {
            b.iter(|| {
                let cohort: Vec<Pid> = (0..n as u64).map(|i| Pid::new(10_000 + i)).collect();
                black_box(
                    PredicateSet::child_of(&receiver)
                        .with_sibling_rivalry(cohort[0], cohort.iter().copied())
                        .expect("fresh cohort"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("resolve", n), &n, |b, _| {
            b.iter(|| {
                let mut s = receiver.clone();
                black_box(s.resolve(Pid::new(0), altx_predicates::Outcome::Completed))
            });
        });
    }
    group.finish();
}

/// Message classification (§3.4.2): the per-message acceptance decision.
fn bench_message_classify(c: &mut Criterion) {
    let mut receiver = PredicateSet::new();
    for i in 0..16u64 {
        receiver.assume_completes(Pid::new(i)).expect("fresh");
    }
    let mut sender_pred = receiver.clone();
    sender_pred.assume_completes(Pid::new(99)).expect("fresh");
    let msg = Message::new(Pid::new(99), Pid::new(1), sender_pred, &b"payload-bytes"[..]);
    c.bench_function("message_classify_split", |b| {
        b.iter(|| black_box(classify(&receiver, &msg)))
    });
}

criterion_group!(
    benches,
    bench_engine_overhead,
    bench_cow,
    bench_predicates,
    bench_message_classify
);
criterion_main!(benches);
