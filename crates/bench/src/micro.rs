//! Hand-rolled micro-benchmark timer.
//!
//! A std-only stand-in for Criterion: each benchmark warms up, picks a
//! batch size targeting a fixed per-sample duration, collects a set of
//! samples, and prints min/median/mean nanoseconds per iteration. The
//! `benches/*.rs` targets are plain `fn main()` programs (`harness =
//! false`) built on this module, so `cargo bench` works offline.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration timing statistics for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct MicroStats {
    /// Fastest sample, ns/iter — the least-noise estimate.
    pub min_ns: f64,
    /// Median sample, ns/iter.
    pub median_ns: f64,
    /// Mean across samples, ns/iter.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// A micro-benchmark runner with tunable sampling effort.
#[derive(Debug, Clone, Copy)]
pub struct Micro {
    warmup: Duration,
    samples: usize,
    target_sample: Duration,
}

impl Default for Micro {
    fn default() -> Self {
        Self::new()
    }
}

impl Micro {
    /// Default effort: ~20 ms warm-up, 15 samples of ≥2 ms each.
    pub fn new() -> Self {
        Micro {
            warmup: Duration::from_millis(20),
            samples: 15,
            target_sample: Duration::from_millis(2),
        }
    }

    /// Overrides the number of samples (use fewer for slow workloads).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(3);
        self
    }

    /// Times `f`, prints one report line, and returns the statistics.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> MicroStats {
        // Warm-up: run until the budget elapses, estimating per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let iters = ((self.target_sample.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let stats = MicroStats {
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
        };
        println!(
            "{:<44} median {:>12} min {:>12}  ({} samples x {} iters)",
            name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        stats
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let stats = Micro::new()
            .sample_size(3)
            .run("spin", || (0..100u64).sum::<u64>());
        assert!(stats.min_ns > 0.0);
        assert!(stats.median_ns >= stats.min_ns);
        assert!(stats.iters_per_sample >= 1);
    }

    #[test]
    fn unit_formatting() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2.0e9).ends_with(" s"));
    }
}
