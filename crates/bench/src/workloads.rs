//! Shared workload generators for the experiment binaries.
//!
//! The paper's performance story is about *distributions* of alternative
//! execution times: stable, partitionable, or erratic (§4.2's three
//! cases), with failures injected for the recovery-block experiments.
//! These generators centralize the sampling used across E6–E13 so the
//! regimes are defined in exactly one place.

use altx_des::{SimDuration, SimRng};

/// A distribution of alternative execution times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeDistribution {
    /// Log-normal around a median with dispersion `sigma` — the
    /// heavy-tailed regime where fastest-first shines.
    LogNormal {
        /// Median time in milliseconds.
        median_ms: f64,
        /// Dispersion of the underlying normal.
        sigma: f64,
    },
    /// Uniform in `[lo_ms, hi_ms)` — bounded spread.
    Uniform {
        /// Lower bound (ms).
        lo_ms: f64,
        /// Upper bound (ms).
        hi_ms: f64,
    },
    /// Bimodal: `fast_ms` with probability `p_fast`, else `slow_ms` —
    /// the "usually quick, sometimes pathological" query-plan shape.
    Bimodal {
        /// Fast mode (ms).
        fast_ms: f64,
        /// Slow mode (ms).
        slow_ms: f64,
        /// Probability of the fast mode.
        p_fast: f64,
    },
    /// Every sample equals `ms` — the degenerate regime where racing
    /// can only lose.
    Constant {
        /// The time (ms).
        ms: f64,
    },
}

impl TimeDistribution {
    /// Draws one execution time.
    ///
    /// # Panics
    ///
    /// Panics if the distribution's parameters are invalid (non-positive
    /// times, probability outside `[0, 1]`, inverted bounds).
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let ms = match *self {
            TimeDistribution::LogNormal { median_ms, sigma } => {
                assert!(median_ms > 0.0 && sigma >= 0.0, "bad log-normal params");
                rng.log_normal(median_ms.ln(), sigma)
            }
            TimeDistribution::Uniform { lo_ms, hi_ms } => {
                assert!(0.0 < lo_ms && lo_ms <= hi_ms, "bad uniform bounds");
                rng.range_f64(lo_ms, hi_ms)
            }
            TimeDistribution::Bimodal {
                fast_ms,
                slow_ms,
                p_fast,
            } => {
                assert!(
                    fast_ms > 0.0 && slow_ms > 0.0 && (0.0..=1.0).contains(&p_fast),
                    "bad bimodal params"
                );
                if rng.chance(p_fast) {
                    fast_ms
                } else {
                    slow_ms
                }
            }
            TimeDistribution::Constant { ms } => {
                assert!(ms > 0.0, "bad constant time");
                ms
            }
        };
        SimDuration::from_millis_f64(ms.max(0.001))
    }

    /// Draws a whole cohort of `n` alternative times.
    pub fn sample_n(&self, n: usize, rng: &mut SimRng) -> Vec<SimDuration> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Empirical summary of a distribution, via sampling — used by
/// experiments to report the regime they generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeSummary {
    /// Sample mean (ms).
    pub mean_ms: f64,
    /// Sample coefficient of variation.
    pub cv: f64,
}

/// Summarizes a distribution with `n` samples.
pub fn summarize(dist: &TimeDistribution, n: usize, rng: &mut SimRng) -> RegimeSummary {
    assert!(n > 1, "need at least two samples");
    let samples: Vec<f64> = (0..n).map(|_| dist.sample(rng).as_millis_f64()).collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    RegimeSummary {
        mean_ms: mean,
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let d = TimeDistribution::LogNormal {
            median_ms: 100.0,
            sigma: 0.5,
        };
        let mut r = rng();
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| d.sample(&mut r).as_millis_f64())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = samples[samples.len() / 2];
        assert!((median - 100.0).abs() < 5.0, "median {median}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = TimeDistribution::Uniform {
            lo_ms: 10.0,
            hi_ms: 20.0,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let t = d.sample(&mut r).as_millis_f64();
            assert!((10.0..20.0).contains(&t), "{t}");
        }
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let d = TimeDistribution::Bimodal {
            fast_ms: 1.0,
            slow_ms: 100.0,
            p_fast: 0.5,
        };
        let mut r = rng();
        let samples = d.sample_n(1000, &mut r);
        let fast = samples.iter().filter(|t| t.as_millis_f64() < 50.0).count();
        assert!((400..600).contains(&fast), "fast count {fast}");
    }

    #[test]
    fn constant_is_constant() {
        let d = TimeDistribution::Constant { ms: 42.0 };
        let mut r = rng();
        assert!(d
            .sample_n(10, &mut r)
            .iter()
            .all(|t| t.as_millis_f64() == 42.0));
    }

    #[test]
    fn summaries_rank_dispersion() {
        let mut r = rng();
        let tight = summarize(
            &TimeDistribution::Uniform {
                lo_ms: 99.0,
                hi_ms: 101.0,
            },
            2000,
            &mut r,
        );
        let wide = summarize(
            &TimeDistribution::LogNormal {
                median_ms: 100.0,
                sigma: 1.2,
            },
            2000,
            &mut r,
        );
        assert!(tight.cv < 0.05, "tight cv {}", tight.cv);
        assert!(wide.cv > 0.5, "wide cv {}", wide.cv);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = TimeDistribution::LogNormal {
            median_ms: 50.0,
            sigma: 0.7,
        };
        let a = d.sample_n(10, &mut SimRng::seed_from_u64(1));
        let b = d.sample_n(10, &mut SimRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad uniform bounds")]
    fn bad_bounds_rejected() {
        TimeDistribution::Uniform {
            lo_ms: 5.0,
            hi_ms: 1.0,
        }
        .sample(&mut rng());
    }
}
