//! Plain-text table formatting for experiment output.
//!
//! The experiment binaries print paper-style tables to stdout; this keeps
//! the alignment logic in one place.

use std::fmt;

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use altx_bench::Table;
/// let mut t = Table::new(vec!["name", "value"]);
/// t.row(vec!["pi".into(), "1.33".into()]);
/// let s = t.to_string();
/// assert!(s.contains("name"));
/// assert!(s.contains("1.33"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// An ASCII Gantt-style timeline: one bar per process, scaled to fit a
/// fixed width — used to render Figure 2's "concurrent execution of
/// alternates" picture from a kernel trace.
#[derive(Debug, Clone)]
pub struct Timeline {
    width: usize,
    rows: Vec<TimelineRow>,
    t_max: f64,
}

#[derive(Debug, Clone)]
struct TimelineRow {
    label: String,
    start: f64,
    end: f64,
    terminator: char,
}

impl Timeline {
    /// Creates a timeline rendered `width` characters wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is less than 10.
    pub fn new(width: usize) -> Self {
        assert!(width >= 10, "timeline too narrow");
        Timeline {
            width,
            rows: Vec::new(),
            t_max: 0.0,
        }
    }

    /// Adds a bar spanning `[start, end]` (any consistent time unit),
    /// ended with `terminator` (e.g. '✓' for a winner, '×' for an
    /// eliminated sibling).
    ///
    /// # Panics
    ///
    /// Panics if the span is negative or not finite.
    pub fn bar(
        &mut self,
        label: impl Into<String>,
        start: f64,
        end: f64,
        terminator: char,
    ) -> &mut Self {
        assert!(
            start.is_finite() && end.is_finite() && end >= start && start >= 0.0,
            "invalid bar [{start}, {end}]"
        );
        self.t_max = self.t_max.max(end);
        self.rows.push(TimelineRow {
            label: label.into(),
            start,
            end,
            terminator,
        });
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no bars were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows.is_empty() {
            return writeln!(f, "(empty timeline)");
        }
        let label_w = self.rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
        let scale = if self.t_max > 0.0 {
            (self.width - 1) as f64 / self.t_max
        } else {
            0.0
        };
        for row in &self.rows {
            let s = (row.start * scale).round() as usize;
            let e = ((row.end * scale).round() as usize).max(s);
            let mut lane = vec![' '; self.width + 1];
            for cell in lane.iter_mut().take(e).skip(s) {
                *cell = '═';
            }
            if s < lane.len() {
                lane[s] = '╞';
            }
            if e < lane.len() {
                lane[e] = row.terminator;
            }
            let lane: String = lane.into_iter().collect();
            writeln!(f, "{:>label_w$} {}", row.label, lane.trim_end())?;
        }
        writeln!(
            f,
            "{:>label_w$} 0{:>width$.1}",
            "",
            self.t_max,
            width = self.width - 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("xxxxxx"));
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(vec!["c"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]).row(vec!["2".into()]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn wrong_arity_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn timeline_renders_scaled_bars() {
        let mut tl = Timeline::new(40);
        tl.bar("parent", 0.0, 10.0, '▶');
        tl.bar("alt1", 1.0, 5.0, '✓');
        tl.bar("alt2", 2.0, 5.0, '×');
        let s = tl.to_string();
        assert_eq!(tl.len(), 3);
        assert!(s.contains("parent"), "{s}");
        assert!(s.contains('✓'), "{s}");
        assert!(s.contains('×'), "{s}");
        assert!(s.contains("10.0"), "axis label: {s}");
        // The winner's bar ends earlier than the parent's.
        let alt1_line = s.lines().find(|l| l.contains("alt1")).expect("alt1 row");
        let parent_line = s
            .lines()
            .find(|l| l.contains("parent"))
            .expect("parent row");
        assert!(alt1_line.trim_end().len() < parent_line.trim_end().len());
    }

    #[test]
    fn timeline_empty_and_zero_span() {
        let tl = Timeline::new(20);
        assert!(tl.is_empty());
        assert!(tl.to_string().contains("empty"));
        let mut tl = Timeline::new(20);
        tl.bar("instant", 0.0, 0.0, '•');
        assert!(tl.to_string().contains('•'));
    }

    #[test]
    #[should_panic(expected = "invalid bar")]
    fn timeline_rejects_negative_span() {
        Timeline::new(20).bar("bad", 5.0, 1.0, 'x');
    }
}
