//! Experiment E11 (extension) — replication × alternatives (§6).
//!
//! "Transparent replication can easily be combined with the use of
//! parallel execution of several alternatives for increases in
//! performance, reliability, or both."
//!
//! Monte-Carlo sweep: two alternatives (fast/slow), per-replica node
//! crash probability, replica count k ∈ {1, 2, 3}. Reported: block
//! success rate, mean completion time of successful runs, and the rfork
//! bill — reliability and latency bought with hardware.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_replication`

use altx_bench::Table;
use altx_cluster::{ReplicatedAlternate, ReplicatedRace};
use altx_des::{SimDuration, SimRng};

const TRIALS: usize = 400;

fn cell(k: usize, crash_prob: f64, rng: &mut SimRng) -> (f64, f64, usize) {
    let mut successes = 0usize;
    let mut total_secs = 0.0;
    let mut rforks = 0usize;
    for _ in 0..TRIALS {
        let mk = |compute_ms: f64, rng: &mut SimRng| {
            let mut alt =
                ReplicatedAlternate::healthy(SimDuration::from_millis_f64(compute_ms.max(1.0)), k);
            for c in alt.replica_crashes.iter_mut() {
                *c = rng.chance(crash_prob);
            }
            alt
        };
        let fast = mk(
            rng.log_normal(8.0_f64.ln() * 0.0 + 3_000.0_f64.ln(), 0.3),
            rng,
        );
        let slow = mk(rng.log_normal(7_000.0_f64.ln(), 0.3), rng);
        let race = ReplicatedRace::new(70 * 1024, vec![fast, slow]);
        let report = race.run();
        rforks += report.rforks;
        if let Some(done) = report.completed_at {
            successes += 1;
            total_secs += done.as_secs_f64();
        }
    }
    (
        successes as f64 / TRIALS as f64,
        if successes > 0 {
            total_secs / successes as f64
        } else {
            f64::NAN
        },
        rforks / TRIALS,
    )
}

fn main() {
    println!("E11 — replication × alternatives: reliability and latency vs hardware");
    println!("(2 alternatives, {TRIALS} trials/cell, per-replica crash probability p)\n");

    let mut rng = SimRng::seed_from_u64(606);
    let mut table = Table::new(vec![
        "replicas k",
        "P(replica crash)",
        "block success",
        "mean completion",
        "rforks/block",
    ]);
    let mut success = std::collections::BTreeMap::new();
    for k in [1usize, 2, 3] {
        for p in [0.1f64, 0.3, 0.5] {
            let (ok, mean, forks) = cell(k, p, &mut rng);
            success.insert((k, (p * 10.0) as u32), ok);
            table.row(vec![
                format!("{k}"),
                format!("{p:.1}"),
                format!("{:.1}%", ok * 100.0),
                if mean.is_nan() {
                    "-".into()
                } else {
                    format!("{mean:.2}s")
                },
                format!("{forks}"),
            ]);
        }
    }
    println!("{table}");

    // Shape assertions: replication buys reliability at every crash rate.
    for p in [1u32, 3, 5] {
        assert!(
            success[&(3, p)] > success[&(1, p)],
            "3 replicas must beat 1 at p={p}: {success:?}"
        );
        assert!(
            success[&(2, p)] >= success[&(1, p)],
            "2 replicas must not be worse at p={p}"
        );
    }
    // At p=0.5, one replica of each of two alternatives survives with
    // probability 1 - 0.25 = 0.75-ish; three replicas push it near 1.
    assert!(success[&(3, 5)] > 0.95, "{success:?}");
    println!("success rate climbs with k at every crash rate: the at-most-one");
    println!("semantics are untouched (replicas are the *same* alternative; the first");
    println!("response is the response) — reliability is pure hardware spend. ✓");
}
