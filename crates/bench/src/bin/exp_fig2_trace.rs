//! Experiment E1 — Figures 1 and 2: concurrent execution of alternates.
//!
//! Reproduces the paper's Figure 2 as a timestamped kernel trace: the
//! parent forks three alternates of an alternative block, waits, the
//! fastest alternate whose guard holds synchronizes, and the siblings are
//! eliminated.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_fig2_trace`

use altx_bench::Timeline;
use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program, TraceEvent,
};

fn main() {
    println!("E1 — Figure 1/2: an alternative block executed concurrently\n");
    println!("ALTBEGIN");
    println!("    ENSURE guard1 WITH method1 (60 ms, guard holds)     OR");
    println!("    ENSURE guard2 WITH method2 (25 ms, guard FAILS)     OR");
    println!("    ENSURE guard3 WITH method3 (35 ms, guard holds)     OR");
    println!("    FAIL");
    println!("END\n");

    let block = AltBlockSpec::new(vec![
        Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(60)),
                Op::Write {
                    addr: 0,
                    data: b"method1".to_vec(),
                },
            ]),
        ),
        Alternative::new(
            GuardSpec::Const(false),
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(25)),
                Op::Write {
                    addr: 0,
                    data: b"method2".to_vec(),
                },
            ]),
        ),
        Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(35)),
                Op::Write {
                    addr: 0,
                    data: b"method3".to_vec(),
                },
            ]),
        ),
    ]);

    let mut kernel = Kernel::new(KernelConfig::default());
    let root = kernel.spawn(Program::new(vec![Op::AltBlock(block)]), 64 * 1024);
    let report = kernel.run();

    println!("kernel trace ({}):", kernel.profile().name());
    for event in report.trace() {
        println!("  {event}");
    }

    // Render Figure 2: one lane per process, winner marked ✓, the
    // guard-failing abort ▢, the eliminated sibling ×.
    let mut spawn_at = std::collections::BTreeMap::new();
    let mut end_at = std::collections::BTreeMap::new();
    let mut marker = std::collections::BTreeMap::new();
    for event in report.trace() {
        match *event {
            TraceEvent::Spawned { at, pid, .. } => {
                spawn_at.insert(pid, at.as_millis_f64());
            }
            TraceEvent::Synchronized { at, winner, .. } => {
                end_at.insert(winner, at.as_millis_f64());
                marker.insert(winner, '✓');
            }
            TraceEvent::Aborted { at, pid } => {
                end_at.insert(pid, at.as_millis_f64());
                marker.insert(pid, '▢');
            }
            TraceEvent::Eliminated { at, pid } => {
                end_at.insert(pid, at.as_millis_f64());
                marker.insert(pid, '×');
            }
            _ => {}
        }
    }
    let mut figure = Timeline::new(60);
    let finish = report.finished_at.as_millis_f64();
    for (pid, &start) in &spawn_at {
        let end = end_at.get(pid).copied().unwrap_or(finish);
        let m = marker.get(pid).copied().unwrap_or('▶');
        let label = if spawn_at.keys().next() == Some(pid) {
            format!("{pid} (parent)")
        } else {
            format!("{pid}")
        };
        figure.bar(label, start, end, m);
    }
    println!(
        "
Figure 2 (ms; ✓ synchronized, ▢ guard failed, × eliminated):
"
    );
    print!("{figure}");

    let outcome = &report.block_outcomes(root)[0];
    let mut space = kernel.space(root).expect("root space").clone();
    println!(
        "\nwinner: alternative {} (0-indexed {:?})",
        outcome.winner.map(|w| w + 1).unwrap_or(0),
        outcome.winner
    );
    println!(
        "parent state after absorption: {:?}",
        String::from_utf8_lossy(&space.read_vec(0, 7))
    );
    println!(
        "block elapsed (spawn → parent resumed): {}",
        outcome.elapsed()
    );
    println!("setup (alt_spawn forks): {}", outcome.setup_cost);
    println!(
        "stats: {} forks, {} teardowns, wasted speculative compute {}",
        report.stats.forks, report.stats.teardowns, report.stats.wasted_compute
    );

    assert_eq!(
        outcome.winner,
        Some(2),
        "method3: fastest whose guard holds"
    );
    // Note: with closer times the serial alt_spawn stagger (one fork per
    // child) can reorder finishes — itself a faithful §4.1 setup-cost
    // effect; the 25 ms separations here keep the figure unambiguous.
    println!("\npaper expectation: fastest guard-satisfying alternate wins — method3. ✓");

    // Also emit the trace in Chrome-tracing format for interactive
    // viewing (chrome://tracing or Perfetto).
    let json = altx_kernel::chrome_trace_json(report.trace(), report.finished_at);
    let path = "target/fig2_trace.json";
    if std::fs::write(path, &json).is_ok() {
        println!("chrome trace written to {path} ({} bytes)", json.len());
    }
}
