//! Experiment E12 (ablation) — copy-on-write vs eager state copying.
//!
//! The paper's §3.3 design choice: speculative alternates inherit the
//! parent's page map copy-on-write. The alternative design — copying the
//! whole address space at spawn, which §5.1.2 even recommends for
//! fault-isolation in recovery blocks ("we may copy all of the state
//! rather than copying as necessary") — is simulated here by charging
//! the full copy cost at fork time.
//!
//! Sweeps the write fraction f: COW's advantage is largest for read-
//! mostly alternates (the common case the paper argues: "a large portion
//! of the shared state is read-only") and disappears as f → 1, where COW
//! pays the same copies *plus* fault overhead. Crossover location is the
//! ablation's finding.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_ablation_cow`

use altx_bench::Table;
use altx_des::SimDuration;
use altx_pager::MachineProfile;

/// Spawn-to-decision cost of racing N alternates that each write
/// fraction `f` of a `pages`-page space, winner compute `t`.
///
/// COW:   N×(fork) + winner's path (compute + f×pages cow-faults).
/// Eager: N×(fork + pages full copies, no fault overhead) + compute.
fn cow_cost(
    profile: &MachineProfile,
    n: usize,
    pages: usize,
    f: f64,
    t: SimDuration,
) -> SimDuration {
    let dirty = (pages as f64 * f).round() as usize;
    profile.fork_cost(pages) * n as u64 + t + profile.copy_cost(dirty)
}

fn eager_cost(
    profile: &MachineProfile,
    n: usize,
    pages: usize,
    _f: f64,
    t: SimDuration,
) -> SimDuration {
    // Eager copy at spawn: the full space, but as a bulk copy (no
    // per-page trap), for every alternate.
    (profile.fork_cost(pages) + profile.page_copy_time() * pages as u64) * n as u64 + t
}

fn main() {
    println!("E12 — ablation: COW inheritance vs eager full copy at alt_spawn");
    println!("(3 alternates, 320K space, winner computes 100 ms, HP 9000/350)\n");

    let profile = MachineProfile::hp_9000_350();
    let pages = profile.page_size().pages_for(320 * 1024);
    let n = 3;
    let t = SimDuration::from_millis(100);

    let mut table = Table::new(vec!["write fraction", "COW", "eager copy", "COW saves"]);
    let mut cow_wins = 0;
    for percent in [0u32, 5, 10, 25, 50, 75, 100] {
        let f = percent as f64 / 100.0;
        let cow = cow_cost(&profile, n, pages, f, t);
        let eager = eager_cost(&profile, n, pages, f, t);
        if cow < eager {
            cow_wins += 1;
        }
        let delta = if cow <= eager {
            format!("{}", eager - cow)
        } else {
            format!("-{}", cow - eager)
        };
        table.row(vec![
            format!("{percent}%"),
            format!("{cow}"),
            format!("{eager}"),
            delta,
        ]);
    }
    println!("{table}");

    // The paper's premise: alternates are read-mostly, so COW wins there.
    let cow_ro = cow_cost(&profile, n, pages, 0.05, t);
    let eager_ro = eager_cost(&profile, n, pages, 0.05, t);
    assert!(
        cow_ro.mul_f64(1.5) < eager_ro,
        "COW must win decisively at 5% writes: {cow_ro} vs {eager_ro}"
    );
    // And eager only ever catches up when the winner rewrites nearly
    // everything — N× the space still has to be copied eagerly, vs 1×
    // (the winner's) under COW, so eager never actually wins here.
    assert!(cow_wins >= 6, "COW should win almost the whole sweep");
    println!(
        "COW wins across the sweep: even at f = 1 the eager design copies the\n\
         space for every alternate while COW copies only what the (single)\n\
         winner path dirties — \"reducing the amount of state which must be\n\
         maintained\" is also reducing the amount that must be *copied*. ✓"
    );

    // Where eager could matter: §5.1.2's availability argument. Show the
    // bill for pre-copying everything (failure isolation) explicitly.
    let iso = eager_cost(&profile, n, pages, 1.0, SimDuration::ZERO);
    println!(
        "\nfault-isolation price (pre-copying all state for {n} alternates,\n\
         §5.1.2's \"so that the state not become inaccessible\"): {iso} up front."
    );
}
