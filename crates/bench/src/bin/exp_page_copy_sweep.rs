//! Experiment E4 — §4.4 page-copy rates and the write-fraction sweep.
//!
//! "The measured service rate of page copying was 326 2K pages/second for
//! the 3B2, and 1034 4K pages/second for the HP. The fraction of the
//! pages in the address space which are written is the important
//! independent variable for a program with a known address space size,
//! using copy-on-write."
//!
//! For a 320 KB program we fork an alternate and have it dirty a fraction
//! f of the inherited pages, sweeping f from 0 to 1; reported: total
//! speculation overhead (fork + copies) and the effective copy rate.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_page_copy_sweep`

use altx_bench::Table;
use altx_des::SimDuration;
use altx_kernel::{AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program};
use altx_pager::{AddressSpace, MachineProfile};

/// Forks one alternate that dirties `dirty` of the parent's mapped pages;
/// returns (total block time, time spent copying).
fn run(profile: &MachineProfile, bytes: usize, dirty: usize) -> (SimDuration, SimDuration) {
    let mut kernel = Kernel::new(KernelConfig {
        profile: profile.clone(),
        ..KernelConfig::default()
    });
    let body = if dirty > 0 {
        Program::new(vec![Op::TouchPages {
            first: 0,
            count: dirty,
        }])
    } else {
        Program::empty()
    };
    let spec = AltBlockSpec::new(vec![Alternative::new(GuardSpec::Const(true), body)]);
    let image = AddressSpace::from_bytes(&vec![0x77; bytes], profile.page_size());
    let root = kernel.spawn_with_space(Program::new(vec![Op::AltBlock(spec)]), image);
    let report = kernel.run();
    let o = &report.block_outcomes(root)[0];
    (o.elapsed(), profile.copy_cost(dirty))
}

fn main() {
    println!("E4 — §4.4 page-copy service rates + write-fraction sweep (320K program)\n");

    // Part 1: the headline rates.
    for (profile, paper_rate) in [
        (MachineProfile::att_3b2_310(), 326.0),
        (MachineProfile::hp_9000_350(), 1034.0),
    ] {
        println!(
            "{:<13} page size {}  copy rate: model {:.0} pages/s (paper: {:.0})",
            profile.name(),
            profile.page_size(),
            profile.page_copy_rate(),
            paper_rate
        );
        assert!((profile.page_copy_rate() - paper_rate).abs() < 1.0);
    }

    // Part 2: the write-fraction sweep.
    let bytes = 320 * 1024;
    println!("\nwrite fraction f → speculation overhead (fork + COW copies):\n");
    let mut table = Table::new(vec![
        "f",
        "3B2 pages copied",
        "3B2 total",
        "3B2 copy time",
        "HP pages copied",
        "HP total",
        "HP copy time",
    ]);
    for percent in [0, 10, 25, 50, 75, 100] {
        let att = MachineProfile::att_3b2_310();
        let hp = MachineProfile::hp_9000_350();
        let att_pages = att.page_size().pages_for(bytes) * percent / 100;
        let hp_pages = hp.page_size().pages_for(bytes) * percent / 100;
        let (att_total, att_copy) = run(&att, bytes, att_pages);
        let (hp_total, hp_copy) = run(&hp, bytes, hp_pages);
        table.row(vec![
            format!("{percent}%"),
            format!("{att_pages}"),
            format!("{att_total}"),
            format!("{att_copy}"),
            format!("{hp_pages}"),
            format!("{hp_total}"),
            format!("{hp_copy}"),
        ]);
    }
    println!("{table}");

    let (att_0, _) = run(&MachineProfile::att_3b2_310(), bytes, 0);
    let (att_all, _) = run(&MachineProfile::att_3b2_310(), bytes, 160);
    println!(
        "shape check: 3B2 f=0 costs {att_0} (pure fork), f=1 costs {att_all};\n\
         copying the whole 320K dominates the fork by >10× — exactly why COW\n\
         inheritance (not eager copying) makes speculation affordable. ✓"
    );
    assert!(att_all > att_0 * 10);
}
