//! Experiment E6 — speedup vs dispersion of alternative times.
//!
//! §4.2: the opportunity exploited by fastest-first racing "is well-
//! encapsulated by such a statistical measure of dispersion (letting
//! values of τ serve as the random variable) as the variance."
//!
//! Holding the mean fixed, we sweep the coefficient of variation of
//! N = 3 alternative times and report the analytic PI and the simulated
//! PI on the calibrated kernel; then we sweep the overhead to exhibit
//! the crossover PI = 1 at overhead = mean − best (§4.3's win
//! condition).
//!
//! Run: `cargo run --release -p altx-bench --bin exp_speedup_vs_variance`

use altx::engine::sim::{measured_pi, SimRaceSpec};
use altx::perf::{breakeven_overhead, coefficient_of_variation, performance_improvement, Overhead};
use altx_bench::{summarize, Table, TimeDistribution};
use altx_des::SimRng;

/// Three times with mean 200 ms and a controlled spread.
fn times_with_spread(spread: f64) -> [f64; 3] {
    let mean = 200.0;
    [mean - spread, mean, mean + spread]
}

fn main() {
    println!("E6 — PI vs dispersion (N = 3, mean fixed at 200 ms)\n");

    let mut table = Table::new(vec![
        "spread ±ms",
        "CV",
        "PI analytic (ovh=20)",
        "PI simulated",
        "parallel wins?",
    ]);
    for spread in [0.0, 25.0, 50.0, 100.0, 150.0, 190.0] {
        let times = times_with_spread(spread);
        let cv = coefficient_of_variation(&times);
        let analytic = performance_improvement(&times, &Overhead::total_of(20.0));
        let ms: Vec<u64> = times.iter().map(|&t| t as u64).collect();
        let simulated = measured_pi(&SimRaceSpec::from_millis(&ms).with_dirty_pages(2));
        table.row(vec![
            format!("{spread:.0}"),
            format!("{cv:.3}"),
            format!("{analytic:.2}"),
            format!("{simulated:.2}"),
            if analytic > 1.0 { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{table}");

    // Monotonicity check: PI grows with dispersion, both analytically and
    // in simulation.
    let pis: Vec<f64> = [0.0, 50.0, 150.0]
        .iter()
        .map(|&s| {
            let ms: Vec<u64> = times_with_spread(s).iter().map(|&t| t as u64).collect();
            measured_pi(&SimRaceSpec::from_millis(&ms).with_dirty_pages(2))
        })
        .collect();
    assert!(pis[0] < pis[1] && pis[1] < pis[2], "{pis:?}");
    println!("simulated PI is monotone in dispersion: {pis:?} ✓\n");

    // The crossover: PI = 1 exactly at overhead = mean − best.
    println!(
        "crossover sweep for times (100, 200, 300), breakeven overhead = mean − best = {} ms:\n",
        breakeven_overhead(&[100.0, 200.0, 300.0])
    );
    let mut table = Table::new(vec!["overhead ms", "PI analytic", "regime"]);
    for overhead in [0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0] {
        let pi = performance_improvement(&[100.0, 200.0, 300.0], &Overhead::total_of(overhead));
        table.row(vec![
            format!("{overhead:.0}"),
            format!("{pi:.3}"),
            (if pi > 1.001 {
                "parallel wins"
            } else if pi < 0.999 {
                "sequential wins"
            } else {
                "← crossover"
            })
            .into(),
        ]);
    }
    println!("{table}");
    let at_breakeven = performance_improvement(&[100.0, 200.0, 300.0], &Overhead::total_of(100.0));
    assert!((at_breakeven - 1.0).abs() < 1e-12);
    println!("crossover lands exactly at overhead = 100 ms. ✓\n");

    // Distributional view: draw N=3 alternative times from whole
    // distributions and report mean simulated PI per regime — dispersion
    // ranking carries over from fixed vectors to sampled workloads.
    println!("sampled regimes (N = 3 alternatives, 40 draws each, simulated kernel):\n");
    let regimes: [(&str, TimeDistribution); 4] = [
        ("constant 200ms", TimeDistribution::Constant { ms: 200.0 }),
        (
            "uniform 150-250ms",
            TimeDistribution::Uniform {
                lo_ms: 150.0,
                hi_ms: 250.0,
            },
        ),
        (
            "lognormal σ=0.8",
            TimeDistribution::LogNormal {
                median_ms: 150.0,
                sigma: 0.8,
            },
        ),
        (
            "bimodal 20/600ms",
            TimeDistribution::Bimodal {
                fast_ms: 20.0,
                slow_ms: 600.0,
                p_fast: 0.4,
            },
        ),
    ];
    let mut table = Table::new(vec!["regime", "regime CV", "mean simulated PI"]);
    let mut mean_pis = Vec::new();
    for (name, dist) in &regimes {
        let mut rng = SimRng::seed_from_u64(0xE6);
        let summary = summarize(dist, 4000, &mut rng);
        let mut pi_total = 0.0;
        let draws = 40;
        for _ in 0..draws {
            let times = dist.sample_n(3, &mut rng);
            pi_total += measured_pi(&SimRaceSpec::new(times).with_dirty_pages(2));
        }
        let mean_pi = pi_total / draws as f64;
        mean_pis.push(mean_pi);
        table.row(vec![
            (*name).into(),
            format!("{:.2}", summary.cv),
            format!("{mean_pi:.2}"),
        ]);
    }
    println!("{table}");
    assert!(
        mean_pis.windows(2).all(|w| w[0] < w[1]),
        "mean PI must rank with regime dispersion: {mean_pis:?}"
    );
    assert!(mean_pis[0] < 1.0 && *mean_pis.last().expect("rows") > 1.5);
    println!("mean PI grows across the regimes: constant loses, heavy tails win big.");
    println!("(note the bimodal row: CV is the paper's *proxy* — the true driver is");
    println!(" the mean-vs-min gap, which bimodality maximizes at moderate CV.) ✓");
}
