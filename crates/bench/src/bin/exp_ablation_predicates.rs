//! Experiment E14 (ablation) — process-level predicates vs predicated
//! data objects (§3.3's design argument, made measurable).
//!
//! "The advantage of this representation over predication of data
//! objects is that we can update the value of these elements as
//! processes change status … with the idea that processes change status
//! much less frequently than they make memory references to objects."
//!
//! Workload: one speculative epoch = a cohort of S speculative processes
//! each touching R objects, then every process's fate resolves (S status
//! changes). Bookkeeping compared:
//!
//! * **process-level** (the paper's design): per *message/status*
//!   operations on pid sets — object reads/writes are plain memory plus
//!   COW, no predicate work at all;
//! * **per-object** (the rejected design): every object access walks a
//!   version list, and every resolution visits every version.
//!
//! The ratio R/S is the experiment's independent variable.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_ablation_predicates`

use altx_bench::Table;
use altx_predicates::{Outcome, Pid, PredicateSet, VersionedStore};

/// One epoch under the per-object design. Returns version-list entries
/// visited (its bookkeeping unit).
fn per_object_epoch(spec_procs: usize, refs_per_proc: usize, objects: u64) -> u64 {
    let mut store: VersionedStore<u64> = VersionedStore::new();
    // Committed base state.
    for obj in 0..objects {
        store.write(obj, PredicateSet::new(), obj);
    }
    store.versions_visited = 0;

    let cohort: Vec<Pid> = (0..spec_procs as u64).map(|i| Pid::new(100 + i)).collect();
    for (i, &pid) in cohort.iter().enumerate() {
        let guard = PredicateSet::new()
            .with_sibling_rivalry(pid, cohort.iter().copied())
            .expect("fresh pids");
        for r in 0..refs_per_proc {
            let obj = ((i * refs_per_proc + r) as u64) % objects;
            // Half reads, half writes — both walk version lists.
            if r % 2 == 0 {
                store.read(obj, &guard);
            } else {
                store.write(obj, guard.clone(), r as u64);
            }
        }
    }
    // The epoch resolves: winner completes, the rest fail.
    for (i, &pid) in cohort.iter().enumerate() {
        store.resolve(
            pid,
            if i == 0 {
                Outcome::Completed
            } else {
                Outcome::Failed
            },
        );
    }
    store.versions_visited
}

/// One epoch under the process-level design. Returns pid-set entries
/// touched (its bookkeeping unit): predicate work happens only at spawn
/// and at the S status changes — never per object reference.
fn process_level_epoch(spec_procs: usize, _refs_per_proc: usize) -> u64 {
    let cohort: Vec<Pid> = (0..spec_procs as u64).map(|i| Pid::new(100 + i)).collect();
    let mut sets: Vec<PredicateSet> = cohort
        .iter()
        .map(|&pid| {
            PredicateSet::new()
                .with_sibling_rivalry(pid, cohort.iter().copied())
                .expect("fresh pids")
        })
        .collect();
    // Spawn cost: each set holds `spec_procs` assumptions.
    let mut touched = (spec_procs * spec_procs) as u64;
    // Object references cost nothing here (plain memory + COW).
    // Status changes: each resolution visits each live set once.
    for (i, &pid) in cohort.iter().enumerate() {
        let outcome = if i == 0 {
            Outcome::Completed
        } else {
            Outcome::Failed
        };
        for set in sets.iter_mut() {
            set.resolve(pid, outcome);
            touched += 1;
        }
    }
    touched
}

fn main() {
    println!("E14 — §3.3 ablation: process-level predicates vs predicated objects");
    println!("(epoch = 4 speculative processes over 64 objects; sweep references/process)\n");

    let spec_procs = 4;
    let objects = 64;
    let mut table = Table::new(vec![
        "refs/process",
        "refs : status changes",
        "per-object visits",
        "process-level touches",
        "advantage",
    ]);
    let mut ratios = Vec::new();
    for refs in [4usize, 16, 64, 256, 1024, 4096] {
        let obj_cost = per_object_epoch(spec_procs, refs, objects);
        let proc_cost = process_level_epoch(spec_procs, refs);
        let advantage = obj_cost as f64 / proc_cost as f64;
        ratios.push(advantage);
        table.row(vec![
            format!("{refs}"),
            format!("{}:1", refs / spec_procs),
            format!("{obj_cost}"),
            format!("{proc_cost}"),
            format!("{advantage:.1}x"),
        ]);
    }
    println!("{table}");

    assert!(
        ratios.windows(2).all(|w| w[0] <= w[1]),
        "per-object cost must grow with reference rate: {ratios:?}"
    );
    assert!(
        *ratios.last().expect("rows") > 20.0,
        "at high reference rates the paper's design must dominate: {ratios:?}"
    );
    assert!(
        ratios[0] < 15.0,
        "at low rates the gap is modest: {ratios:?}"
    );
    println!("process-level predicate cost is flat in the reference rate; per-object");
    println!("predication scales with it — \"processes change status much less");
    println!("frequently than they make memory references to objects\". even at a");
    println!("1:1 ratio the rejected design pays ~9x, because *resolution* must");
    println!("sweep every object's version list while the paper's design touches");
    println!("one pid set per process. ✓");
}
