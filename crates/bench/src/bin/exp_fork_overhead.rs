//! Experiment E3 — §4.4 fork overhead.
//!
//! "For the 3B2, a fork() (with no memory updates to a 320K address
//! space) takes about 31 milliseconds; under the same conditions the HP
//! requires about 12 milliseconds."
//!
//! Sweeps COW fork cost against address-space size for both machine
//! profiles, measured through an actual kernel run (one-alternative
//! block, empty body: the block's setup cost is syscall + one fork).
//!
//! Run: `cargo run --release -p altx-bench --bin exp_fork_overhead`

use altx_bench::Table;
use altx_kernel::{AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program};
use altx_pager::MachineProfile;

fn measured_fork_ms(profile: &MachineProfile, bytes: usize) -> f64 {
    let mut kernel = Kernel::new(KernelConfig {
        profile: profile.clone(),
        ..KernelConfig::default()
    });
    let spec = AltBlockSpec::new(vec![Alternative::new(
        GuardSpec::Const(true),
        Program::empty(),
    )]);
    let root = kernel.spawn(Program::new(vec![Op::AltBlock(spec)]), bytes);
    let report = kernel.run();
    // setup = syscall + fork; subtract the syscall to isolate the fork.
    (report.block_outcomes(root)[0].setup_cost - profile.syscall_cost()).as_millis_f64()
}

fn main() {
    println!("E3 — §4.4 fork overhead (COW fork, no memory updates)\n");

    let machines = [MachineProfile::att_3b2_310(), MachineProfile::hp_9000_350()];
    let sizes_kb: [usize; 6] = [64, 128, 256, 320, 512, 1024];

    let mut table = Table::new(vec!["address space", "3B2/310 fork", "HP 9000/350 fork"]);
    for kb in sizes_kb {
        let mut cells = vec![format!("{kb}K")];
        for m in &machines {
            cells.push(format!("{:.2} ms", measured_fork_ms(m, kb * 1024)));
        }
        table.row(cells);
    }
    println!("{table}");

    let att = measured_fork_ms(&machines[0], 320 * 1024);
    let hp = measured_fork_ms(&machines[1], 320 * 1024);
    println!("paper:    fork(320K) ≈ 31 ms (3B2),  ≈ 12 ms (HP)");
    println!("measured: fork(320K) = {att:.2} ms (3B2), {hp:.2} ms (HP)");
    assert!((att - 31.0).abs() < 0.5 && (hp - 12.0).abs() < 0.5);
    println!("\nboth headline numbers reproduced; cost scales linearly with pages. ✓");
}
