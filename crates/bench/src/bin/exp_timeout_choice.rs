//! Experiment E15 — choosing the `alt_wait` timeout (§3.2).
//!
//! "Alt_wait() takes a TIMEOUT value as an argument; the point is that
//! this value should be chosen such that if TIMEOUT time units have
//! elapsed, it is highly probable that none of the alternatives have
//! succeeded. While choosing such a value is very hard, most
//! computations have an execution time which is clearly unacceptable to
//! the application; this value can then be used."
//!
//! Sweep the timeout against a log-normal alternative population and
//! report: false-abort rate (a viable block killed by the timeout),
//! completion time of surviving blocks, and the time wasted on blocks
//! whose alternatives all fail (where the timeout is the only exit).
//!
//! Run: `cargo run --release -p altx-bench --bin exp_timeout_choice`

use altx_bench::{Table, TimeDistribution};
use altx_des::{SimDuration, SimRng};
use altx_kernel::{AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program};

const TRIALS: usize = 120;
/// Probability an alternative's guard fails (so some blocks are doomed
/// and *need* the timeout).
const GUARD_FAIL_P: f64 = 0.5;

struct Cell {
    /// Viable blocks (≥1 passing alternative) aborted by the timeout.
    false_aborts: usize,
    /// Viable blocks that completed.
    completions: usize,
    /// Mean completion time of completed viable blocks (ms).
    mean_completion_ms: f64,
    /// Mean wall time of doomed blocks (all alternatives fail) — how
    /// long the application waits to learn of total failure.
    mean_doomed_ms: f64,
}

fn run_cell(timeout: SimDuration, rng: &mut SimRng) -> Cell {
    let dist = TimeDistribution::LogNormal {
        median_ms: 100.0,
        sigma: 0.8,
    };
    let mut cell = Cell {
        false_aborts: 0,
        completions: 0,
        mean_completion_ms: 0.0,
        mean_doomed_ms: 0.0,
    };
    let mut doomed = 0usize;
    for _ in 0..TRIALS {
        let times = dist.sample_n(3, rng);
        let passes: Vec<bool> = (0..3).map(|_| !rng.chance(GUARD_FAIL_P)).collect();
        let viable = passes.iter().any(|&p| p);
        let alternatives: Vec<Alternative> = times
            .iter()
            .zip(&passes)
            .map(|(&t, &p)| Alternative::new(GuardSpec::Const(p), Program::compute(t)))
            .collect();
        let spec = AltBlockSpec::new(alternatives).with_timeout(timeout);
        let mut kernel = Kernel::new(KernelConfig::default());
        let root = kernel.spawn(Program::new(vec![Op::AltBlock(spec)]), 64 * 1024);
        let report = kernel.run();
        let outcome = &report.block_outcomes(root)[0];
        if viable {
            if outcome.timed_out {
                cell.false_aborts += 1;
            } else if !outcome.failed {
                cell.completions += 1;
                cell.mean_completion_ms += outcome.elapsed().as_millis_f64();
            }
        } else {
            doomed += 1;
            cell.mean_doomed_ms += outcome.elapsed().as_millis_f64();
        }
    }
    if cell.completions > 0 {
        cell.mean_completion_ms /= cell.completions as f64;
    }
    if doomed > 0 {
        cell.mean_doomed_ms /= doomed as f64;
    }
    cell
}

fn main() {
    println!("E15 — alt_wait timeout choice (3 log-normal alternatives, median 100 ms,");
    println!("50% guard-failure rate, {TRIALS} blocks per timeout)\n");

    let mut table = Table::new(vec![
        "timeout",
        "false aborts",
        "completions",
        "mean completion",
        "doomed-block wait",
    ]);
    let mut false_abort_rates = Vec::new();
    let mut doomed_waits = Vec::new();
    for timeout_ms in [50u64, 150, 400, 1_000, 4_000, 20_000] {
        let mut rng = SimRng::seed_from_u64(15);
        let cell = run_cell(SimDuration::from_millis(timeout_ms), &mut rng);
        false_abort_rates.push(cell.false_aborts);
        doomed_waits.push(cell.mean_doomed_ms);
        table.row(vec![
            format!("{timeout_ms} ms"),
            format!("{}", cell.false_aborts),
            format!("{}", cell.completions),
            format!("{:.1} ms", cell.mean_completion_ms),
            format!("{:.1} ms", cell.mean_doomed_ms),
        ]);
    }
    println!("{table}");

    // Shape: tight timeouts abort viable work; generous ones only cost
    // doomed-block latency.
    assert!(
        false_abort_rates.windows(2).all(|w| w[0] >= w[1]),
        "false aborts must fall as the timeout grows: {false_abort_rates:?}"
    );
    assert!(
        false_abort_rates[0] > 10,
        "a 50 ms timeout aborts many viable blocks"
    );
    assert_eq!(
        *false_abort_rates.last().expect("rows"),
        0,
        "a clearly-unacceptable-time timeout aborts nothing viable"
    );
    assert!(
        doomed_waits.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        "doomed blocks wait longer under larger timeouts: {doomed_waits:?}"
    );
    println!("the asymmetry the paper exploits: past the tail of the time distribution,");
    println!("raising the timeout costs nothing on viable blocks — only doomed blocks");
    println!("wait longer. \"most computations have an execution time which is clearly");
    println!("unacceptable to the application; this value can then be used.\" ✓");
}
