//! Experiment E13 — §4.2's selection schemes, head to head.
//!
//! The paper enumerates the options when several interesting Cᵢ exist:
//! the case-2 **synthetic computation** (domain partition / table
//! lookup), **Scheme A** (statistical data), **Scheme B** (random
//! selection), and **Scheme C** (concurrent execution, fastest first).
//! Each is optimal somewhere. This experiment runs all four over three
//! workload regimes and reports mean per-query cost on the calibrated
//! cost model (overhead charged to Scheme C only, per the analysis):
//!
//! * **stable** — one alternative is almost always fastest → A wins;
//! * **partitionable** — the fastest is a cheap function of the input →
//!   the synthetic computation wins;
//! * **erratic** — the fastest varies unpredictably per input → C wins.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_schemes`

use altx_bench::Table;
use altx_des::SimRng;

const N_ALTS: usize = 3;
const QUERIES: usize = 2_000;
/// Scheme C's per-query overhead (ms): forks + selection, §4.3.
const OVERHEAD_MS: f64 = 8.0;

/// Per-query execution times of the three alternatives, per regime.
fn sample_times(regime: &str, rng: &mut SimRng) -> ([f64; 3], usize) {
    match regime {
        // Alternative 0 is almost always ~40 ms; others ~200 ms.
        "stable" => {
            let t = [
                rng.log_normal(40.0f64.ln(), 0.25),
                rng.log_normal(200.0f64.ln(), 0.25),
                rng.log_normal(220.0f64.ln(), 0.25),
            ];
            (t, 0) // the partition key is degenerate: always 0
        }
        // The input class (0..3) determines the fastest, cheaply.
        "partitionable" => {
            let class = rng.index(3);
            let mut t = [0.0; 3];
            for (i, slot) in t.iter_mut().enumerate() {
                let mean: f64 = if i == class { 40.0 } else { 200.0 };
                *slot = rng.log_normal(mean.ln(), 0.25);
            }
            (t, class)
        }
        // Anyone's game: heavy-tailed, independent.
        "erratic" => {
            let t = [
                rng.log_normal(120.0f64.ln(), 1.1),
                rng.log_normal(120.0f64.ln(), 1.1),
                rng.log_normal(120.0f64.ln(), 1.1),
            ];
            (t, 0) // no usable partition: the selector guesses 0
        }
        _ => unreachable!(),
    }
}

struct SchemeCosts {
    synthetic: f64,
    scheme_a: f64,
    scheme_b: f64,
    scheme_c: f64,
}

fn run_regime(regime: &str, seed: u64) -> SchemeCosts {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut means = [0.0f64; N_ALTS];
    let mut runs = [0u64; N_ALTS];
    let mut totals = SchemeCosts {
        synthetic: 0.0,
        scheme_a: 0.0,
        scheme_b: 0.0,
        scheme_c: 0.0,
    };

    for _ in 0..QUERIES {
        let (times, class) = sample_times(regime, &mut rng);

        // Synthetic computation: the partition function picks `class`
        // (1 ms lookup cost, per the paper's table-lookup accounting).
        totals.synthetic += times[class] + 1.0;

        // Scheme A: run the alternative with the best historical mean
        // (explore each once first); update its statistic.
        let pick = (0..N_ALTS)
            .min_by(|&a, &b| {
                let ma = if runs[a] == 0 {
                    f64::NEG_INFINITY
                } else {
                    means[a]
                };
                let mb = if runs[b] == 0 {
                    f64::NEG_INFINITY
                } else {
                    means[b]
                };
                ma.partial_cmp(&mb).expect("no NaN")
            })
            .expect("non-empty");
        totals.scheme_a += times[pick];
        runs[pick] += 1;
        means[pick] += (times[pick] - means[pick]) / runs[pick] as f64;

        // Scheme B: arbitrary selection.
        totals.scheme_b += times[rng.index(N_ALTS)];

        // Scheme C: fastest first plus overhead.
        totals.scheme_c += times.iter().copied().fold(f64::INFINITY, f64::min) + OVERHEAD_MS;
    }
    let q = QUERIES as f64;
    SchemeCosts {
        synthetic: totals.synthetic / q,
        scheme_a: totals.scheme_a / q,
        scheme_b: totals.scheme_b / q,
        scheme_c: totals.scheme_c / q,
    }
}

fn main() {
    println!("E13 — §4.2 selection schemes across workload regimes");
    println!(
        "(3 alternatives, {QUERIES} queries/regime, Scheme C pays {OVERHEAD_MS} ms overhead)\n"
    );

    let mut table = Table::new(vec![
        "regime",
        "synthetic (case 2)",
        "Scheme A (stats)",
        "Scheme B (random)",
        "Scheme C (race)",
    ]);
    let mut results = std::collections::BTreeMap::new();
    for regime in ["stable", "partitionable", "erratic"] {
        let c = run_regime(regime, 0xE13);
        table.row(vec![
            regime.into(),
            format!("{:.1} ms", c.synthetic),
            format!("{:.1} ms", c.scheme_a),
            format!("{:.1} ms", c.scheme_b),
            format!("{:.1} ms", c.scheme_c),
        ]);
        results.insert(regime, c);
    }
    println!("{table}");

    // Shape assertions — each scheme's home turf.
    let stable = &results["stable"];
    assert!(
        stable.scheme_a < stable.scheme_b * 0.5,
        "statistics crush random selection on stable workloads"
    );
    assert!(
        stable.scheme_a < stable.scheme_c,
        "no overhead beats racing when the answer never changes"
    );

    let part = &results["partitionable"];
    assert!(
        part.synthetic < part.scheme_a && part.synthetic < part.scheme_c,
        "a cheap accurate partition beats everything (the paper's sort example)"
    );

    let erratic = &results["erratic"];
    assert!(
        erratic.scheme_c < erratic.scheme_a && erratic.scheme_c < erratic.scheme_b,
        "when per-input performance is unpredictable, racing wins: {:.1} vs A {:.1} / B {:.1}",
        erratic.scheme_c,
        erratic.scheme_a,
        erratic.scheme_b
    );

    println!("each scheme wins its regime; Scheme C's niche is exactly the paper's");
    println!("case 3 — 'where performance on the x ∈ D is unpredictable'. ✓");
}
