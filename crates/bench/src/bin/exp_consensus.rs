//! Experiment E10 — majority-consensus synchronization: the
//! performance-vs-reliability tradeoff (§3.2.1, §5.1.2).
//!
//! "The engineering tradeoff here is between performance and reliability;
//! the additional communication and protocol of multiple-node
//! synchronization is the price paid for increased robustness."
//!
//! Sweeps quorum size and voter-crash count: commit latency, messages
//! used, and whether synchronization remains possible; then sweeps
//! message-loss probability to show retries preserving the at-most-once
//! guarantee.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_consensus`

use altx_bench::Table;
use altx_consensus::{CandidateSpec, ConsensusConfig, ConsensusSim, FaultPlan};
use altx_des::SimTime;

fn main() {
    println!("E10 — majority-consensus 0–1 semaphore (Thomas 1979)\n");

    // Part 1: quorum size × crashed voters.
    println!("part 1: quorum size vs crashed voters (one candidate, reliable messages):\n");
    let mut table = Table::new(vec![
        "voters",
        "crashed",
        "sync possible?",
        "commit latency",
        "messages",
    ]);
    for n in [1usize, 3, 5, 7] {
        for crashed in [0usize, 1, 2, 3] {
            if crashed > n {
                continue;
            }
            let mut cfg = ConsensusConfig::simple(n, vec![CandidateSpec::new(1, SimTime::ZERO)]);
            for v in 0..crashed {
                cfg.faults.voter_crash_times[v] = Some(SimTime::ZERO);
            }
            let report = ConsensusSim::new(cfg).run();
            table.row(vec![
                format!("{n}"),
                format!("{crashed}"),
                if report.winner.is_some() { "yes" } else { "NO" }.into(),
                report
                    .decided_at
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
                format!("{}", report.messages_sent),
            ]);
        }
    }
    println!("{table}");
    println!("a single sync node is a single point of failure (1 voter, 1 crash → NO);");
    println!("5 voters survive 2 crashes; a crashed majority blocks everyone — safely. ✓\n");

    // Part 2: racing candidates under message loss.
    println!("part 2: three racing candidates, lossy network (per-seed trials):\n");
    let mut table = Table::new(vec![
        "P(drop)",
        "winners over 60 trials",
        "at-most-once held?",
        "mean msgs/trial",
    ]);
    for drop in [0.0f64, 0.2, 0.4, 0.6] {
        let mut winners = 0usize;
        let mut msgs = 0u64;
        let mut violations = 0usize;
        for seed in 0..60u64 {
            let mut cfg = ConsensusConfig::simple(
                5,
                vec![
                    CandidateSpec::new(1, SimTime::ZERO),
                    CandidateSpec::new(2, SimTime::from_nanos(500_000)),
                    CandidateSpec::new(3, SimTime::from_nanos(1_000_000)),
                ],
            );
            cfg.faults = FaultPlan {
                voter_crash_times: vec![None; 5],
                drop_probability: drop,
            };
            cfg.seed = seed;
            let report = ConsensusSim::new(cfg).run();
            let wins = report.outcomes.values().filter(|o| o.is_win()).count();
            if wins > 1 {
                violations += 1;
            }
            if wins == 1 {
                winners += 1;
            }
            msgs += report.messages_sent;
        }
        assert_eq!(violations, 0, "at-most-once violated at drop={drop}");
        table.row(vec![
            format!("{drop:.1}"),
            format!("{winners}/60"),
            "yes".into(),
            format!("{:.1}", msgs as f64 / 60.0),
        ]);
    }
    println!("{table}");
    println!("message loss costs retries (more messages, later commits) but can never");
    println!("produce two winners: votes are exclusive and unrevoked. ✓");
}
