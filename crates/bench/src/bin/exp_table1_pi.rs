//! Experiment E2 — the §4.2 performance-improvement table.
//!
//! Reproduces the paper's six-row worked table (N = 3, τ(overhead) = 5)
//! exactly from the analytic model, then cross-checks each row on the
//! simulated kernel, where τ(overhead) is not an abstract constant but
//! the sum of modelled fork, COW, scheduling, and selection costs.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_table1_pi`

use altx::engine::sim::{measured_pi, SimRaceSpec};
use altx::perf::paper_table;
use altx_bench::Table;

fn main() {
    println!("E2 — §4.2 table: PI = τ(C_mean) / (τ(C_best) + τ(overhead))\n");

    let mut table = Table::new(vec![
        "row",
        "τ(C1)",
        "τ(C2)",
        "τ(C3)",
        "overhead",
        "PI (paper)",
        "PI (model)",
        "PI (simulated)",
    ]);

    for row in paper_table() {
        // The simulated cross-check: times interpreted as milliseconds on
        // the calibrated kernel, ample CPUs, small write footprint.
        let times: Vec<u64> = row.times.iter().map(|&t| t as u64).collect();
        let sim_pi = measured_pi(&SimRaceSpec::from_millis(&times).with_dirty_pages(2));
        table.row(vec![
            format!("({})", row.row),
            format!("{}", row.times[0]),
            format!("{}", row.times[1]),
            format!("{}", row.times[2]),
            format!("{}", row.overhead),
            format!("{:.2}", row.paper_pi),
            format!("{:.2}", row.computed_pi()),
            format!("{:.2}", sim_pi),
        ]);
    }
    println!("{table}");

    println!("paper inferences, re-verified:");
    let rows = paper_table();
    let pis: Vec<f64> = rows.iter().map(|r| r.computed_pi()).collect();
    println!(
        "  (3)+(5): the size of the differences matters        — PI {:.2} and {:.2}",
        pis[2], pis[4]
    );
    println!(
        "  (4): overhead vs magnitude of times matters          — PI {:.2}",
        pis[3]
    );
    println!(
        "  (6): overhead effects diminish at larger timescales  — PI {:.2} > (1)'s {:.2}",
        pis[5], pis[0]
    );
    println!(
        "  (2): large dispersion (variance) → large gains       — PI {:.2}",
        pis[1]
    );
    for (row, pi) in rows.iter().zip(&pis) {
        assert!(
            (pi - row.paper_pi).abs() < 0.01,
            "row {} diverges from the paper",
            row.row
        );
    }
    println!("\nall six analytic rows match the paper to printed precision. ✓");
    println!("(simulated PI differs in level — its overhead is the real modelled cost,");
    println!(" not the abstract 5 — but reproduces the win/lose structure.)");
}
