//! Experiment E5 — §4.4 remote fork (`rfork`) cost.
//!
//! "An rfork() of a 70K process requires slightly less than a second, and
//! network delays gave us an observed average execution time of about 1.3
//! seconds."
//!
//! Prints the checkpoint/restore/protocol decomposition for a range of
//! image sizes under the calibrated 1989 model, highlighting the 70 KB
//! row the paper measured.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_rfork`

use altx_bench::Table;
use altx_cluster::RemoteForkModel;

fn main() {
    println!("E5 — §4.4 rfork: checkpoint/restart over the network file system\n");

    let model = RemoteForkModel::calibrated_1989();
    let mut table = Table::new(vec![
        "image",
        "checkpoint",
        "restore",
        "protocol",
        "service total",
        "observed total",
    ]);
    for kb in [10u64, 30, 70, 150, 320] {
        let service = model.service_breakdown(kb * 1024);
        let observed = model.observed_breakdown(kb * 1024);
        let marker = if kb == 70 { " ← paper" } else { "" };
        table.row(vec![
            format!("{kb}K{marker}"),
            format!("{}", observed.checkpoint),
            format!("{}", observed.restore),
            format!("{}", observed.protocol),
            format!("{}", service.total()),
            format!("{}", observed.total()),
        ]);
    }
    println!("{table}");

    let service = model.service_time(70 * 1024);
    let observed = model.observed_time(70 * 1024);
    println!("paper:    70K rfork ≈ just under 1 s service, ≈ 1.3 s observed");
    println!("measured: 70K rfork = {service} service, {observed} observed");
    assert!((0.90..1.00).contains(&service.as_secs_f64()));
    assert!((1.20..1.40).contains(&observed.as_secs_f64()));

    let b = model.service_breakdown(70 * 1024);
    println!(
        "\n\"the major cost … was creating a checkpoint of the process in its\n\
         entirety\": checkpoint {} ≥ restore {} ≫ protocol {}. ✓",
        b.checkpoint, b.restore, b.protocol
    );
    assert!(b.checkpoint >= b.restore && b.restore > b.protocol);
}
