//! Experiment E7 — distributed execution of recovery blocks (§5.1).
//!
//! The Kim (1984) / Welch (1983) experiment shape: recovery blocks whose
//! alternates have injected acceptance-test failures and data-dependent
//! execution times, run sequentially-with-rollback versus concurrently
//! across cluster nodes on the calibrated 1989 cost model.
//!
//! Reported: mean completion times and speedup over a grid of
//! (number of alternates × primary failure probability), plus the
//! synchronization-mode tradeoff (single point vs majority consensus).
//!
//! Run: `cargo run --release -p altx-bench --bin exp_recovery_blocks`

use altx_bench::Table;
use altx_des::SimRng;
use altx_recovery::{AlternateModel, DistributedRecoveryBlock, FaultSpec};

const TRIALS: usize = 300;

/// Means over `TRIALS` random blocks: (sequential s, concurrent s,
/// speedup, block-failure fraction).
fn grid_cell(n_alternates: usize, fail_prob: f64, rng: &mut SimRng) -> (f64, f64, f64, f64) {
    let mut seq = 0.0;
    let mut conc = 0.0;
    let mut speedups = Vec::new();
    let mut failures = 0usize;
    for _ in 0..TRIALS {
        let alternates: Vec<AlternateModel> = (0..n_alternates)
            .map(|i| {
                // Primary fastest, later alternates slower (the paper's
                // ordering heuristic), all with the same failure odds.
                let median = 3_000.0 * (1.0 + i as f64 * 0.8);
                let mut alt = AlternateModel::sample(rng, median, 0.5, &FaultSpec::none());
                alt.passes = !rng.chance(fail_prob);
                alt
            })
            .collect();
        let block = DistributedRecoveryBlock::new(alternates);
        let cmp = block.compare();
        seq += cmp.sequential_time.as_secs_f64();
        match (cmp.concurrent_time, cmp.speedup) {
            (Some(ct), Some(s)) => {
                conc += ct.as_secs_f64();
                speedups.push(s);
            }
            _ => failures += 1,
        }
    }
    let n_ok = speedups.len().max(1) as f64;
    (
        seq / TRIALS as f64,
        conc / n_ok,
        speedups.iter().sum::<f64>() / n_ok,
        failures as f64 / TRIALS as f64,
    )
}

fn main() {
    println!("E7 — distributed recovery blocks: sequential rollback vs concurrent race");
    println!("({TRIALS} random blocks per cell; times include rfork + sync + copy-back)\n");

    let mut rng = SimRng::seed_from_u64(1989);
    let mut table = Table::new(vec![
        "alternates",
        "P(alt fails)",
        "seq mean",
        "conc mean",
        "mean speedup",
        "P(block fails)",
    ]);
    let mut speedup_at = std::collections::BTreeMap::new();
    for &n in &[2usize, 4] {
        for &p in &[0.0, 0.2, 0.4, 0.6] {
            let (s, c, sp, bf) = grid_cell(n, p, &mut rng);
            speedup_at.insert((n, (p * 10.0) as u32), sp);
            table.row(vec![
                format!("{n}"),
                format!("{p:.1}"),
                format!("{s:.2}s"),
                format!("{c:.2}s"),
                format!("{sp:.2}x"),
                format!("{bf:.3}"),
            ]);
        }
    }
    println!("{table}");

    // Shape assertions: concurrency pays more as failures rise and as
    // more alternates exist to hide them.
    assert!(
        speedup_at[&(2, 6)] > speedup_at[&(2, 0)],
        "failures should favor racing: {speedup_at:?}"
    );
    assert!(
        speedup_at[&(4, 6)] > speedup_at[&(2, 6)],
        "more alternates hide more failures: {speedup_at:?}"
    );
    println!("speedup grows with failure rate and alternate count (fastest-first finds");
    println!("\"a rapid failure-free path through the computation\"). ✓\n");

    // Synchronization tradeoff (§5.1.2): majority consensus removes the
    // single point of failure at a latency cost.
    println!("synchronization mode tradeoff (2 alternates, no faults):\n");
    let mut rng = SimRng::seed_from_u64(77);
    let alternates: Vec<AlternateModel> = (0..2)
        .map(|_| AlternateModel::sample(&mut rng, 3_000.0, 0.3, &FaultSpec::none()))
        .collect();
    let mut table = Table::new(vec!["sync mode", "completes?", "completion time"]);
    let single = DistributedRecoveryBlock::new(alternates.clone());
    let cmp = single.compare();
    table.row(vec![
        "single point (up)".into(),
        "yes".into(),
        format!("{}", cmp.concurrent_time.expect("completes")),
    ]);
    let mut down = DistributedRecoveryBlock::new(alternates.clone());
    down.sync = altx_cluster::SyncMode::SinglePoint {
        coordinator_up: false,
    };
    table.row(vec![
        "single point (DOWN)".into(),
        "NO — block lost".into(),
        "-".into(),
    ]);
    let majority = DistributedRecoveryBlock::new(alternates.clone()).with_majority_sync(5, 0);
    let m = majority.compare();
    table.row(vec![
        "majority 5 voters".into(),
        "yes".into(),
        format!("{}", m.concurrent_time.expect("completes")),
    ]);
    let majority_crash = DistributedRecoveryBlock::new(alternates).with_majority_sync(5, 2);
    let mc = majority_crash.compare();
    table.row(vec![
        "majority 5 voters, 2 DOWN".into(),
        "yes".into(),
        format!("{}", mc.concurrent_time.expect("completes")),
    ]);
    println!("{table}");
    assert!(down.compare().concurrent_winner.is_none());
    assert!(mc.concurrent_winner.is_some());
    println!("majority consensus tolerates minority crashes the single point cannot;");
    println!("its price is protocol messages (votes), negligible here in latency — the");
    println!("§3.2.1 engineering tradeoff between performance and reliability. ✓");
}
