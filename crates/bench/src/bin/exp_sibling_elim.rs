//! Experiment E9 — synchronous vs asynchronous sibling elimination
//! (§3.2.1).
//!
//! "The deletion can be accomplished synchronously … or asynchronously …
//! we suspect that asynchronous elimination will give better
//! execution-time performance, once again at the expense of resource
//! utilization measures such as throughput."
//!
//! Sweeps the number of alternates and reports the parent's resume
//! latency under both policies, plus the teardown work and wasted
//! speculative compute that the asynchronous policy merely defers.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_sibling_elim`

use altx_bench::Table;
use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, EliminationPolicy, GuardSpec, Kernel, KernelConfig, Op, Program,
};

struct Run {
    elapsed: SimDuration,
    decided_to_resume: SimDuration,
    teardown_work: SimDuration,
    wasted: SimDuration,
    cpu_busy: SimDuration,
    cpus: usize,
}

fn run(n: usize, policy: EliminationPolicy) -> Run {
    let mut alternatives = vec![Alternative::new(
        GuardSpec::Const(true),
        Program::compute_ms(10),
    )];
    for _ in 1..n {
        alternatives.push(Alternative::new(
            GuardSpec::Const(true),
            Program::compute_ms(10_000),
        ));
    }
    let spec = AltBlockSpec::new(alternatives).with_elimination(policy);
    let mut kernel = Kernel::new(KernelConfig {
        cpus: n.max(1),
        ..KernelConfig::default()
    });
    let root = kernel.spawn(Program::new(vec![Op::AltBlock(spec)]), 320 * 1024);
    let report = kernel.run();
    let o = &report.block_outcomes(root)[0];
    Run {
        elapsed: o.elapsed(),
        decided_to_resume: o.parent_resumed_at - o.decided_at,
        teardown_work: report.stats.teardown_work,
        wasted: report.stats.wasted_compute,
        cpu_busy: report.stats.cpu_busy,
        cpus: n.max(1),
    }
}

fn main() {
    println!("E9 — sibling elimination: parent-resume latency, sync vs async\n");
    println!("(winner takes 10 ms; each losing sibling holds a 320K address space)\n");

    let mut table = Table::new(vec![
        "alternates",
        "sync: decide→resume",
        "async: decide→resume",
        "sync total",
        "async total",
        "teardown work",
    ]);
    let mut sync_lat = Vec::new();
    let mut async_lat = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let s = run(n, EliminationPolicy::Synchronous);
        let a = run(n, EliminationPolicy::Asynchronous);
        sync_lat.push(s.decided_to_resume);
        async_lat.push(a.decided_to_resume);
        assert_eq!(
            s.teardown_work, a.teardown_work,
            "same work, different placement"
        );
        table.row(vec![
            format!("{n}"),
            format!("{}", s.decided_to_resume),
            format!("{}", a.decided_to_resume),
            format!("{}", s.elapsed),
            format!("{}", a.elapsed),
            format!("{}", s.teardown_work),
        ]);
    }
    println!("{table}");

    // Shape: sync latency grows with sibling count; async stays flat.
    assert!(
        sync_lat.windows(2).all(|w| w[0] < w[1]),
        "sync resume latency must grow with siblings: {sync_lat:?}"
    );
    assert!(
        async_lat.windows(2).all(|w| w[0] == w[1]),
        "async resume latency must not depend on siblings: {async_lat:?}"
    );
    println!("async elimination returns control at a sibling-independent latency; the");
    println!("teardown bill is identical — it is paid in the background, costing");
    println!("throughput instead of execution time, exactly as §3.2.1 predicts. ✓\n");

    let s = run(8, EliminationPolicy::Synchronous);
    let utilization = s.cpu_busy.as_secs_f64() / (s.cpus as f64 * s.elapsed.as_secs_f64());
    println!(
        "throughput cost at 8 alternates: {} of discarded speculative compute;\n\
         cpu utilization {:.0}% of {} CPUs over the block — execution time is\n\
         bought with busy hardware, the §4.1 trade in one number.",
        s.wasted,
        utilization * 100.0,
        s.cpus
    );
    assert!(
        utilization > 0.25,
        "racing keeps the machine busy: {utilization}"
    );
    // (The serial alt_spawn phase runs on one CPU, diluting the figure;
    // during the race itself all 8 alternates are on-CPU.)
}
