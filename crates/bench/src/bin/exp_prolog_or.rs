//! Experiment E8 — OR-parallelism in Prolog (§5.2).
//!
//! Queries whose alternative clauses have data-dependent, highly variable
//! costs ("the computation is data-driven, and thus the execution time
//! and control flow can vary greatly with the input", §7). Reported:
//!
//! 1. speedup of OR-parallel racing over sequential DFS as the failing
//!    branches deepen;
//! 2. the granularity threshold: the same race as per-step interpreter
//!    cost shrinks, until process-maintenance overhead eats the gain
//!    ("how aggressively available parallelism is exploited is a
//!    function of the overhead associated with maintaining a process").
//!
//! Run: `cargo run --release -p altx-bench --bin exp_prolog_or`

use altx_bench::Table;
use altx_des::SimDuration;
use altx_prolog::{profile_branches, simulate_race, KnowledgeBase, OrSimConfig};

fn program() -> String {
    "
    countdown(0).
    countdown(N) :- N > 0, M is N - 1, countdown(M).
    % query/2: three strategies; the first two burn a data-dependent
    % amount of work and fail, the third is cheap and succeeds.
    query(D, slow)   :- countdown(D), impossible.
    query(D, slower) :- countdown(D), countdown(D), impossible.
    query(_, direct).
    impossible :- fail.
    "
    .to_string()
}

fn main() {
    println!("E8 — OR-parallel Prolog vs sequential DFS (calibrated kernel)\n");
    let kb = KnowledgeBase::parse(&program()).expect("valid program");

    // Part 1: deepening the failing branches.
    println!("part 1: speedup vs depth of the failing branches (50 µs/step):\n");
    let mut table = Table::new(vec![
        "depth",
        "branch steps (1/2/3)",
        "sequential",
        "OR-parallel",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    for depth in [100u32, 1_000, 5_000, 20_000, 80_000] {
        let q = format!("query({depth}, R)");
        let profiles = profile_branches(&kb, &q).expect("valid query");
        let cmp = simulate_race(&profiles, &OrSimConfig::default());
        speedups.push(cmp.speedup);
        table.row(vec![
            format!("{depth}"),
            format!(
                "{}/{}/{}",
                profiles[0].steps, profiles[1].steps, profiles[2].steps
            ),
            format!("{}", cmp.sequential),
            format!("{}", cmp.parallel),
            format!("{:.2}x", cmp.speedup),
        ]);
    }
    println!("{table}");
    assert!(
        speedups.windows(2).all(|w| w[0] < w[1]),
        "speedup must grow with branch depth: {speedups:?}"
    );
    assert!(*speedups.last().expect("non-empty") > 50.0);
    println!("speedup grows with the work wasted by sequential DFS on doomed branches. ✓\n");

    // Part 2: granularity — sweep the per-step cost at fixed depth.
    println!("part 2: granularity threshold at depth 500 (per-process fork overhead fixed):\n");
    let q = "query(500, R)";
    let profiles = profile_branches(&kb, q).expect("valid query");
    let mut table = Table::new(vec![
        "µs per step",
        "sequential",
        "OR-parallel",
        "speedup",
        "worth racing?",
    ]);
    let mut first_winning: Option<u64> = None;
    for us in [1u64, 2, 5, 10, 25, 50, 100] {
        let cfg = OrSimConfig {
            time_per_step: SimDuration::from_micros(us),
            ..OrSimConfig::default()
        };
        let cmp = simulate_race(&profiles, &cfg);
        if cmp.speedup > 1.0 && first_winning.is_none() {
            first_winning = Some(us);
        }
        table.row(vec![
            format!("{us}"),
            format!("{}", cmp.sequential),
            format!("{}", cmp.parallel),
            format!("{:.2}x", cmp.speedup),
            if cmp.speedup > 1.0 { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{table}");
    let threshold = first_winning.expect("racing must pay at some granularity");
    assert!(threshold > 1, "the cheapest steps must NOT be worth racing");
    println!(
        "below ~{threshold} µs/step the fork overhead dominates and racing loses: \"once\n\
         this is known, the proper granularity can be used as a factor in the\n\
         decomposition process\". ✓"
    );
}
