//! Experiment E2b — the §4.2 PI table on real threads, host hardware.
//!
//! The analytic and simulated reproductions (E2) use the 1989 cost
//! model; this binary measures the same six rows with genuine OS-thread
//! racing on the machine running it. Times are interpreted as
//! milliseconds of real spin-work; Scheme B's expected cost (the mean)
//! is measured by running each alternative alone.
//!
//! Wall-clock noise means absolute PI values vary run to run; the
//! asserted reproduction targets are the paper's *orderings*: big
//! dispersion (row 2) beats moderate (row 1), uniform rows (3, 4) lose,
//! row 6 beats row 1.
//!
//! Run: `cargo run --release -p altx-bench --bin exp_threaded_pi`

use altx::engine::{Engine, ThreadedEngine};
use altx::perf::paper_table;
use altx::{AddressSpace, AltBlock, CancelToken, PageSize};
use altx_bench::Table;
use std::time::{Duration, Instant};

/// Spins for `ms` of wall-clock in cancellable 1 ms slices.
fn spin_ms(ms: f64, cancel: &CancelToken) -> Option<()> {
    let end = Instant::now() + Duration::from_secs_f64(ms / 1_000.0);
    while Instant::now() < end {
        cancel.checkpoint()?;
        let slice = Instant::now() + Duration::from_micros(500);
        while Instant::now() < slice {
            std::hint::spin_loop();
        }
    }
    Some(())
}

fn block_for(times: [f64; 3]) -> AltBlock<usize> {
    let mut block = AltBlock::new();
    for (i, t) in times.into_iter().enumerate() {
        block = block.alternative(format!("alt{i}"), move |_ws, cancel| {
            spin_ms(t, cancel)?;
            Some(i)
        });
    }
    block
}

fn main() {
    println!(
        "E2b — §4.2 PI table on real threads ({} host cores)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let engine = ThreadedEngine::new();
    let reps = 5;
    let mut table = Table::new(vec![
        "row",
        "τ(C1..C3) ms",
        "PI paper (ovh=5)",
        "PI measured (host)",
    ]);
    let mut measured = Vec::new();
    for row in paper_table() {
        // Scheme B expectation: mean of solo runs.
        let mut solo_total = 0.0;
        for &t in &row.times {
            let start = Instant::now();
            for _ in 0..reps {
                spin_ms(t, &CancelToken::new());
            }
            solo_total += start.elapsed().as_secs_f64() / reps as f64;
        }
        let scheme_b = solo_total / row.times.len() as f64;

        // Scheme C: the threaded race.
        let start = Instant::now();
        for _ in 0..reps {
            let mut ws = AddressSpace::zeroed(4 * 1024, PageSize::K4);
            let result = engine.execute(&block_for(row.times), &mut ws);
            assert!(result.succeeded());
        }
        let race = start.elapsed().as_secs_f64() / reps as f64;

        let pi = scheme_b / race;
        measured.push(pi);
        table.row(vec![
            format!("({})", row.row),
            format!(
                "{:.0}/{:.0}/{:.0}",
                row.times[0], row.times[1], row.times[2]
            ),
            format!("{:.2}", row.paper_pi),
            format!("{pi:.2}"),
        ]);
    }
    println!("{table}");

    // Ordering assertions (robust to wall-clock noise at these scales).
    assert!(
        measured[1] > measured[0],
        "row 2 (dispersion) must beat row 1: {measured:?}"
    );
    assert!(
        measured[5] > 1.0,
        "row 6 must win on real threads: {measured:?}"
    );
    assert!(
        measured[1] > measured[2],
        "dispersion must beat uniformity: {measured:?}"
    );
    println!("orderings match the paper: dispersion wins, uniform times don't. ✓");
    println!("(absolute PI exceeds the paper's where host thread spawn ≪ 1989 fork.)");
}
