//! # altx-bench — experiment harness for the reproduction
//!
//! One binary per table/figure of the paper (see `EXPERIMENTS.md` at the
//! repository root and the `src/bin/` directory), plus hand-rolled
//! microbenchmarks of the overhead components under `benches/` (plain
//! `fn main()` targets built on [`micro::Micro`] — no external harness).
//!
//! This library crate holds the shared report-formatting helpers the
//! experiment binaries use to print paper-style tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod report;
pub mod workloads;

pub use micro::{Micro, MicroStats};
pub use report::{Table, Timeline};
pub use workloads::{summarize, RegimeSummary, TimeDistribution};
