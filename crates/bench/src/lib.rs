//! # altx-bench — experiment harness for the reproduction
//!
//! One binary per table/figure of the paper (see `EXPERIMENTS.md` at the
//! repository root and the `src/bin/` directory), plus Criterion
//! microbenchmarks of the overhead components under `benches/`.
//!
//! This library crate holds the shared report-formatting helpers the
//! experiment binaries use to print paper-style tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod workloads;

pub use report::{Table, Timeline};
pub use workloads::{summarize, RegimeSummary, TimeDistribution};
