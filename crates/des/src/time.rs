//! Virtual time for the simulation.
//!
//! All altx substrates measure cost in [`SimDuration`]s against a shared
//! virtual clock whose readings are [`SimTime`]s. Both are nanosecond
//! resolution `u64` newtypes: wide enough for ~584 years of simulated time,
//! fine enough to express the sub-microsecond per-instruction costs the
//! kernel cost model charges.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is produced by the simulation clock and consumed by the
/// [`EventQueue`](crate::EventQueue). Subtracting two instants yields a
/// [`SimDuration`].
///
/// # Example
///
/// ```
/// use altx_des::{SimDuration, SimTime};
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(250);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(250_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// Durations are the unit of every cost model in the workspace: page-copy
/// service times, fork setup, network latency, per-unification work, and so
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinite" timeout.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (caps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0 && s <= u64::MAX as f64 / 1_000_000_000.0,
            "from_secs_f64: out-of-range seconds value {s}"
        );
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative, NaN, or too large to represent.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1_000.0)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a floating-point factor, rounding to
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN, or if the result overflows.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "mul_f64: invalid factor {factor}"
        );
        let r = self.0 as f64 * factor;
        assert!(r <= u64::MAX as f64, "mul_f64: overflow");
        SimDuration(r.round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime + SimDuration overflowed"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime - SimDuration underflowed"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration + SimDuration overflowed"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration - SimDuration underflowed"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration * u64 overflowed"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    /// Human scale: picks ns, µs, ms, or s based on magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}µs", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1_000_000_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis_f64(), 10.0);
        assert_eq!(
            t - SimTime::from_nanos(1),
            SimDuration::from_nanos(9_999_999)
        );
        assert_eq!(
            SimDuration::from_millis(4) + SimDuration::from_millis(6),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(10) / 4,
            SimDuration::from_micros(2_500)
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(1).saturating_sub(SimDuration::from_nanos(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_nanos(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn mul_f64_rounds_half_up() {
        assert_eq!(SimDuration::from_nanos(3).mul_f64(0.5).as_nanos(), 2); // 1.5 rounds to 2
        assert_eq!(SimDuration::from_nanos(100).mul_f64(2.25).as_nanos(), 225);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(12_500).to_string(), "12.500µs");
        assert_eq!(SimDuration::from_millis(31).to_string(), "31.000ms");
        assert_eq!(SimDuration::from_millis(1_300).to_string(), "1.300s");
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::from_nanos(5) > SimTime::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
