//! Online summary statistics for experiment harnesses.
//!
//! The paper's analysis (§4.2) is phrased in terms of means and dispersion
//! ("this magnitude of difference is well-encapsulated by … the variance").
//! [`Summary`] accumulates samples with Welford's numerically stable
//! one-pass algorithm and retains the raw samples for exact percentiles,
//! which the experiment binaries report alongside paper expectations.

use crate::time::SimDuration;
use core::fmt;

/// One-pass accumulator of mean / variance / min / max plus retained
/// samples for percentile queries.
///
/// # Example
///
/// ```
/// use altx_des::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
        }
    }

    /// Builds a summary from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN sample would silently poison every
    /// derived statistic).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "Summary::record: NaN sample");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.samples.push(x);
    }

    /// Records a duration sample in milliseconds; convenience for the
    /// virtual-time experiments.
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than one sample).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance; 0.0 with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/µ); 0.0 if the mean is zero.
    ///
    /// The paper's §4.2 observes that the opportunity for fastest-first
    /// speedup is captured by the dispersion of alternative times; CV is
    /// the scale-free form used by experiment E6.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn total(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Exact percentile (nearest-rank method), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile: p out of range");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Read-only view of the raw samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.median().unwrap_or(0.0),
            self.max
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Summary::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_total() {
        let s = Summary::from_samples([3.0, -1.0, 10.0]);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(10.0));
        assert!((s.total() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::from_samples((1..=100).map(f64::from));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(95.0), Some(95.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
    }

    #[test]
    fn coefficient_of_variation() {
        let uniform = Summary::from_samples([5.0, 5.0, 5.0]);
        assert_eq!(uniform.coefficient_of_variation(), 0.0);
        let spread = Summary::from_samples([1.0, 9.0]);
        assert!(spread.coefficient_of_variation() > 0.5);
    }

    #[test]
    fn extend_and_collect() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.extend([3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn record_duration_ms() {
        let mut s = Summary::new();
        s.record_duration_ms(SimDuration::from_millis(31));
        assert_eq!(s.mean(), 31.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let s = Summary::from_samples([1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0]);
        assert!((s.sample_variance() - 30.0).abs() < 1e-6);
    }
}
