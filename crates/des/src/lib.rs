//! # altx-des — deterministic discrete-event simulation core
//!
//! This crate is the foundation of the altx reproduction of Smith &
//! Maguire's *Transparent Concurrent Execution of Mutually Exclusive
//! Alternatives* (ICDCS 1989). The paper's evaluation is driven entirely by
//! *time*: fork latencies, page-copy service rates, network delays, and the
//! execution times of alternative computations. Reproducing those numbers
//! on modern hardware is meaningless, so every substrate in this workspace
//! runs against a **virtual clock** managed here, calibrated to the
//! constants the paper reports for the AT&T 3B2/310 and HP 9000/350.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   with stable FIFO ordering among simultaneous events.
//! * [`rng`] — a hand-rolled, version-stable pseudorandom generator
//!   ([`rng::SimRng`]) so that simulations are bit-for-bit reproducible
//!   regardless of external crate versions.
//! * [`stats`] — online summary statistics (Welford mean/variance,
//!   percentiles) used by every experiment harness.
//!
//! # Example
//!
//! ```
//! use altx_des::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "second");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "first");
//! let (t, ev) = q.pop().expect("event");
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_nanos(1_000_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
