//! Version-stable pseudorandom number generation.
//!
//! Every altx simulation must be bit-for-bit reproducible from its seed so
//! that tests can assert exact virtual-time outcomes. External RNG crates
//! reserve the right to change their streams between versions, so this
//! module hand-rolls two small, well-known generators:
//!
//! * [`SplitMix64`] — used to expand a user seed into generator state.
//! * [`SimRng`] — xoshiro256\*\*, the workhorse generator, plus the handful
//!   of distributions the workload generators need (uniform, Bernoulli,
//!   exponential, normal, log-normal, Zipf-ish discrete choice).

use core::fmt;

/// SplitMix64: a tiny, high-quality 64-bit generator used for seeding.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014 (the `splitmix64` output function).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The simulation RNG: xoshiro256\*\* seeded via SplitMix64.
///
/// Deterministic, `Clone`-able (cloning forks the stream: both copies
/// produce the same subsequent values), and equipped with the distributions
/// the experiment harnesses use.
///
/// # Example
///
/// ```
/// use altx_des::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // State is deliberately summarized; the full state is not useful in
        // test failure output.
        write!(f, "SimRng {{ s0: {:#x}, .. }}", self.s[0])
    }
}

impl SimRng {
    /// Creates a generator whose state is derived from `seed` via
    /// SplitMix64, per the xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro must not be seeded with all zeros; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child generator; used to give each simulated
    /// entity its own stream without cross-coupling.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Returns the next 64 random bits (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`. Uses the top 53 bits for a full-precision
    /// double.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Rejection sampling over the biased region.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo {lo} > hi {hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform usize in `[0, bound)`; convenience for indexing.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "range_f64: bad range"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential: mean must be > 0"
        );
        // Inverse transform; guard against ln(0).
        let mut u = self.next_f64();
        if u == 0.0 {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Standard-normal deviate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        let mut u1 = self.next_f64();
        if u1 == 0.0 {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "normal: bad std_dev");
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal deviate parameterized by the *underlying* normal's mean
    /// and standard deviation. Used for heavy-tailed execution times, the
    /// regime where fastest-first racing shines.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Samples an index from a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weighted_index: bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weighted_index: weights sum to zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // First outputs for seed 0 (cross-checked against the reference C
        // implementation).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::seed_from_u64(9);
        let mut child = parent.fork();
        // Child and parent continue without producing identical streams.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(77);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow generous slack.
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn range_u64_inclusive_bounds() {
        let mut r = SimRng::seed_from_u64(8);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = SimRng::seed_from_u64(21);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.1, "var was {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[r.weighted_index(&[1.0, 2.0, 3.0])] += 1;
        }
        // Expect ~10k / ~20k / ~30k.
        assert!((8_000..12_000).contains(&counts[0]));
        assert!((18_000..22_000).contains(&counts[1]));
        assert!((28_000..32_000).contains(&counts[2]));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(99);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::seed_from_u64(0).next_below(0);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn weighted_index_zero_weights_panics() {
        SimRng::seed_from_u64(0).weighted_index(&[0.0, 0.0]);
    }
}
