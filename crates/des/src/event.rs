//! A deterministic timestamped event queue.
//!
//! [`EventQueue`] is the scheduling backbone of every simulation in the
//! workspace: the kernel's dispatcher, the network's in-flight messages,
//! and the consensus protocol's timers all live in one. Two properties
//! matter and are guaranteed here:
//!
//! 1. **Earliest-deadline-first** delivery.
//! 2. **Stable FIFO tie-breaking**: events scheduled for the same instant
//!    are delivered in the order they were scheduled, so simulations are
//!    deterministic without relying on heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (also the global scheduling order).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first, with
// sequence number as the FIFO tie-breaker.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` events with deterministic ordering.
///
/// The queue also tracks the *current* virtual time: popping an event
/// advances the clock to that event's timestamp. Time never runs backwards;
/// scheduling an event in the past is clamped to "now" (this models an
/// interrupt that is already pending).
///
/// # Example
///
/// ```
/// use altx_des::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_millis(2), "b");
/// q.schedule_after(SimDuration::from_millis(1), "a");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.now(), SimTime::from_nanos(1_000_000));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` for instant `at` (clamped to now if in the
    /// past) and returns a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, payload: E) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule(at, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending, `false` if it had already fired or been
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Lazy deletion: record the id; skip it when popped.
        if self.heap.iter().any(|e| e.seq == id.0) {
            self.cancelled.insert(id.0)
        } else {
            false
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest pending event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Advances the clock to `at` without delivering events. Useful for
    /// injecting external activity; no-op if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            debug_assert!(
                self.heap.is_empty() || self.heap.peek().map(|e| e.at) >= Some(self.now),
                "advancing past pending events"
            );
            self.now = at;
        }
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7_000_000));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "late");
        q.pop();
        // Scheduling in the past fires "immediately" (at now), not before.
        q.schedule(SimTime::from_nanos(1), "pending-interrupt");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "pending-interrupt");
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancelled_event_does_not_advance_clock() {
        let mut q = EventQueue::new();
        let early = q.schedule(SimTime::from_nanos(10), "x");
        q.schedule(SimTime::from_nanos(50), "y");
        q.cancel(early);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(50));
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_nanos(500));
        assert_eq!(q.now(), SimTime::from_nanos(500));
        q.advance_to(SimTime::from_nanos(100));
        assert_eq!(q.now(), SimTime::from_nanos(500));
    }

    #[test]
    fn len_and_is_empty_track_cancellations() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let id = q.schedule(SimTime::from_nanos(1), ());
        assert_eq!(q.len(), 1);
        q.cancel(id);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
