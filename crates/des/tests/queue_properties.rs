//! Property-based tests for the deterministic event queue and statistics.

use altx_check::check;
use altx_des::{EventQueue, SimTime, Summary};

/// Events pop in nondecreasing time order, FIFO within equal times.
#[test]
fn pops_sorted_stable() {
    check("pops_sorted_stable", 64, |rng| {
        let times = rng.vec(1, 60, |r| r.u64_in(0, 50));
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), seq);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some((at, seq)) = q.pop() {
            popped.push((at, seq));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
        // The clock ends at the max scheduled time.
        let max = times.iter().copied().max().expect("non-empty");
        assert_eq!(q.now(), SimTime::from_nanos(max));
    });
}

/// Cancelling an arbitrary subset removes exactly those events.
#[test]
fn cancellation_is_exact() {
    check("cancellation_is_exact", 64, |rng| {
        let times = rng.vec(1, 40, |r| r.u64_in(0, 50));
        let cancel_mask: Vec<bool> = (0..40).map(|_| rng.bool()).collect();
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(seq, &t)| (seq, q.schedule(SimTime::from_nanos(t), seq)))
            .collect();
        let mut kept = Vec::new();
        for (seq, id) in ids {
            if cancel_mask[seq % cancel_mask.len()] {
                assert!(q.cancel(id), "first cancel succeeds");
                assert!(!q.cancel(id), "second cancel fails");
            } else {
                kept.push(seq);
            }
        }
        assert_eq!(q.len(), kept.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, seq)) = q.pop() {
            popped.push(seq);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        assert_eq!(popped, kept);
    });
}

/// Interleaved schedule/pop never lets time run backwards, even when
/// new events are scheduled "in the past" (they clamp to now).
#[test]
fn time_is_monotone_under_interleaving() {
    check("time_is_monotone_under_interleaving", 64, |rng| {
        let ops = rng.vec(1, 80, |r| (r.bool(), r.u64_in(0, 100)));
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for (do_pop, t) in ops {
            if do_pop {
                if let Some((at, ())) = q.pop() {
                    assert!(at >= last);
                    last = at;
                }
            } else {
                q.schedule(SimTime::from_nanos(t), ());
            }
        }
        while let Some((at, ())) = q.pop() {
            assert!(at >= last);
            last = at;
        }
    });
}

/// Summary's mean/variance agree with naive two-pass computation.
#[test]
fn summary_matches_two_pass() {
    check("summary_matches_two_pass", 64, |rng| {
        let xs = rng.vec(1, 100, |r| r.f64_in(-1e6, 1e6));
        let s = Summary::from_samples(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        assert!((s.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), Some(min));
        assert_eq!(s.max(), Some(max));
        // Percentiles bracket the range.
        assert_eq!(s.percentile(0.0), Some(min));
        assert_eq!(s.percentile(100.0), Some(max));
    });
}
