//! Property-based engine-equivalence tests (§4.3's semantics-preservation
//! claim).
//!
//! "To an observer, the concurrent execution of the Cᵢ must look like
//! Scheme B … that we have followed a single thread of computation,
//! chosen arbitrarily." These properties generate random blocks and
//! check every engine returns an *admissible* outcome — a
//! (winner, value, workspace) triple that some sequential execution could
//! have produced — and nothing else.

use altx::engine::{Engine, OrderedEngine, RandomEngine, SelectorEngine, ThreadedEngine};
use altx::{AddressSpace, AltBlock, PageSize};
use altx_check::{check, CaseRng};

/// A generated alternative: may fail; on success writes `stamp` at
/// `addr` and returns its index.
#[derive(Debug, Clone, Copy)]
struct GenAlt {
    succeeds: bool,
    addr: usize,
    stamp: u8,
}

fn arb_alt(rng: &mut CaseRng) -> GenAlt {
    GenAlt {
        succeeds: rng.bool(),
        addr: rng.usize_in(0, 200),
        stamp: rng.u64_in(1, 255) as u8,
    }
}

fn build_block(alts: &[GenAlt]) -> AltBlock<usize> {
    let mut block = AltBlock::new();
    for (
        i,
        &GenAlt {
            succeeds,
            addr,
            stamp,
        },
    ) in alts.iter().enumerate()
    {
        block = block.alternative(format!("alt{i}"), move |ws, _t| {
            // Every alternative writes (side effect) *before* its guard
            // decides — the containment must hide failing writes.
            ws.write(addr, &[stamp]);
            succeeds.then_some(i)
        });
    }
    block
}

fn ws() -> AddressSpace {
    AddressSpace::zeroed(256, PageSize::new(32))
}

/// Checks a result against the generated spec: winner index consistent
/// with value, winner's guard passes, and the workspace equals a
/// sequential run of exactly the winner (or the untouched workspace on
/// failure).
fn assert_admissible(alts: &[GenAlt], result: &altx::BlockResult<usize>, workspace: &AddressSpace) {
    match (result.winner, &result.value) {
        (Some(w), Some(v)) => {
            assert_eq!(w, *v, "winner and value must agree");
            assert!(alts[w].succeeds, "winner's guard must hold");
            let mut oracle = ws();
            oracle.write(alts[w].addr, &[alts[w].stamp]);
            assert_eq!(
                workspace.flatten(),
                oracle.flatten(),
                "workspace must equal a sequential run of the winner alone"
            );
        }
        (None, None) => {
            assert_eq!(
                workspace.flatten(),
                ws().flatten(),
                "failed block must leave no trace"
            );
        }
        other => panic!("inconsistent result {other:?}"),
    }
}

/// OrderedEngine: picks the first succeeding alternative, always.
#[test]
fn ordered_is_first_success() {
    check("ordered_is_first_success", 64, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let mut workspace = ws();
        let result = OrderedEngine::new().execute(&build_block(&alts), &mut workspace);
        assert_admissible(&alts, &result, &workspace);
        let expected = alts.iter().position(|a| a.succeeds);
        assert_eq!(result.winner, expected);
    });
}

/// ThreadedEngine: succeeds iff some alternative can, and the outcome
/// is admissible whatever thread timing occurred.
#[test]
fn threaded_is_admissible() {
    check("threaded_is_admissible", 64, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let mut workspace = ws();
        let result = ThreadedEngine::new().execute(&build_block(&alts), &mut workspace);
        assert_admissible(&alts, &result, &workspace);
        assert_eq!(result.succeeded(), alts.iter().any(|a| a.succeeds));
    });
}

/// RandomEngine (Scheme B): admissible, and fails exactly when its
/// arbitrary pick fails — never substitutes another alternative.
#[test]
fn random_is_admissible() {
    check("random_is_admissible", 64, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let seed = rng.u64();
        let mut workspace = ws();
        let result = RandomEngine::seeded(seed).execute(&build_block(&alts), &mut workspace);
        assert_admissible(&alts, &result, &workspace);
        assert_eq!(result.attempts, 1);
    });
}

/// SelectorEngine (§4.2 case 2): admissible for any selector.
#[test]
fn selector_is_admissible() {
    check("selector_is_admissible", 64, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let pick = rng.usize_in(0, 8);
        let mut workspace = ws();
        let engine = SelectorEngine::new(move |_| pick);
        let result = engine.execute(&build_block(&alts), &mut workspace);
        assert_admissible(&alts, &result, &workspace);
        let chosen = pick.min(alts.len() - 1);
        assert_eq!(result.succeeded(), alts[chosen].succeeds);
    });
}

/// Engines agree bit-for-bit when only one alternative can win.
#[test]
fn engines_agree_on_forced_winner() {
    check("engines_agree_on_forced_winner", 64, |rng| {
        let mut alts = rng.vec(1, 6, arb_alt);
        let winner_slot = rng.usize_in(0, 6);
        let w = winner_slot % alts.len();
        for (i, a) in alts.iter_mut().enumerate() {
            a.succeeds = i == w;
        }
        let mut ws_ordered = ws();
        let r_ordered = OrderedEngine::new().execute(&build_block(&alts), &mut ws_ordered);
        let mut ws_threaded = ws();
        let r_threaded = ThreadedEngine::new().execute(&build_block(&alts), &mut ws_threaded);
        assert_eq!(r_ordered.winner, Some(w));
        assert_eq!(r_threaded.winner, Some(w));
        assert_eq!(ws_ordered.flatten(), ws_threaded.flatten());
    });
}
