//! Cache-line padding for hot shared atomics.
//!
//! Independent counters that happen to be neighbours in memory are not
//! independent on the bus: two shards bumping two different `AtomicU64`s
//! that share a 64-byte line ping the line between their cores on every
//! increment (false sharing). The RMR-complexity literature on
//! cache-coherent mutual exclusion makes the same point in the large —
//! remote memory references, not instruction count, dominate shared
//! hot paths. [`CachePadded`] is the safe-code fix: an aligned wrapper
//! that gives its value a cache line (two, on the common prefetch-pair
//! architectures) to itself.
//!
//! The alignment is a constant 128 bytes rather than per-target probing:
//! x86_64 prefetches lines in pairs and aarch64 big cores use 128-byte
//! lines outright, so 128 is the conservative choice everywhere and
//! costs only memory. The crate is `#![forbid(unsafe_code)]`; this is
//! plain `#[repr(align)]`, no magic.

/// Pads and aligns `T` to 128 bytes so it owns its cache line(s).
///
/// Transparent to use: `Deref`/`DerefMut` pass through, so an
/// `AtomicU64` field wrapped in `CachePadded` keeps its call sites
/// (`counter.fetch_add(1, …)`) unchanged.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_are_line_aligned_and_spaced() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        // Neighbours in an array land on distinct lines.
        let pair = [
            CachePadded::new(AtomicU64::new(0)),
            CachePadded::new(AtomicU64::new(0)),
        ];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 128, "adjacent padded slots share no line");
    }

    #[test]
    fn deref_passes_through() {
        let c = CachePadded::new(AtomicU64::new(7));
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 8);
        assert_eq!(c.into_inner().into_inner(), 8);
    }
}
