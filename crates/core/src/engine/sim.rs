//! The simulated-kernel engine: calibrated, deterministic races.
//!
//! Where [`ThreadedEngine`](crate::engine::ThreadedEngine) measures real
//! wall-clock on the host, this module runs the same fastest-first race on
//! the `altx-kernel` simulator with 1989-calibrated costs — the engine the
//! paper's quantitative experiments (E2, E6, E9) are built on.

use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, BlockOutcome, EliminationPolicy, GuardSpec, Kernel, KernelConfig,
    Op, Program, RunReport,
};
use altx_pager::MachineProfile;

/// Specification of a simulated race of compute-bound alternatives.
#[derive(Debug, Clone)]
pub struct SimRaceSpec {
    /// Per-alternative compute times.
    pub times: Vec<SimDuration>,
    /// Pages each alternative dirties before synchronizing (state-change
    /// footprint; drives COW copy overhead).
    pub dirty_pages: usize,
    /// Simulated CPUs: `>= times.len()` gives real concurrency, `1` gives
    /// the paper's "virtual" concurrency (§4.2).
    pub cpus: usize,
    /// Cost model.
    pub profile: MachineProfile,
    /// Address-space size of the parent in bytes.
    pub mem_bytes: usize,
    /// Sibling-elimination policy.
    pub elimination: EliminationPolicy,
    /// Kernel seed (only matters for probabilistic guards; none here).
    pub seed: u64,
}

impl SimRaceSpec {
    /// A race of `times` on ample CPUs with the default profile, 320 KB
    /// address space (the paper's measurement size) and a light 4-page
    /// write footprint.
    pub fn new(times: Vec<SimDuration>) -> Self {
        let cpus = times.len().max(1);
        SimRaceSpec {
            times,
            dirty_pages: 4,
            cpus,
            profile: MachineProfile::default(),
            mem_bytes: 320 * 1024,
            elimination: EliminationPolicy::Asynchronous,
            seed: 1,
        }
    }

    /// Convenience: times given in milliseconds.
    pub fn from_millis(times_ms: &[u64]) -> Self {
        SimRaceSpec::new(
            times_ms
                .iter()
                .map(|&t| SimDuration::from_millis(t))
                .collect(),
        )
    }

    /// Sets the CPU count.
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Sets the machine profile.
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the per-alternative dirty-page footprint.
    pub fn with_dirty_pages(mut self, pages: usize) -> Self {
        self.dirty_pages = pages;
        self
    }

    /// Sets the elimination policy.
    pub fn with_elimination(mut self, policy: EliminationPolicy) -> Self {
        self.elimination = policy;
        self
    }
}

/// Result of a simulated race.
#[derive(Debug, Clone)]
pub struct SimRaceResult {
    /// The block outcome at the parent (winner, timing decomposition).
    pub outcome: BlockOutcome,
    /// The full kernel report (stats, trace).
    pub report: RunReport,
}

impl SimRaceResult {
    /// The race's virtual wall-clock, block start → parent resumed.
    pub fn elapsed(&self) -> SimDuration {
        self.outcome.elapsed()
    }
}

/// Runs a fastest-first race of compute-bound alternatives on the
/// simulated kernel.
///
/// # Panics
///
/// Panics if `spec.times` is empty.
pub fn race(spec: &SimRaceSpec) -> SimRaceResult {
    assert!(
        !spec.times.is_empty(),
        "race needs at least one alternative"
    );
    let alternatives: Vec<Alternative> = spec
        .times
        .iter()
        .map(|&t| {
            let mut ops = vec![Op::Compute(t)];
            if spec.dirty_pages > 0 {
                ops.push(Op::TouchPages {
                    first: 0,
                    count: spec.dirty_pages,
                });
            }
            Alternative::new(GuardSpec::Const(true), Program::new(ops))
        })
        .collect();
    let block = AltBlockSpec::new(alternatives).with_elimination(spec.elimination);
    let mut kernel = Kernel::new(KernelConfig {
        cpus: spec.cpus,
        profile: spec.profile.clone(),
        quantum: SimDuration::from_millis(10),
        seed: spec.seed,
        ipc_latency: SimDuration::ZERO,
    });
    // The parent's pages are mapped (non-zero image), so an alternate's
    // writes trigger genuine COW copies, not zero-fills — the quantity
    // §4.4's pages/second rate measures.
    let image =
        altx_pager::AddressSpace::from_bytes(&vec![0x5A; spec.mem_bytes], spec.profile.page_size());
    let root = kernel.spawn_with_space(Program::new(vec![Op::AltBlock(block)]), image);
    let report = kernel.run();
    let outcome = report.block_outcomes(root)[0].clone();
    SimRaceResult { outcome, report }
}

/// The sequential-oracle cost of the same alternatives under Scheme B:
/// the arithmetic mean of the times (§4.2's analysis of random
/// selection). No system overhead is charged — the paper's model says an
/// arbitrary selection "costs nothing for purposes of our analysis".
pub fn scheme_b_mean(times: &[SimDuration]) -> SimDuration {
    if times.is_empty() {
        return SimDuration::ZERO;
    }
    let total: u128 = times.iter().map(|t| t.as_nanos() as u128).sum();
    SimDuration::from_nanos((total / times.len() as u128) as u64)
}

/// Measured performance improvement of a simulated race over the Scheme B
/// sequential expectation: `PI = mean(times) / elapsed(race)` (§4.2).
pub fn measured_pi(spec: &SimRaceSpec) -> f64 {
    let result = race(spec);
    scheme_b_mean(&spec.times).as_secs_f64() / result.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_picks_fastest() {
        let r = race(&SimRaceSpec::from_millis(&[30, 10, 20]));
        assert_eq!(r.outcome.winner, Some(1));
        // Total elapsed covers at least the winner's compute, and stays
        // below setup + the runner-up's time (the 20 ms and 30 ms bodies
        // never needed to finish).
        assert!(
            r.elapsed() >= SimDuration::from_millis(10),
            "elapsed {}",
            r.elapsed()
        );
        assert!(
            r.elapsed() < r.outcome.setup_cost + SimDuration::from_millis(20),
            "elapsed {} vs setup {}",
            r.elapsed(),
            r.outcome.setup_cost
        );
    }

    #[test]
    fn scheme_b_mean_is_arithmetic_mean() {
        let times: Vec<SimDuration> = [10u64, 20, 30]
            .iter()
            .map(|&t| SimDuration::from_millis(t))
            .collect();
        assert_eq!(scheme_b_mean(&times), SimDuration::from_millis(20));
        assert_eq!(scheme_b_mean(&[]), SimDuration::ZERO);
    }

    #[test]
    fn pi_beats_one_with_spread_and_cheap_overhead() {
        // Times (100, 200, 300) ms with small overhead: paper row (6)
        // territory, PI ≈ 1.9 in the analytic model.
        let spec = SimRaceSpec::from_millis(&[100, 200, 300]);
        let pi = measured_pi(&spec);
        assert!(pi > 1.5, "pi = {pi}");
    }

    #[test]
    fn pi_below_one_with_identical_times() {
        // Paper row (3): (20, 20, 20) with overhead → PI < 1.
        let spec = SimRaceSpec::from_millis(&[20, 20, 20]);
        let pi = measured_pi(&spec);
        assert!(pi < 1.0, "pi = {pi}");
    }

    #[test]
    fn single_cpu_virtual_concurrency_hurts() {
        let spec = SimRaceSpec::from_millis(&[50, 50, 50]);
        let real = race(&spec).elapsed();
        let virt = race(&spec.clone().with_cpus(1)).elapsed();
        assert!(virt > real, "virtual {virt} should exceed real {real}");
    }

    #[test]
    fn dirty_pages_add_overhead() {
        let light = race(&SimRaceSpec::from_millis(&[50, 80]).with_dirty_pages(0)).elapsed();
        let heavy = race(&SimRaceSpec::from_millis(&[50, 80]).with_dirty_pages(80)).elapsed();
        assert!(heavy > light);
    }

    #[test]
    fn deterministic() {
        let spec = SimRaceSpec::from_millis(&[13, 7, 29]);
        let a = race(&spec);
        let b = race(&spec);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.report.finished_at, b.report.finished_at);
    }
}
