//! The §4.2 case-2 "synthetic computation": selection by prediction.
//!
//! When `τ(Cᵢ, x) ≤ τ(Cⱼ, x)` for predictable subsets of the domain, "we
//! can construct a synthetic computation C_{N+1} which selects Cᵢ when
//! this holds" — the paper's `sort(list, size)` example that picks
//! quicksort above ten elements. This engine is that construction: a
//! caller-supplied selector inspects the workspace and picks exactly one
//! alternative to run.
//!
//! It exists as the *baseline that racing competes against when the
//! domain can be partitioned*: when the partition is cheap and accurate
//! the selector wins (no speculation overhead at all); when performance
//! on the input is unpredictable — §4.2 case 3 — no such selector exists
//! and fastest-first racing is the remaining option.

use crate::block::{AltBlock, BlockResult};
use crate::cancel::CancelToken;
use crate::engine::Engine;
use altx_pager::AddressSpace;
use std::time::Instant;

/// Selection function: inspect the input state, return the index of the
/// alternative to run.
pub type SelectorFn = dyn Fn(&AddressSpace) -> usize + Send + Sync;

/// Runs exactly the alternative chosen by a domain-partitioning
/// selector (§4.2 case 2). The selector's cost is honest: it runs on
/// every execution, like the paper's table lookup whose cost must be
/// "added … to the cost of executing the table element".
///
/// # Example
///
/// ```
/// use altx::engine::{Engine, SelectorEngine};
/// use altx::{AddressSpace, AltBlock, PageSize};
///
/// // The workspace's first byte is the problem size; pick the
/// // small-input method below 10, the big-input method otherwise.
/// let engine = SelectorEngine::new(|ws| usize::from(ws.map().flatten()[0] >= 10));
/// let block: AltBlock<&'static str> = AltBlock::new()
///     .alternative("insertion-sort", |_w, _t| Some("small"))
///     .alternative("quicksort", |_w, _t| Some("large"));
///
/// let mut ws = AddressSpace::zeroed(64, PageSize::new(64));
/// ws.write(0, &[3]);
/// assert_eq!(engine.execute(&block, &mut ws).value, Some("small"));
/// ws.write(0, &[42]);
/// assert_eq!(engine.execute(&block, &mut ws).value, Some("large"));
/// ```
pub struct SelectorEngine {
    selector: Box<SelectorFn>,
}

impl SelectorEngine {
    /// Creates the engine from a selection function.
    pub fn new<F>(selector: F) -> Self
    where
        F: Fn(&AddressSpace) -> usize + Send + Sync + 'static,
    {
        SelectorEngine {
            selector: Box::new(selector),
        }
    }
}

impl std::fmt::Debug for SelectorEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SelectorEngine")
    }
}

impl Engine for SelectorEngine {
    fn execute<R: Send>(
        &self,
        block: &AltBlock<R>,
        workspace: &mut AddressSpace,
    ) -> BlockResult<R> {
        let start = Instant::now();
        if block.is_empty() {
            return BlockResult {
                value: None,
                winner: None,
                winner_name: None,
                wall: start.elapsed(),
                attempts: 0,
                panics: 0,
                suppressed: 0,
            };
        }
        let choice = (self.selector)(workspace).min(block.len() - 1);
        let alt = &block.alternatives()[choice];
        let token = CancelToken::new();
        let mut fork = workspace.cow_fork();
        // Contained: a crashing prediction fails the block like a
        // misprediction, with the fork discarded.
        let (value, panicked) = alt.run_contained(&mut fork, &token);
        let (winner, winner_name) = if value.is_some() {
            workspace.absorb(fork);
            (Some(choice), Some(alt.name().to_string()))
        } else {
            // A mispredicting selector fails the block — it bet on one
            // alternative, like Scheme B. (No fallback: falling back
            // would be the ordered engine.)
            (None, None)
        };
        BlockResult {
            value,
            winner,
            winner_name,
            wall: start.elapsed(),
            attempts: 1,
            panics: usize::from(panicked),
            suppressed: block.len() - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_pager::PageSize;

    fn ws_with_size(size: u8) -> AddressSpace {
        let mut ws = AddressSpace::zeroed(64, PageSize::new(64));
        ws.write(0, &[size]);
        ws
    }

    fn sort_block() -> AltBlock<&'static str> {
        AltBlock::new()
            .alternative("insertion", |_w, _t| Some("insertion"))
            .alternative("quick", |_w, _t| Some("quick"))
    }

    #[test]
    fn selector_partitions_the_domain() {
        // The paper's example: "Q is faster than I when the number of
        // elements to be sorted is greater than 10."
        let engine = SelectorEngine::new(|ws| usize::from(ws.map().flatten()[0] > 10));
        let r = engine.execute(&sort_block(), &mut ws_with_size(5));
        assert_eq!(r.value, Some("insertion"));
        assert_eq!(r.attempts, 1);
        let r = engine.execute(&sort_block(), &mut ws_with_size(50));
        assert_eq!(r.value, Some("quick"));
    }

    #[test]
    fn out_of_range_selection_clamps() {
        let engine = SelectorEngine::new(|_| 99);
        let r = engine.execute(&sort_block(), &mut ws_with_size(0));
        assert_eq!(r.winner, Some(1), "clamped to the last alternative");
    }

    #[test]
    fn misprediction_fails_without_side_effects() {
        let engine = SelectorEngine::new(|_| 0);
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("always-fails", |w, _t| {
                w.write(1, &[0xEE]);
                None
            })
            .alternative("never-chosen", |_w, _t| Some(1));
        let mut ws = ws_with_size(0);
        let r = engine.execute(&block, &mut ws);
        assert!(!r.succeeded());
        assert_eq!(ws.read_vec(1, 1), vec![0], "failed fork discarded");
    }

    #[test]
    fn only_the_selected_alternative_runs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let runs = Arc::new(AtomicUsize::new(0));
        let (a, b) = (runs.clone(), runs.clone());
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("0", move |_w, _t| {
                a.fetch_add(1, Ordering::SeqCst);
                Some(0)
            })
            .alternative("1", move |_w, _t| {
                b.fetch_add(1, Ordering::SeqCst);
                Some(1)
            });
        let engine = SelectorEngine::new(|_| 1);
        let r = engine.execute(&block, &mut ws_with_size(0));
        assert_eq!(r.value, Some(1));
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_block_fails() {
        let engine = SelectorEngine::new(|_| 0);
        let block: AltBlock<u8> = AltBlock::new();
        assert!(!engine.execute(&block, &mut ws_with_size(0)).succeeded());
    }
}
