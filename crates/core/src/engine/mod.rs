//! Execution engines for alternative blocks.
//!
//! All engines present the same observable contract (§4.3): the result is
//! *one* alternative's value and *one* alternative's workspace mutations —
//! indistinguishable from a nondeterministic sequential selection. They
//! differ only in execution time:
//!
//! | Engine | Paper analogue | Strategy |
//! |---|---|---|
//! | [`OrderedEngine`] | recovery-block sequencing | first listed success, rollback between tries |
//! | [`AdaptiveEngine`] | Scheme A | statistically fastest first, learned online |
//! | [`RandomEngine`] | Scheme B | arbitrary single selection |
//! | [`SelectorEngine`] | §4.2 case 2 synthetic computation | domain-partitioning prediction |
//! | [`ThreadedEngine`] | Scheme C (real concurrency) | race on OS threads, fastest first |
//! | [`sim`] | Scheme C (calibrated) | race on the simulated kernel |

mod adaptive;
mod ordered;
mod plan;
mod random;
mod selector;
pub mod sim;
mod threaded;

pub use adaptive::AdaptiveEngine;
pub use ordered::OrderedEngine;
pub use plan::LaunchPlan;
pub use random::RandomEngine;
pub use selector::SelectorEngine;
pub use threaded::ThreadedEngine;

use crate::block::{AltBlock, BlockResult};
use altx_pager::AddressSpace;

/// An execution strategy for [`AltBlock`]s.
///
/// Implementations must guarantee: at most one alternative's workspace
/// mutations are visible in `workspace` afterwards, and the returned
/// value (if any) was produced by exactly that alternative.
pub trait Engine {
    /// Executes `block` against `workspace`.
    fn execute<R: Send>(&self, block: &AltBlock<R>, workspace: &mut AddressSpace)
        -> BlockResult<R>;
}
