//! Sequential execution in declaration order, with rollback.

use crate::block::{AltBlock, BlockResult};
use crate::cancel::CancelToken;
use crate::engine::Engine;
use altx_pager::AddressSpace;
use std::time::Instant;

/// Tries alternatives in declaration order; the first success is kept.
///
/// Between tries, the workspace is *rolled back*: each alternative runs on
/// a fresh COW fork, and only the winner's fork is absorbed. This is
/// exactly the recovery-block discipline (§5.1): "the state of the program
/// is 'rolled back' to the state the program had before the block was
/// entered, and the next alternative is tried."
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderedEngine;

impl OrderedEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        OrderedEngine
    }
}

impl Engine for OrderedEngine {
    fn execute<R: Send>(
        &self,
        block: &AltBlock<R>,
        workspace: &mut AddressSpace,
    ) -> BlockResult<R> {
        let start = Instant::now();
        let token = CancelToken::new(); // never cancelled: sequential
        let mut attempts = 0;
        let mut panics = 0;
        for (i, alt) in block.alternatives().iter().enumerate() {
            attempts += 1;
            let mut fork = workspace.cow_fork();
            // Contained: a crashing alternative is a failed guard, and
            // the next alternative is tried — exactly the recovery-block
            // error case this engine models.
            let (value, panicked) = alt.run_contained(&mut fork, &token);
            if panicked {
                panics += 1;
            }
            if let Some(value) = value {
                workspace.absorb(fork);
                return BlockResult {
                    value: Some(value),
                    winner: Some(i),
                    winner_name: Some(alt.name().to_string()),
                    wall: start.elapsed(),
                    attempts,
                    panics,
                    suppressed: block.len() - attempts,
                };
            }
            // Failure: drop the fork — implicit rollback.
        }
        BlockResult {
            value: None,
            winner: None,
            winner_name: None,
            wall: start.elapsed(),
            attempts,
            panics,
            suppressed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_pager::PageSize;

    fn ws() -> AddressSpace {
        AddressSpace::zeroed(64, PageSize::new(16))
    }

    #[test]
    fn first_success_wins() {
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("a", |_w, _t| Some(1))
            .alternative("b", |_w, _t| Some(2));
        let r = OrderedEngine::new().execute(&block, &mut ws());
        assert_eq!(r.value, Some(1));
        assert_eq!(r.winner, Some(0));
        assert_eq!(r.attempts, 1, "later alternatives never started");
    }

    #[test]
    fn failures_roll_back_state() {
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("dirty-failure", |w, _t| {
                w.write(0, &[0xEE]); // side effect that must not leak
                None
            })
            .alternative("clean-success", |w, _t| {
                assert_eq!(w.read_vec(0, 1)[0], 0, "previous failure leaked");
                w.write(1, &[0x55]);
                Some(7)
            });
        let mut workspace = ws();
        let r = OrderedEngine::new().execute(&block, &mut workspace);
        assert_eq!(r.value, Some(7));
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.attempts, 2);
        assert_eq!(workspace.read_vec(0, 2), vec![0, 0x55]);
    }

    #[test]
    fn all_fail_leaves_workspace_untouched() {
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("f1", |w, _t| {
                w.write(0, &[1]);
                None
            })
            .alternative("f2", |w, _t| {
                w.write(0, &[2]);
                None
            });
        let mut workspace = ws();
        workspace.write(0, &[9]);
        let r = OrderedEngine::new().execute(&block, &mut workspace);
        assert!(!r.succeeded());
        assert_eq!(r.attempts, 2);
        assert_eq!(workspace.read_vec(0, 1), vec![9]);
    }

    #[test]
    fn empty_block_fails() {
        let block: AltBlock<i32> = AltBlock::new();
        let r = OrderedEngine::new().execute(&block, &mut ws());
        assert!(!r.succeeded());
        assert_eq!(r.attempts, 0);
    }

    #[test]
    fn crashing_alternative_falls_through_like_a_failed_guard() {
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("crashes", |w, _t| {
                w.write(0, &[0xEE]); // dirty write that must roll back
                panic!("primary died")
            })
            .alternative("recovers", |w, _t| {
                assert_eq!(w.read_vec(0, 1)[0], 0, "crash leaked state");
                Some(11)
            });
        let mut workspace = ws();
        let r = OrderedEngine::new().execute(&block, &mut workspace);
        assert_eq!(r.value, Some(11));
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.panics, 1);
        assert_eq!(r.attempts, 2);
    }
}
