//! Launch plans: *when* each alternative of a race starts.
//!
//! The paper's §4.2 separates *which alternatives exist* from *how they
//! are scheduled*: Scheme C races everything at once, Scheme A trusts
//! statistics to pick a favourite. A [`LaunchPlan`] makes that schedule an
//! explicit, inspectable value — per-alternative start offsets relative to
//! the moment the race begins — so a policy layer (e.g. the serving
//! stack's hedging policy) can decide the strategy while the engine keeps
//! sole ownership of the mutual-exclusion semantics. An alternative whose
//! offset has not elapsed when the race is decided is *suppressed*: its
//! body never runs, which changes cost, never selection semantics.

use std::time::Duration;

/// Per-alternative start offsets for one race.
///
/// Offsets are relative to race start. Index `i` schedules alternative
/// `i`; alternatives beyond the plan's length launch immediately (offset
/// zero), so [`LaunchPlan::immediate`] and a too-short plan are both safe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaunchPlan {
    offsets: Vec<Duration>,
}

impl LaunchPlan {
    /// The classic Scheme C plan: every one of `n` alternatives launches
    /// at t=0. Racing under this plan is behaviourally identical to the
    /// unplanned engine entry points.
    pub fn immediate(n: usize) -> Self {
        LaunchPlan {
            offsets: vec![Duration::ZERO; n],
        }
    }

    /// A plan from explicit per-alternative offsets.
    pub fn from_offsets(offsets: Vec<Duration>) -> Self {
        LaunchPlan { offsets }
    }

    /// Start offset for alternative `i` (zero when out of range).
    pub fn offset(&self, i: usize) -> Duration {
        self.offsets.get(i).copied().unwrap_or(Duration::ZERO)
    }

    /// Number of alternatives this plan covers explicitly.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the plan covers no alternatives explicitly.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// True when every covered alternative launches at t=0.
    pub fn is_immediate(&self) -> bool {
        self.offsets.iter().all(|o| o.is_zero())
    }

    /// Number of alternatives held back (non-zero offset) — the hedges.
    pub fn staggered(&self) -> usize {
        self.offsets.iter().filter(|o| !o.is_zero()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_plan_is_all_zeros() {
        let p = LaunchPlan::immediate(4);
        assert_eq!(p.len(), 4);
        assert!(p.is_immediate());
        assert_eq!(p.staggered(), 0);
        assert_eq!(p.offset(2), Duration::ZERO);
    }

    #[test]
    fn out_of_range_offsets_are_zero() {
        let p = LaunchPlan::from_offsets(vec![Duration::from_millis(5)]);
        assert_eq!(p.offset(0), Duration::from_millis(5));
        assert_eq!(p.offset(7), Duration::ZERO);
        assert!(!p.is_immediate());
        assert_eq!(p.staggered(), 1);
    }
}
