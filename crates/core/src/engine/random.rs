//! Scheme B: arbitrary selection of a single alternative.

use crate::block::{AltBlock, BlockResult};
use crate::cancel::CancelToken;
use crate::engine::Engine;
use altx_des::SimRng;
use altx_pager::AddressSpace;
use std::sync::Mutex;
use std::time::Instant;

/// Picks **one** alternative uniformly at random and runs only it — the
/// paper's Scheme B baseline (§4.2): "An algorithm can be selected at
/// random from amongst the Cᵢ". Run repeatedly, its expected cost is the
/// arithmetic mean of the alternatives' costs, which is exactly what the
/// concurrent engine is compared against in the PI analysis (§4.3).
///
/// If the chosen alternative's guard fails, the block fails — Scheme B
/// commits to its arbitrary choice, it does not fall back (a failure or
/// infinite loop "will frustrate this method", as the paper's footnote
/// notes).
#[derive(Debug)]
pub struct RandomEngine {
    rng: Mutex<SimRng>,
}

impl RandomEngine {
    /// Creates the engine with a deterministic seed.
    pub fn seeded(seed: u64) -> Self {
        RandomEngine {
            rng: Mutex::new(SimRng::seed_from_u64(seed)),
        }
    }
}

impl Default for RandomEngine {
    fn default() -> Self {
        RandomEngine::seeded(0x5EED)
    }
}

impl Engine for RandomEngine {
    fn execute<R: Send>(
        &self,
        block: &AltBlock<R>,
        workspace: &mut AddressSpace,
    ) -> BlockResult<R> {
        let start = Instant::now();
        if block.is_empty() {
            return BlockResult {
                value: None,
                winner: None,
                winner_name: None,
                wall: start.elapsed(),
                attempts: 0,
                panics: 0,
                suppressed: 0,
            };
        }
        let i = self.rng.lock().expect("rng lock").index(block.len());
        let alt = &block.alternatives()[i];
        let token = CancelToken::new();
        let mut fork = workspace.cow_fork();
        // Scheme B commits to its arbitrary choice — a crash, like a
        // failed guard, fails the block (contained, fork discarded).
        let (value, panicked) = alt.run_contained(&mut fork, &token);
        let (winner, winner_name) = if value.is_some() {
            workspace.absorb(fork);
            (Some(i), Some(alt.name().to_string()))
        } else {
            (None, None)
        };
        BlockResult {
            value,
            winner,
            winner_name,
            wall: start.elapsed(),
            attempts: 1,
            panics: usize::from(panicked),
            suppressed: block.len() - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_pager::PageSize;

    fn ws() -> AddressSpace {
        AddressSpace::zeroed(64, PageSize::new(16))
    }

    #[test]
    fn runs_exactly_one_alternative() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let runs = Arc::new(AtomicUsize::new(0));
        let (r1, r2) = (runs.clone(), runs.clone());
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("a", move |_w, _t| {
                r1.fetch_add(1, Ordering::SeqCst);
                Some(1)
            })
            .alternative("b", move |_w, _t| {
                r2.fetch_add(1, Ordering::SeqCst);
                Some(2)
            });
        let r = RandomEngine::seeded(1).execute(&block, &mut ws());
        assert!(r.succeeded());
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn selection_is_roughly_uniform() {
        let block: AltBlock<usize> = AltBlock::new()
            .alternative("0", |_w, _t| Some(0))
            .alternative("1", |_w, _t| Some(1))
            .alternative("2", |_w, _t| Some(2));
        let engine = RandomEngine::seeded(42);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let r = engine.execute(&block, &mut ws());
            counts[r.into_value()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn chosen_failure_fails_the_block_without_side_effects() {
        let block: AltBlock<i32> = AltBlock::new().alternative("fails", |w, _t| {
            w.write(0, &[1]);
            None
        });
        let mut workspace = ws();
        let r = RandomEngine::default().execute(&block, &mut workspace);
        assert!(!r.succeeded());
        assert_eq!(workspace.read_vec(0, 1), vec![0], "failure rolled back");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let block: AltBlock<usize> = AltBlock::new()
            .alternative("0", |_w, _t| Some(0))
            .alternative("1", |_w, _t| Some(1));
        let seq = |seed| {
            let e = RandomEngine::seeded(seed);
            (0..10)
                .map(|_| e.execute(&block, &mut ws()).into_value())
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
    }

    #[test]
    fn empty_block_fails() {
        let block: AltBlock<i32> = AltBlock::new();
        assert!(!RandomEngine::default()
            .execute(&block, &mut ws())
            .succeeded());
    }
}
