//! Scheme A: selection by statistical data.
//!
//! §4.2's first fallback when performance is unpredictable per-input:
//! "Statistical data can be applied, e.g., quicksort is 'almost always'
//! O(n log n). Thus, we'll rarely go wrong to use it."
//!
//! [`AdaptiveEngine`] learns that statistic online through a shared
//! [`AltStatsTable`]: it tracks an EWMA of each alternative's observed
//! execution time and (after an exploration phase that tries everything
//! once) always runs the alternative with the best learned latency,
//! falling back to the next best when the favourite's guard fails. It
//! beats Scheme B whenever one alternative is *usually* fastest — and
//! loses to Scheme C when the fastest alternative varies per input,
//! which is exactly the regime the paper's racing design targets.

use crate::block::{AltBlock, BlockResult};
use crate::cancel::CancelToken;
use crate::engine::Engine;
use crate::stats::AltStatsTable;
use altx_pager::AddressSpace;
use std::time::Instant;

/// An engine that runs the historically fastest alternative first.
///
/// Statistics are keyed by alternative *index* in a lock-cheap
/// [`AltStatsTable`], so one engine instance should be reused across
/// executions of the same (or same-shaped) block; a fresh instance
/// starts with an exploration pass.
///
/// # Example
///
/// ```
/// use altx::engine::{AdaptiveEngine, Engine};
/// use altx::{AddressSpace, AltBlock, PageSize};
///
/// let engine = AdaptiveEngine::new();
/// let block: AltBlock<u32> = AltBlock::new()
///     .alternative("slow", |_w, _t| {
///         std::thread::sleep(std::time::Duration::from_millis(3));
///         Some(1)
///     })
///     .alternative("fast", |_w, _t| Some(2));
///
/// // After exploration, the engine settles on the fast alternative.
/// let mut last = 0;
/// for _ in 0..6 {
///     let mut ws = AddressSpace::zeroed(64, PageSize::new(64));
///     last = engine.execute(&block, &mut ws).into_value();
/// }
/// assert_eq!(last, 2);
/// ```
#[derive(Debug, Default)]
pub struct AdaptiveEngine {
    stats: AltStatsTable,
}

impl AdaptiveEngine {
    /// Creates an engine with no history.
    pub fn new() -> Self {
        AdaptiveEngine::default()
    }

    /// The live statistics table backing this engine's decisions.
    pub fn stats(&self) -> &AltStatsTable {
        &self.stats
    }

    /// Observed (EWMA) execution time in seconds of alternative `i`, if
    /// it has run.
    pub fn observed_mean(&self, i: usize) -> Option<f64> {
        self.stats.ewma_us(i).map(|us| us / 1e6)
    }

    /// Total guard failures observed for alternative `i`.
    pub fn observed_failures(&self, i: usize) -> u64 {
        self.stats.failures(i)
    }

    /// Preference order: unexplored first, then ascending observed mean.
    fn order(&self, n: usize) -> Vec<usize> {
        self.stats.ensure(n);
        let key = |i: usize| -> f64 {
            // Unexplored alternatives sort before everything observed.
            self.stats.ewma_us(i).unwrap_or(f64::NEG_INFINITY)
        };
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("EWMA is never NaN"));
        order
    }
}

impl Engine for AdaptiveEngine {
    fn execute<R: Send>(
        &self,
        block: &AltBlock<R>,
        workspace: &mut AddressSpace,
    ) -> BlockResult<R> {
        let start = Instant::now();
        if block.is_empty() {
            return BlockResult {
                value: None,
                winner: None,
                winner_name: None,
                wall: start.elapsed(),
                attempts: 0,
                panics: 0,
                suppressed: 0,
            };
        }
        let token = CancelToken::new();
        let mut attempts = 0;
        let mut panics = 0;
        for i in self.order(block.len()) {
            attempts += 1;
            let alt = &block.alternatives()[i];
            let attempt_start = Instant::now();
            let mut fork = workspace.cow_fork();
            // Contained: a crash counts as a failure in the statistics,
            // steering future selections away from crashy alternatives.
            let (value, panicked) = alt.run_contained(&mut fork, &token);
            if panicked {
                panics += 1;
            }
            let us = attempt_start.elapsed().as_micros() as u64;
            match value {
                Some(v) => {
                    self.stats.record_win(i, us);
                    workspace.absorb(fork);
                    return BlockResult {
                        value: Some(v),
                        winner: Some(i),
                        winner_name: Some(alt.name().to_string()),
                        wall: start.elapsed(),
                        attempts,
                        panics,
                        suppressed: block.len() - attempts,
                    };
                }
                None => self.stats.record_run(i, us, true),
            }
        }
        BlockResult {
            value: None,
            winner: None,
            winner_name: None,
            wall: start.elapsed(),
            attempts,
            panics,
            suppressed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_pager::PageSize;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn ws() -> AddressSpace {
        AddressSpace::zeroed(64, PageSize::new(64))
    }

    #[test]
    fn explores_everything_then_settles_on_the_fastest() {
        let runs = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let (ra, rb) = (runs.clone(), runs.clone());
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("slow", move |_w, _t| {
                ra[0].fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(4));
                Some(0)
            })
            .alternative("fast", move |_w, _t| {
                rb[1].fetch_add(1, Ordering::SeqCst);
                Some(1)
            });
        let engine = AdaptiveEngine::new();
        for _ in 0..8 {
            engine.execute(&block, &mut ws());
        }
        let slow_runs = runs[0].load(Ordering::SeqCst);
        let fast_runs = runs[1].load(Ordering::SeqCst);
        assert!(slow_runs >= 1, "exploration must try the slow one");
        assert!(slow_runs <= 2, "but then abandon it: {slow_runs}");
        assert!(
            fast_runs >= 6,
            "the statistic picks the fast one: {fast_runs}"
        );
        assert!(engine.observed_mean(0).expect("ran") > engine.observed_mean(1).expect("ran"));
        assert!(
            engine.stats().wins(1) >= 6,
            "wins accrue to the settled favourite"
        );
    }

    #[test]
    fn guard_failure_falls_back_to_next_best() {
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("fast-but-broken", |_w, _t| None)
            .alternative("works", |_w, _t| Some(7));
        let engine = AdaptiveEngine::new();
        for _ in 0..4 {
            let r = engine.execute(&block, &mut ws());
            assert_eq!(r.value, Some(7));
        }
        assert!(engine.observed_failures(0) >= 1);
    }

    #[test]
    fn rollback_between_fallback_attempts() {
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("dirty-failure", |w, _t| {
                w.write(0, &[0xBB]);
                None
            })
            .alternative("clean", |w, _t| {
                assert_eq!(w.read_vec(0, 1)[0], 0);
                Some(1)
            });
        let mut workspace = ws();
        let r = AdaptiveEngine::new().execute(&block, &mut workspace);
        assert!(r.succeeded());
        assert_eq!(workspace.read_vec(0, 1), vec![0]);
    }

    #[test]
    fn all_fail_fails() {
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("a", |_w, _t| None)
            .alternative("b", |_w, _t| None);
        let engine = AdaptiveEngine::new();
        let r = engine.execute(&block, &mut ws());
        assert!(!r.succeeded());
        assert_eq!(r.attempts, 2);
    }

    #[test]
    fn empty_block_fails() {
        let engine = AdaptiveEngine::new();
        let block: AltBlock<u8> = AltBlock::new();
        assert!(!engine.execute(&block, &mut ws()).succeeded());
    }
}
