//! Scheme C on real OS threads: fastest-first racing.

use crate::block::{AltBlock, BlockResult};
use crate::cancel::CancelToken;
use crate::engine::{Engine, LaunchPlan};
use crate::faults;
use crate::sync::Semaphore;
use altx_pager::AddressSpace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Slice length for the cancellable launch-offset wait: hedged
/// alternatives poll their token at this granularity while holding back,
/// so a decided race suppresses them within ~a slice.
const LAUNCH_WAIT_SLICE: Duration = Duration::from_micros(200);

/// Waits until `offset` has elapsed or the race is decided. Returns
/// `true` when the alternative should launch, `false` when it was
/// suppressed. A zero offset never touches the clock — the immediate
/// path is exactly the pre-plan behaviour.
fn wait_for_launch(token: &CancelToken, offset: Duration) -> bool {
    if offset.is_zero() {
        return true;
    }
    let due = Instant::now() + offset;
    loop {
        if token.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= due {
            return true;
        }
        std::thread::sleep((due - now).min(LAUNCH_WAIT_SLICE));
    }
}

/// Races every alternative on its own OS thread over a private COW fork
/// of the workspace; the first `Some` result wins, the losers are
/// cancelled (cooperatively) and their forks discarded.
///
/// This is the paper's Scheme C with real concurrency: execution time
/// approaches `τ(C_best) + τ(overhead)`, where the overhead here is
/// thread spawn + page-map fork + selection.
///
/// Losing alternatives are *asked* to stop via the [`CancelToken`]; the
/// engine still joins every thread before returning (Rust threads cannot
/// be killed), so bodies that never poll the token delay the return
/// without affecting which result is selected.
///
/// [`with_max_threads`](ThreadedEngine::with_max_threads) bounds the
/// degree of real concurrency — the paper's *virtual concurrency* case
/// (§4.2) where alternatives share hardware: excess alternatives queue
/// and start as slots free up (in declaration order, so the bound also
/// biases toward earlier alternatives, like a recovery block's
/// reliability ordering).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedEngine {
    max_threads: Option<usize>,
}

impl ThreadedEngine {
    /// Creates the engine with unbounded parallelism (one thread per
    /// alternative).
    pub fn new() -> Self {
        ThreadedEngine { max_threads: None }
    }

    /// Bounds concurrent alternatives to `n` at a time.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_max_threads(n: usize) -> Self {
        assert!(n > 0, "need at least one thread");
        ThreadedEngine {
            max_threads: Some(n),
        }
    }

    /// Races `block` under a caller-supplied [`CancelToken`].
    ///
    /// This is the serving-layer entry point: the caller owns the token,
    /// so it can carry a per-request deadline
    /// ([`CancelToken::with_deadline`]) or be cancelled externally (e.g.
    /// client disconnect). The engine cancels the token itself the moment
    /// a winner is selected (sibling elimination), so a token must not be
    /// shared between concurrent `execute_with_token` calls.
    ///
    /// If the token is already cancelled — or its deadline expires before
    /// any alternative succeeds — the block fails; the caller can
    /// distinguish a blown budget via
    /// [`CancelToken::deadline_expired`].
    pub fn execute_with_token<R: Send>(
        &self,
        block: &AltBlock<R>,
        workspace: &mut AddressSpace,
        token: &CancelToken,
    ) -> BlockResult<R> {
        self.execute_planned(block, workspace, token, &LaunchPlan::immediate(block.len()))
    }

    /// Races `block` under a caller-supplied [`LaunchPlan`]: alternative
    /// `i` launches `plan.offset(i)` after race start, or not at all if
    /// the race is decided first (it counts as *suppressed* in the
    /// result). An all-zeros plan is byte-for-byte
    /// [`execute_with_token`](ThreadedEngine::execute_with_token): the
    /// plan changes only *when* bodies start, never how the winner is
    /// selected, how siblings are eliminated, or how panics are
    /// contained.
    pub fn execute_planned<R: Send>(
        &self,
        block: &AltBlock<R>,
        workspace: &mut AddressSpace,
        token: &CancelToken,
        plan: &LaunchPlan,
    ) -> BlockResult<R> {
        let start = Instant::now();
        if block.is_empty() {
            return BlockResult {
                value: None,
                winner: None,
                winner_name: None,
                wall: start.elapsed(),
                attempts: 0,
                panics: 0,
                suppressed: 0,
            };
        }

        // std mpsc: many racing senders, one selecting receiver.
        let (tx, rx) = mpsc::channel::<(usize, Option<R>, AddressSpace)>();
        let slots = self.max_threads.unwrap_or(block.len()).min(block.len());
        // Admission tickets: threads block on the semaphore until a slot
        // frees; the winner's cancellation drains queued starters fast
        // (they check the token before doing any work).
        let semaphore = Semaphore::new(slots);
        let panics = AtomicUsize::new(0);
        let suppressed = AtomicUsize::new(0);

        let winner_slot = std::thread::scope(|scope| {
            for (i, alt) in block.alternatives().iter().enumerate() {
                let mut fork = workspace.cow_fork();
                let tx = tx.clone();
                let token = token.clone();
                let offset = plan.offset(i);
                let semaphore = &semaphore;
                let panics = &panics;
                let suppressed = &suppressed;
                scope.spawn(move || {
                    // Hold back per the launch plan; a race decided during
                    // the hold-back suppresses this alternative entirely.
                    if !wait_for_launch(&token, offset) {
                        suppressed.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send((i, None, fork));
                        return;
                    }
                    // Wait for an execution slot (bounded concurrency).
                    semaphore.acquire();
                    let value = if token.is_cancelled() {
                        // Race already decided: never start.
                        suppressed.fetch_add(1, Ordering::Relaxed);
                        None
                    } else {
                        // Containment: a panicking body — or an
                        // injected panic — is a failed guard, not a
                        // dead racing thread (a scoped thread's panic
                        // would otherwise re-raise at scope exit and
                        // kill the whole race). The fault site sits
                        // inside the contained region for exactly that
                        // reason.
                        use std::panic::{catch_unwind, AssertUnwindSafe};
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            if faults::enabled()
                                && faults::inject(
                                    &format!("engine.alt.{}", alt.name()),
                                    Some(&token),
                                ) == faults::Verdict::Fail
                            {
                                return None; // injected guard failure
                            }
                            alt.run(&mut fork, &token)
                        }));
                        match outcome {
                            Ok(v) => v,
                            Err(_) => {
                                panics.fetch_add(1, Ordering::Relaxed);
                                None
                            }
                        }
                    };
                    // Sibling elimination at the source: any success
                    // decides the race (selection among multiple
                    // successes is still arrival order at the receiver),
                    // and cancelling *before* the permit is released
                    // guarantees a queued alternative acquiring this
                    // slot sees the decision — not a window where the
                    // slot is free but the token not yet cancelled.
                    if value.is_some() {
                        token.cancel();
                    }
                    semaphore.release();
                    // A closed channel just means the race is over.
                    let _ = tx.send((i, value, fork));
                });
            }
            drop(tx);

            // Fastest first: take the first success by arrival order; keep
            // draining so every thread can finish sending.
            let mut winner: Option<(usize, R, AddressSpace)> = None;
            for (i, value, fork) in rx.iter() {
                if let Some(v) = value {
                    if winner.is_none() {
                        // Sibling elimination: ask the losers to stop.
                        token.cancel();
                        winner = Some((i, v, fork));
                    }
                }
            }
            winner
        });

        let panics = panics.load(Ordering::Relaxed);
        let suppressed = suppressed.load(Ordering::Relaxed);
        match winner_slot {
            Some((i, value, fork)) => {
                // alt_wait absorption: the winner's page map becomes ours.
                workspace.absorb(fork);
                BlockResult {
                    value: Some(value),
                    winner: Some(i),
                    winner_name: Some(block.alternatives()[i].name().to_string()),
                    wall: start.elapsed(),
                    attempts: block.len(),
                    panics,
                    suppressed,
                }
            }
            None => BlockResult {
                value: None,
                winner: None,
                winner_name: None,
                wall: start.elapsed(),
                attempts: block.len(),
                panics,
                suppressed,
            },
        }
    }
}

impl Engine for ThreadedEngine {
    fn execute<R: Send>(
        &self,
        block: &AltBlock<R>,
        workspace: &mut AddressSpace,
    ) -> BlockResult<R> {
        self.execute_with_token(block, workspace, &CancelToken::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_pager::PageSize;
    use std::time::Duration;

    fn ws() -> AddressSpace {
        AddressSpace::zeroed(256, PageSize::new(16))
    }

    /// A body that sleeps in small, cancellable steps.
    fn sleepy(total_ms: u64) -> impl Fn(&CancelToken) -> Option<()> {
        move |token: &CancelToken| {
            for _ in 0..total_ms {
                token.checkpoint()?;
                std::thread::sleep(Duration::from_millis(1));
            }
            Some(())
        }
    }

    #[test]
    fn fastest_alternative_wins() {
        let slow = sleepy(200);
        let fast = sleepy(5);
        let block: AltBlock<&'static str> = AltBlock::new()
            .alternative("slow", move |_w, t| slow(t).map(|_| "slow"))
            .alternative("fast", move |_w, t| fast(t).map(|_| "fast"));
        let r = ThreadedEngine::new().execute(&block, &mut ws());
        assert_eq!(r.value, Some("fast"));
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.attempts, 2);
        // Cooperative cancellation means we return long before 200 ms.
        assert!(r.wall < Duration::from_millis(150), "wall {:?}", r.wall);
    }

    #[test]
    fn only_winner_mutations_visible() {
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("loser", |w, t| {
                w.write(0, &[1]);
                // Lose the race deliberately.
                for _ in 0..100 {
                    t.checkpoint()?;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Some(1)
            })
            .alternative("winner", |w, _t| {
                w.write(0, &[2]);
                Some(2)
            });
        let mut workspace = ws();
        let r = ThreadedEngine::new().execute(&block, &mut workspace);
        assert_eq!(r.value, Some(2));
        assert_eq!(
            workspace.read_vec(0, 1),
            vec![2],
            "only the winner's write is observable"
        );
    }

    #[test]
    fn guard_failures_fall_through_to_slower_success() {
        let slow_ok = sleepy(20);
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("fast-but-failing", |_w, _t| None)
            .alternative("slow-but-passing", move |_w, t| slow_ok(t).map(|_| 1));
        let r = ThreadedEngine::new().execute(&block, &mut ws());
        assert_eq!(r.value, Some(1));
        assert_eq!(r.winner, Some(1));
    }

    #[test]
    fn all_failures_fail_block_without_side_effects() {
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("f1", |w, _t| {
                w.write(0, &[1]);
                None
            })
            .alternative("f2", |w, _t| {
                w.write(0, &[2]);
                None
            });
        let mut workspace = ws();
        let r = ThreadedEngine::new().execute(&block, &mut workspace);
        assert!(!r.succeeded());
        assert_eq!(workspace.read_vec(0, 1), vec![0]);
    }

    #[test]
    fn single_alternative_behaves_sequentially() {
        let block: AltBlock<i32> = AltBlock::new().alternative("only", |w, _t| {
            w.write(3, &[7]);
            Some(99)
        });
        let mut workspace = ws();
        let r = ThreadedEngine::new().execute(&block, &mut workspace);
        assert_eq!(r.value, Some(99));
        assert_eq!(workspace.read_vec(3, 1), vec![7]);
    }

    #[test]
    fn empty_block_fails_fast() {
        let block: AltBlock<i32> = AltBlock::new();
        let r = ThreadedEngine::new().execute(&block, &mut ws());
        assert!(!r.succeeded());
        assert_eq!(r.attempts, 0);
    }

    #[test]
    fn bounded_parallelism_still_selects_a_winner() {
        // 8 alternatives, 2 slots: the winner is found and everything
        // terminates, whatever the admission order.
        let mut block: AltBlock<usize> = AltBlock::new();
        for i in 0..8usize {
            let body = sleepy(if i == 5 { 1 } else { 30 });
            block = block.alternative(format!("alt{i}"), move |_w, t| body(t).map(|_| i));
        }
        let r = ThreadedEngine::with_max_threads(2).execute(&block, &mut ws());
        assert!(r.succeeded());
        assert_eq!(r.attempts, 8);
    }

    #[test]
    fn bounded_parallelism_skips_queued_losers_after_decision() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        // One slot: the first alternative wins instantly; the queued
        // bodies observe cancellation before doing any work.
        let started = Arc::new(AtomicUsize::new(0));
        let mut block: AltBlock<usize> = AltBlock::new();
        block = block.alternative("instant", |_w, _t| Some(0));
        for i in 1..6usize {
            let started = started.clone();
            block = block.alternative(format!("queued{i}"), move |_w, _t| {
                started.fetch_add(1, Ordering::SeqCst);
                Some(i)
            });
        }
        let r = ThreadedEngine::with_max_threads(1).execute(&block, &mut ws());
        assert_eq!(r.value, Some(0));
        assert_eq!(
            started.load(Ordering::SeqCst),
            0,
            "queued bodies never ran after the decision"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ThreadedEngine::with_max_threads(0);
    }

    #[test]
    fn panicking_sibling_is_contained_and_race_survives() {
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("bomb", |_w, _t| panic!("injected body crash"))
            .alternative("steady", |_w, _t| Some(7));
        let mut workspace = ws();
        let r = ThreadedEngine::new().execute(&block, &mut workspace);
        assert_eq!(r.value, Some(7), "survivor's value is kept");
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.panics, 1, "the crash was observed and contained");
    }

    #[test]
    fn all_panicking_alternatives_fail_the_block_cleanly() {
        let block: AltBlock<i32> = AltBlock::new()
            .alternative("b1", |w, _t| {
                w.write(0, &[1]);
                panic!("crash one")
            })
            .alternative("b2", |w, _t| {
                w.write(0, &[2]);
                panic!("crash two")
            });
        let mut workspace = ws();
        let r = ThreadedEngine::new().execute(&block, &mut workspace);
        assert!(!r.succeeded(), "all-crash block fails like all-guards-fail");
        assert_eq!(r.panics, 2);
        assert_eq!(
            workspace.read_vec(0, 1),
            vec![0],
            "no crashed fork's writes leak"
        );
    }

    #[test]
    fn planned_hold_back_suppresses_the_loser() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        // alt0 wins in ~5 ms; alt1 is held back 200 ms, so the decision
        // arrives during its hold-back and its body never runs.
        let started = Arc::new(AtomicUsize::new(0));
        let s = started.clone();
        let fast = sleepy(5);
        let block: AltBlock<usize> = AltBlock::new()
            .alternative("favourite", move |_w, t| fast(t).map(|_| 0))
            .alternative("hedge", move |_w, _t| {
                s.fetch_add(1, Ordering::SeqCst);
                Some(1)
            });
        let plan = LaunchPlan::from_offsets(vec![Duration::ZERO, Duration::from_millis(200)]);
        let r =
            ThreadedEngine::new().execute_planned(&block, &mut ws(), &CancelToken::new(), &plan);
        assert_eq!(r.value, Some(0));
        assert_eq!(r.suppressed, 1, "the hedge was suppressed");
        assert_eq!(started.load(Ordering::SeqCst), 0, "hedge body never ran");
        assert!(
            r.wall < Duration::from_millis(150),
            "no wait for the hedge offset"
        );
    }

    #[test]
    fn planned_hedge_fires_when_the_favourite_fails() {
        // alt0 fails its guard; alt1 launches after its offset and wins.
        let start = Instant::now();
        let block: AltBlock<&'static str> = AltBlock::new()
            .alternative("favourite-fails", |_w, _t| None::<&'static str>)
            .alternative("hedge", |_w, _t| Some("hedge"));
        let plan = LaunchPlan::from_offsets(vec![Duration::ZERO, Duration::from_millis(20)]);
        let r =
            ThreadedEngine::new().execute_planned(&block, &mut ws(), &CancelToken::new(), &plan);
        assert_eq!(r.value, Some("hedge"));
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.suppressed, 0);
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "the hedge respected its launch offset"
        );
    }

    #[test]
    fn immediate_plan_matches_execute_with_token() {
        // Same block, same workspace shape: the all-zeros plan must give
        // the same value, winner, and workspace bytes as the token entry
        // point (it is the same code path).
        let mk = || -> AltBlock<u8> {
            AltBlock::new()
                .alternative("loser", |w, t| {
                    w.write(0, &[1]);
                    for _ in 0..100 {
                        t.checkpoint()?;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Some(1)
                })
                .alternative("winner", |w, _t| {
                    w.write(0, &[2]);
                    Some(2)
                })
        };
        let mut ws_token = ws();
        let via_token =
            ThreadedEngine::new().execute_with_token(&mk(), &mut ws_token, &CancelToken::new());
        let mut ws_plan = ws();
        let via_plan = ThreadedEngine::new().execute_planned(
            &mk(),
            &mut ws_plan,
            &CancelToken::new(),
            &LaunchPlan::immediate(2),
        );
        assert_eq!(via_token.value, via_plan.value);
        assert_eq!(via_token.winner, via_plan.winner);
        assert_eq!(via_token.winner_name, via_plan.winner_name);
        assert_eq!(via_token.attempts, via_plan.attempts);
        assert_eq!(ws_token.read_vec(0, 1), ws_plan.read_vec(0, 1));
    }

    #[test]
    fn many_alternatives_race_correctly() {
        // 16 alternatives; index 11 is the only one that returns quickly.
        let mut block: AltBlock<usize> = AltBlock::new();
        for i in 0..16usize {
            let body = sleepy(if i == 11 { 1 } else { 100 });
            block = block.alternative(format!("alt{i}"), move |_w, t| body(t).map(|_| i));
        }
        let r = ThreadedEngine::new().execute(&block, &mut ws());
        assert_eq!(r.value, Some(11));
    }
}
