//! The §4.2–§4.3 analytic performance model.
//!
//! The paper compares concurrent execution of N alternatives against the
//! observable-equivalent sequential baseline (Scheme B: arbitrary
//! selection), whose expected cost is the arithmetic mean of the
//! alternatives' times. Concurrent execution costs the *best* time plus
//! overhead, so the **performance improvement** is
//!
//! ```text
//!            τ(C_mean, x)
//! PI = ─────────────────────────
//!       τ(C_best, x) + τ(overhead)
//! ```
//!
//! with `τ(overhead) = τ(setup) + τ(runtime) + τ(selection)` (§4.3).
//! This module reproduces the paper's worked table (experiment E2) and
//! provides the dispersion analysis behind experiment E6.

use std::fmt;

/// The three components of `τ(overhead)` (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Overhead {
    /// Creating execution environments (process table entries, page maps).
    pub setup: f64,
    /// Copying shared memory on update + CPU sharing with losing siblings.
    pub runtime: f64,
    /// Selecting the winner: deleting siblings, committing updates.
    pub selection: f64,
}

impl Overhead {
    /// A single aggregate overhead value (the form the paper's table
    /// uses: "Let τ(overhead) be 5").
    pub fn total_of(value: f64) -> Overhead {
        Overhead {
            setup: value,
            runtime: 0.0,
            selection: 0.0,
        }
    }

    /// The total `τ(overhead)`.
    pub fn total(&self) -> f64 {
        self.setup + self.runtime + self.selection
    }
}

/// Mean execution time of the alternatives — `τ(C_mean)`.
///
/// # Panics
///
/// Panics if `times` is empty or contains a non-finite or negative value.
pub fn mean_time(times: &[f64]) -> f64 {
    validate(times);
    times.iter().sum::<f64>() / times.len() as f64
}

/// Fastest execution time — `τ(C_best)`.
///
/// # Panics
///
/// Panics if `times` is empty or contains a non-finite or negative value.
pub fn best_time(times: &[f64]) -> f64 {
    validate(times);
    times.iter().copied().fold(f64::INFINITY, f64::min)
}

/// The performance improvement `PI = mean / (best + overhead)` (§4.3).
///
/// # Panics
///
/// Panics if `times` is empty or invalid, or the denominator is zero.
pub fn performance_improvement(times: &[f64], overhead: &Overhead) -> f64 {
    let denom = best_time(times) + overhead.total();
    assert!(denom > 0.0, "PI undefined: best + overhead is zero");
    mean_time(times) / denom
}

/// The win condition: parallel execution wins iff
/// `τ(C_best) + τ(overhead) < τ(C_mean)` (§4.3).
pub fn parallel_wins(times: &[f64], overhead: &Overhead) -> bool {
    best_time(times) + overhead.total() < mean_time(times)
}

/// The largest overhead at which parallel execution still breaks even:
/// `mean − best`. The "size of the differences matters" observation in
/// concrete form.
pub fn breakeven_overhead(times: &[f64]) -> f64 {
    mean_time(times) - best_time(times)
}

/// Population variance of the times — the dispersion measure the paper
/// singles out: the mean-vs-best gap "is well-encapsulated by such a
/// statistical measure of dispersion … as the variance."
pub fn variance(times: &[f64]) -> f64 {
    let m = mean_time(times);
    times.iter().map(|t| (t - m).powi(2)).sum::<f64>() / times.len() as f64
}

/// Coefficient of variation (σ/µ) — the scale-free dispersion used by
/// experiment E6's sweep.
pub fn coefficient_of_variation(times: &[f64]) -> f64 {
    let m = mean_time(times);
    if m == 0.0 {
        0.0
    } else {
        variance(times).sqrt() / m
    }
}

fn validate(times: &[f64]) {
    assert!(!times.is_empty(), "need at least one alternative time");
    for &t in times {
        assert!(t.is_finite() && t >= 0.0, "invalid execution time {t}");
    }
}

/// One row of the paper's §4.2 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Row number as printed, 1-based.
    pub row: usize,
    /// The three alternative times `τ(C₁..C₃)`.
    pub times: [f64; 3],
    /// `τ(overhead)`.
    pub overhead: f64,
    /// The PI value the paper prints for this row (rounded as printed).
    pub paper_pi: f64,
}

impl PaperRow {
    /// The PI computed by this library's model (unrounded).
    pub fn computed_pi(&self) -> f64 {
        performance_improvement(&self.times, &Overhead::total_of(self.overhead))
    }
}

impl fmt::Display for PaperRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}) τ=({:>3}, {:>3}, {:>6})  overhead={}  PI={:.2} (paper: {:.2})",
            self.row,
            self.times[0],
            self.times[1],
            self.times[2],
            self.overhead,
            self.computed_pi(),
            self.paper_pi
        )
    }
}

/// The six worked rows of the paper's §4.2 table (N = 3,
/// `τ(overhead) = 5`), with the PI values as printed there.
pub fn paper_table() -> Vec<PaperRow> {
    vec![
        PaperRow {
            row: 1,
            times: [10.0, 20.0, 30.0],
            overhead: 5.0,
            paper_pi: 1.33,
        },
        PaperRow {
            row: 2,
            times: [1.0, 19.0, 106.0],
            overhead: 5.0,
            paper_pi: 7.0,
        },
        PaperRow {
            row: 3,
            times: [20.0, 20.0, 20.0],
            overhead: 5.0,
            paper_pi: 0.8,
        },
        PaperRow {
            row: 4,
            times: [1.0, 2.0, 3.0],
            overhead: 5.0,
            paper_pi: 0.33,
        },
        PaperRow {
            row: 5,
            times: [115.0, 120.0, 125.0],
            overhead: 5.0,
            paper_pi: 1.0,
        },
        PaperRow {
            row: 6,
            times: [100.0, 200.0, 300.0],
            overhead: 5.0,
            paper_pi: 1.9,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_best() {
        let t = [10.0, 20.0, 30.0];
        assert_eq!(mean_time(&t), 20.0);
        assert_eq!(best_time(&t), 10.0);
    }

    #[test]
    fn paper_table_reproduces_all_six_rows() {
        // The headline E2 check: our model must reproduce the paper's PI
        // column to the printed precision.
        for row in paper_table() {
            let computed = row.computed_pi();
            assert!(
                (computed - row.paper_pi).abs() < 0.01,
                "row {}: computed {computed} vs paper {}",
                row.row,
                row.paper_pi
            );
        }
    }

    #[test]
    fn row_inferences_hold() {
        let rows = paper_table();
        // (3) and (5): equal times lose or break even — size of the
        // differences matters.
        assert!(rows[2].computed_pi() < 1.0);
        assert!((rows[4].computed_pi() - 1.0).abs() < 1e-9);
        // (4): overhead dominating small times loses badly.
        assert!(rows[3].computed_pi() < 0.5);
        // (6): overhead effects diminish with increasing relative
        // execution time — same ratios as (1) but 10×, higher PI.
        assert!(rows[5].computed_pi() > rows[0].computed_pi());
        // (2): large dispersion → large PI.
        assert!(rows[1].computed_pi() > 5.0);
    }

    #[test]
    fn win_condition_matches_pi() {
        let overhead = Overhead::total_of(5.0);
        for row in paper_table() {
            assert_eq!(
                parallel_wins(&row.times, &overhead),
                row.computed_pi() > 1.0,
                "row {}",
                row.row
            );
        }
    }

    #[test]
    fn breakeven_overhead_is_mean_minus_best() {
        assert_eq!(breakeven_overhead(&[10.0, 20.0, 30.0]), 10.0);
        // At exactly the breakeven overhead, PI = 1.
        let t = [10.0, 20.0, 30.0];
        let pi = performance_improvement(&t, &Overhead::total_of(breakeven_overhead(&t)));
        assert!((pi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_and_cv() {
        assert_eq!(variance(&[20.0, 20.0, 20.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[20.0, 20.0, 20.0]), 0.0);
        let spread = [1.0, 19.0, 106.0];
        assert!(variance(&spread) > 1000.0);
        assert!(coefficient_of_variation(&spread) > 1.0);
    }

    #[test]
    fn pi_increases_with_dispersion_at_fixed_mean() {
        // Same mean (20), increasing dispersion → increasing PI.
        let overhead = Overhead::total_of(5.0);
        let tight = performance_improvement(&[19.0, 20.0, 21.0], &overhead);
        let mid = performance_improvement(&[10.0, 20.0, 30.0], &overhead);
        let wide = performance_improvement(&[1.0, 20.0, 39.0], &overhead);
        assert!(tight < mid && mid < wide, "{tight} {mid} {wide}");
    }

    #[test]
    fn overhead_components_sum() {
        let o = Overhead {
            setup: 1.0,
            runtime: 2.0,
            selection: 3.0,
        };
        assert_eq!(o.total(), 6.0);
        assert_eq!(Overhead::total_of(5.0).total(), 5.0);
    }

    #[test]
    fn row_display_mentions_pi() {
        let row = &paper_table()[0];
        let s = row.to_string();
        assert!(s.contains("PI=1.33"), "{s}");
    }

    #[test]
    #[should_panic(expected = "at least one alternative")]
    fn empty_times_panics() {
        mean_time(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid execution time")]
    fn negative_time_panics() {
        best_time(&[1.0, -2.0]);
    }
}
