//! The `alt_block!` macro: Figure 1 as Rust syntax.
//!
//! §3.2 imagines "a language preprocessor applied to a program with
//! mutually exclusive alternatives" generating the `alt_spawn` switch.
//! In Rust the preprocessor is a macro: `alt_block!` builds an
//! [`AltBlock`](crate::AltBlock) with syntax that mirrors the paper's
//! `ENSURE guard WITH method OR …` construct.

/// Builds an [`AltBlock`](crate::AltBlock) from named alternatives.
///
/// Each arm is `"name" => |workspace, cancel| body`, where the body
/// returns `Option<R>` — `Some(value)` means the guard held (Figure 1's
/// `ENSURE`), `None` is a guard failure. The block as a whole `FAIL`s if
/// every arm returns `None`.
///
/// # Example
///
/// ```
/// use altx::alt_block;
/// use altx::engine::{Engine, OrderedEngine};
/// use altx::{AddressSpace, PageSize};
///
/// let block = alt_block![
///     "closed-form" => |_ws, _cancel| Some(10u64 * 11 / 2),
///     "iterative"   => |_ws, cancel| {
///         let mut sum = 0;
///         for i in 1..=10u64 {
///             cancel.checkpoint()?;
///             sum += i;
///         }
///         Some(sum)
///     },
/// ];
///
/// let mut ws = AddressSpace::zeroed(4096, PageSize::K4);
/// assert_eq!(OrderedEngine::new().execute(&block, &mut ws).value, Some(55));
/// ```
#[macro_export]
macro_rules! alt_block {
    [ $( $name:expr => $body:expr ),+ $(,)? ] => {{
        let block = $crate::AltBlock::new();
        $( let block = block.alternative($name, $body); )+
        block
    }};
}

#[cfg(test)]
mod tests {
    use crate::engine::{Engine, OrderedEngine, ThreadedEngine};
    use crate::{AddressSpace, PageSize};

    fn ws() -> AddressSpace {
        AddressSpace::zeroed(64, PageSize::new(64))
    }

    #[test]
    fn builds_in_declaration_order() {
        let block = alt_block![
            "first" => |_w: &mut AddressSpace, _t: &crate::CancelToken| Some(1),
            "second" => |_w: &mut AddressSpace, _t: &crate::CancelToken| Some(2),
        ];
        assert_eq!(block.len(), 2);
        assert_eq!(block.alternatives()[0].name(), "first");
        let r = OrderedEngine::new().execute(&block, &mut ws());
        assert_eq!(r.value, Some(1));
    }

    #[test]
    fn trailing_comma_optional_and_engines_accept() {
        let block = alt_block![
            "fails" => |_w: &mut AddressSpace, _t: &crate::CancelToken| None::<u8>,
            "wins" => |_w: &mut AddressSpace, _t: &crate::CancelToken| Some(9u8)
        ];
        let r = ThreadedEngine::new().execute(&block, &mut ws());
        assert_eq!(r.value, Some(9));
        assert_eq!(r.winner_name.as_deref(), Some("wins"));
    }

    #[test]
    fn works_in_function_scope_with_captures() {
        let base = 40u32;
        let block = alt_block![
            "capture" => move |_w: &mut AddressSpace, _t: &crate::CancelToken| Some(base + 2),
        ];
        let r = OrderedEngine::new().execute(&block, &mut ws());
        assert_eq!(r.value, Some(42));
    }
}
