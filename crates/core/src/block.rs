//! The alternative block over real Rust closures.
//!
//! [`AltBlock`] is the library-level `ALTBEGIN … END` of Figure 1. Each
//! alternative is a closure over a COW-forked [`AddressSpace`] workspace;
//! returning `Some(value)` means the guard held (the computed result is
//! acceptable), `None` means the guard failed. At most one alternative's
//! workspace mutations become visible to the caller — the engines enforce
//! the paper's "at most one of the alternative state changes occurs"
//! semantics.

use crate::cancel::CancelToken;
use altx_pager::AddressSpace;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// The signature of an alternative's body: compute on a private COW fork
/// of the workspace, poll the token, return `Some(result)` iff the guard
/// is satisfied.
pub type AltFn<R> = dyn Fn(&mut AddressSpace, &CancelToken) -> Option<R> + Send + Sync;

/// One named alternative.
pub struct BlockAlternative<R> {
    name: String,
    body: Box<AltFn<R>>,
}

impl<R> BlockAlternative<R> {
    /// The alternative's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the body on `workspace`.
    pub fn run(&self, workspace: &mut AddressSpace, token: &CancelToken) -> Option<R> {
        (self.body)(workspace, token)
    }

    /// Runs the body with panic containment: a panicking body is
    /// reported as a failed guard (`None`) plus `panicked = true`,
    /// instead of unwinding into the engine (and, under a threaded
    /// engine, killing the racing thread).
    ///
    /// This is the paper's guard-fails semantics applied to crashes: an
    /// alternative that dies is indistinguishable from one whose guard
    /// was unsatisfied — its fork is discarded either way, so no
    /// partially-mutated state can leak. `AssertUnwindSafe` is sound
    /// here because the only state the closure can reach besides its
    /// own captures is the fork, which the caller throws away on
    /// failure.
    pub fn run_contained(
        &self,
        workspace: &mut AddressSpace,
        token: &CancelToken,
    ) -> (Option<R>, bool) {
        match catch_unwind(AssertUnwindSafe(|| self.run(workspace, token))) {
            Ok(value) => (value, false),
            Err(_) => (None, true),
        }
    }
}

impl<R> fmt::Debug for BlockAlternative<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAlternative({:?})", self.name)
    }
}

/// A block of mutually exclusive alternatives producing an `R`.
///
/// # Example
///
/// ```
/// use altx::AltBlock;
///
/// let block: AltBlock<i32> = AltBlock::new()
///     .alternative("constant", |_ws, _t| Some(42))
///     .alternative("never", |_ws, _t| None);
/// assert_eq!(block.len(), 2);
/// assert_eq!(block.alternatives()[1].name(), "never");
/// ```
pub struct AltBlock<R> {
    alternatives: Vec<BlockAlternative<R>>,
}

impl<R> Default for AltBlock<R> {
    fn default() -> Self {
        AltBlock::new()
    }
}

impl<R> AltBlock<R> {
    /// Creates an empty block (add alternatives before executing).
    pub fn new() -> Self {
        AltBlock {
            alternatives: Vec::new(),
        }
    }

    /// Adds an alternative (builder style).
    pub fn alternative<F>(mut self, name: impl Into<String>, body: F) -> Self
    where
        F: Fn(&mut AddressSpace, &CancelToken) -> Option<R> + Send + Sync + 'static,
    {
        self.alternatives.push(BlockAlternative {
            name: name.into(),
            body: Box::new(body),
        });
        self
    }

    /// The alternatives in declaration order.
    pub fn alternatives(&self) -> &[BlockAlternative<R>] {
        &self.alternatives
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// True iff the block has no alternatives (executing it fails).
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty()
    }
}

impl<R> fmt::Debug for AltBlock<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.alternatives.iter().map(|a| &a.name))
            .finish()
    }
}

/// The observable outcome of executing an [`AltBlock`].
#[derive(Debug)]
pub struct BlockResult<R> {
    /// The selected alternative's value; `None` means the block failed
    /// (the `FAIL` arm of Figure 1).
    pub value: Option<R>,
    /// Index of the winning alternative.
    pub winner: Option<usize>,
    /// Name of the winning alternative.
    pub winner_name: Option<String>,
    /// Real wall-clock time the execution took.
    pub wall: Duration,
    /// How many alternative bodies were started.
    pub attempts: usize,
    /// How many alternative bodies panicked and were contained (each is
    /// also a failed attempt; a nonzero count with a successful block
    /// means a *sibling* crashed and the race survived it).
    pub panics: usize,
    /// How many alternatives never ran their body because the race was
    /// already decided when their turn came — a queued alternative under
    /// bounded parallelism, or a hedged alternative whose
    /// [`LaunchPlan`](crate::engine::LaunchPlan) offset had not elapsed.
    /// Suppression changes cost, never which value is selected.
    pub suppressed: usize,
}

impl<R> BlockResult<R> {
    /// True iff some alternative succeeded.
    pub fn succeeded(&self) -> bool {
        self.value.is_some()
    }

    /// Unwraps the value.
    ///
    /// # Panics
    ///
    /// Panics if the block failed.
    pub fn into_value(self) -> R {
        self.value.expect("alternative block failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_pager::PageSize;

    #[test]
    fn builder_collects_alternatives() {
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("a", |_w, _t| Some(1))
            .alternative("b", |_w, _t| None);
        assert_eq!(block.len(), 2);
        assert!(!block.is_empty());
        assert_eq!(block.alternatives()[0].name(), "a");
        assert_eq!(format!("{block:?}"), r#"["a", "b"]"#);
    }

    #[test]
    fn alternative_bodies_run_on_workspace() {
        let block: AltBlock<u8> = AltBlock::new().alternative("writer", |ws, _t| {
            ws.write(0, &[9]);
            Some(ws.read_vec(0, 1)[0])
        });
        let mut ws = AddressSpace::zeroed(16, PageSize::new(16));
        let token = CancelToken::new();
        let got = block.alternatives()[0].run(&mut ws, &token);
        assert_eq!(got, Some(9));
    }

    #[test]
    fn run_contained_converts_panic_to_failed_guard() {
        let block: AltBlock<u8> = AltBlock::new()
            .alternative("bomb", |_w, _t| panic!("kaboom"))
            .alternative("fine", |_w, _t| Some(1));
        let mut ws = AddressSpace::zeroed(16, PageSize::new(16));
        let token = CancelToken::new();
        let (value, panicked) = block.alternatives()[0].run_contained(&mut ws, &token);
        assert_eq!(value, None);
        assert!(panicked);
        let (value, panicked) = block.alternatives()[1].run_contained(&mut ws, &token);
        assert_eq!(value, Some(1));
        assert!(!panicked);
    }

    #[test]
    fn empty_block_reports_empty() {
        let block: AltBlock<()> = AltBlock::new();
        assert!(block.is_empty());
        assert_eq!(block.len(), 0);
    }

    #[test]
    fn block_result_accessors() {
        let ok = BlockResult {
            value: Some(5),
            winner: Some(0),
            winner_name: Some("x".into()),
            wall: Duration::ZERO,
            attempts: 1,
            panics: 0,
            suppressed: 0,
        };
        assert!(ok.succeeded());
        assert_eq!(ok.into_value(), 5);
        let failed: BlockResult<i32> = BlockResult {
            value: None,
            winner: None,
            winner_name: None,
            wall: Duration::ZERO,
            attempts: 2,
            panics: 1,
            suppressed: 0,
        };
        assert!(!failed.succeeded());
    }

    #[test]
    #[should_panic(expected = "alternative block failed")]
    fn into_value_panics_on_failure() {
        let failed: BlockResult<i32> = BlockResult {
            value: None,
            winner: None,
            winner_name: None,
            wall: Duration::ZERO,
            attempts: 0,
            panics: 0,
            suppressed: 0,
        };
        failed.into_value();
    }
}
