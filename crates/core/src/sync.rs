//! Small std-only synchronization primitives shared by the engines and
//! the serving layer.
//!
//! The standard library has no counting semaphore or bounded MPMC queue;
//! rather than pull in a dependency for two well-understood structures,
//! they live here on `Mutex` + `Condvar`. Both are deliberately boring:
//! correctness and drainability (for graceful shutdown) over raw speed.
//!
//! Both primitives **recover from lock poisoning** rather than
//! propagating it: their invariants are re-established before every
//! unlock (a push/pop/count update completes or doesn't happen), so a
//! panic elsewhere on a thread that once held the lock cannot leave the
//! state half-mutated. Propagating the poison would instead let one
//! contained panic anywhere in the process wedge shutdown paths — the
//! serving layer's drain guarantee depends on `close`/`pop` never
//! panicking.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// A counting semaphore: [`acquire`](Semaphore::acquire) blocks while the
/// count is zero.
///
/// Used by [`ThreadedEngine`](crate::engine::ThreadedEngine) to bound the
/// number of concurrently racing alternatives (the paper's *virtual
/// concurrency* case, §4.2).
#[derive(Debug)]
pub struct Semaphore {
    count: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            count: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Blocks until a permit is available, then takes it.
    pub fn acquire(&self) {
        let mut count = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        while *count == 0 {
            count = self
                .available
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *count -= 1;
    }

    /// Returns one permit.
    pub fn release(&self) {
        let mut count = self.count.lock().unwrap_or_else(PoisonError::into_inner);
        *count += 1;
        drop(count);
        self.available.notify_one();
    }
}

/// Why a [`BoundedQueue`] operation did not deliver an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queue is at capacity (the caller should shed load).
    Full,
    /// The queue was closed and fully drained.
    Closed,
}

/// A bounded multi-producer/multi-consumer queue with explicit rejection
/// (never blocking the producer) and drain-on-close semantics.
///
/// This is `altx-serve`'s admission-control run queue: `push` fails fast
/// with [`QueueError::Full`] so an overloaded server can reply
/// `Overloaded` instead of building an unbounded backlog, and `close`
/// lets consumers finish everything already admitted before exiting —
/// graceful shutdown drains in-flight work.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    items_available: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            items_available: Condvar::new(),
        }
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] at capacity (the item is handed back),
    /// [`QueueError::Closed`] after [`close`](Self::close).
    pub fn push(&self, item: T) -> Result<(), (T, QueueError)> {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Err((item, QueueError::Closed));
        }
        if state.items.len() >= state.capacity {
            return Err((item, QueueError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.items_available.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `Err(Closed)` once the queue is closed
    /// *and* empty (admitted items are always delivered).
    ///
    /// # Errors
    ///
    /// [`QueueError::Closed`] after close-and-drain; never `Full`.
    pub fn pop(&self) -> Result<T, QueueError> {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.closed {
                return Err(QueueError::Closed);
            }
            state = self
                .items_available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`pop`](Self::pop) but gives up after `timeout`, returning
    /// `Ok(None)` so pollers can check other conditions.
    ///
    /// # Errors
    ///
    /// [`QueueError::Closed`] after close-and-drain.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<Option<T>, QueueError> {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Ok(Some(item));
            }
            if state.closed {
                return Err(QueueError::Closed);
            }
            let (next, waited) = self
                .items_available
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if waited.timed_out() {
                return Ok(state.items.pop_front());
            }
        }
    }

    /// Current backlog length.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// True iff no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future `push`es fail, consumers drain what was
    /// already admitted and then see `Closed`.
    pub fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.items_available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn semaphore_bounds_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sem = Arc::new(Semaphore::new(2));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (sem, live, peak) = (sem.clone(), live.clone(), peak.clone());
                std::thread::spawn(move || {
                    sem.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                    sem.release();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("joins");
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "no more than 2 at once");
    }

    #[test]
    fn queue_rejects_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        let (item, e) = q.push(3).expect_err("full");
        assert_eq!((item, e), (3, QueueError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn queue_is_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).expect("capacity");
        }
        let drained: Vec<i32> = (0..5).map(|_| q.pop().expect("item")).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(8);
        q.push("a").expect("capacity");
        q.push("b").expect("capacity");
        q.close();
        assert_eq!(q.push("c").expect_err("closed").1, QueueError::Closed);
        assert_eq!(q.pop(), Ok("a"));
        assert_eq!(q.pop(), Ok("b"));
        assert_eq!(q.pop(), Err(QueueError::Closed));
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.push(42).expect("capacity");
        assert_eq!(consumer.join().expect("joins"), Ok(42));
    }

    #[test]
    fn pop_timeout_returns_none_when_idle() {
        let q: BoundedQueue<()> = BoundedQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Ok(None));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<()>> = Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().expect("joins"), Err(QueueError::Closed));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<()>::new(0);
    }
}
