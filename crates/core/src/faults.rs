//! Deterministic, seeded fault injection for the racing and serving
//! layers.
//!
//! The paper's premise is that alternatives *fail* — a guard is
//! unsatisfied, a sibling is eliminated, a machine dies — and the
//! survivor must still present clean sequential semantics (§5 frames
//! this as recovery blocks). This module makes those failures
//! *manufacturable*: a [`FaultPlan`] built from a seed decides, at named
//! **sites** on the execution path, whether to inject a panic, a delay,
//! a spurious cancellation, or a forced alternative failure. Every
//! decision is drawn from a per-site deterministic stream, so a soak run
//! under seed `S` injects the same fault sequence at each site every
//! time — failures become replayable test inputs rather than flakes.
//!
//! Sites in this workspace:
//!
//! | site | layer | faults honored |
//! |---|---|---|
//! | `engine.alt.<name>` | `ThreadedEngine`, per alternative | panic, delay, cancel, fail |
//! | `pool.job` | `WorkerPool`, per job | panic, delay, fail |
//! | `pool.worker` | `WorkerPool`, per queue pop | panic (kills the thread) |
//!
//! A plan is installed process-globally with [`install`] and removed
//! with [`clear`]. With no plan installed, [`inject`] is a single
//! relaxed atomic load — the layer compiles to near-zero overhead on the
//! hot path. Install a plan only from a test or binary that owns the
//! process (the chaos soak test lives in its own test binary for exactly
//! this reason).

use crate::cancel::CancelToken;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (`panic!`); the surrounding layer must contain
    /// it — a dead worker or poisoned race is a containment bug, and the
    /// chaos soak exists to catch it.
    Panic,
    /// Sleep for the carried duration before proceeding: models a slow
    /// disk, a GC pause, a cold cache.
    Delay(Duration),
    /// Cancel the site's [`CancelToken`]: a spurious elimination signal,
    /// as if a sibling had already won or the caller gave up.
    Cancel,
    /// Force the alternative to fail (guard-unsatisfied semantics)
    /// without running it.
    Fail,
}

impl Fault {
    fn kind_index(self) -> usize {
        match self {
            Fault::Panic => 0,
            Fault::Delay(_) => 1,
            Fault::Cancel => 2,
            Fault::Fail => 3,
        }
    }
}

/// What a call site must do after consulting the plan. Panics and
/// delays are handled inside [`inject`]; the verdict only carries what
/// the caller itself has to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proceed normally.
    Continue,
    /// Treat the alternative/job as failed without running it.
    Fail,
}

/// Per-kind injection probabilities and the seed they are drawn under.
///
/// Probabilities are evaluated in order panic → delay → cancel → fail
/// against one uniform draw per site visit, so their sum is the total
/// injection rate (values summing above 1.0 saturate).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for every per-site decision stream.
    pub seed: u64,
    /// Probability of [`Fault::Panic`] per site visit.
    pub p_panic: f64,
    /// Probability of [`Fault::Delay`] per site visit.
    pub p_delay: f64,
    /// Probability of [`Fault::Cancel`] per site visit.
    pub p_cancel: f64,
    /// Probability of [`Fault::Fail`] per site visit.
    pub p_fail: f64,
    /// Upper bound for injected delays (drawn uniformly in `0..max`).
    pub max_delay: Duration,
}

impl FaultConfig {
    /// A quiet plan: nothing fires. Useful as a base for builders.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_panic: 0.0,
            p_delay: 0.0,
            p_cancel: 0.0,
            p_fail: 0.0,
            max_delay: Duration::from_millis(2),
        }
    }

    /// The standard chaos-soak mix: roughly 30% of site visits are
    /// faulted, split across all four kinds, with short delays so soaks
    /// stay fast.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_panic: 0.08,
            p_delay: 0.08,
            p_cancel: 0.04,
            p_fail: 0.10,
            max_delay: Duration::from_millis(3),
        }
    }

    fn total(&self) -> f64 {
        self.p_panic + self.p_delay + self.p_cancel + self.p_fail
    }
}

/// A seeded fault plan plus its injection counters.
///
/// Each site gets its own decision stream: visit `n` of site `s` hashes
/// `(seed, s, n)`, so the fault sequence a site sees depends only on
/// the seed and how many times that site has been visited — not on how
/// threads interleave across sites.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Per-site visit counters (site name → visits so far).
    site_seq: Mutex<BTreeMap<String, u64>>,
    /// Injections per fault kind, indexed by [`Fault::kind_index`].
    injected: [AtomicU64; 4],
}

impl FaultPlan {
    /// Builds a plan from a config.
    pub fn new(cfg: FaultConfig) -> Arc<Self> {
        Arc::new(FaultPlan {
            cfg,
            site_seq: Mutex::new(BTreeMap::new()),
            injected: Default::default(),
        })
    }

    /// Shorthand: the [`FaultConfig::chaos`] mix under `seed`.
    pub fn chaos(seed: u64) -> Arc<Self> {
        FaultPlan::new(FaultConfig::chaos(seed))
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Total faults injected so far, all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Faults of one kind injected so far (`Delay`'s duration is
    /// ignored for matching).
    pub fn injected_of(&self, kind: Fault) -> u64 {
        self.injected[kind.kind_index()].load(Ordering::Relaxed)
    }

    /// Decides the fault (if any) for the next visit of `site`, and
    /// counts it. Deterministic per `(seed, site, visit-number)`.
    pub fn decide(&self, site: &str) -> Option<Fault> {
        let seq = {
            let mut sites = self.site_seq.lock().unwrap_or_else(PoisonError::into_inner);
            let n = sites.entry(site.to_owned()).or_insert(0);
            let seq = *n;
            *n += 1;
            seq
        };
        let raw = splitmix(self.cfg.seed ^ fnv1a(site) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = uniform(raw);
        if self.cfg.total() <= 0.0 {
            return None;
        }
        // One uniform draw against the stacked probability edges.
        let mut edge = 0.0;
        let mut hits = |p: f64| {
            edge += p;
            u < edge
        };
        let fault = if hits(self.cfg.p_panic) {
            Fault::Panic
        } else if hits(self.cfg.p_delay) {
            // A second draw picks the delay length, still deterministic.
            let frac = uniform(splitmix(raw ^ 0xD31A));
            Fault::Delay(self.cfg.max_delay.mul_f64(frac))
        } else if hits(self.cfg.p_cancel) {
            Fault::Cancel
        } else if hits(self.cfg.p_fail) {
            Fault::Fail
        } else {
            return None;
        };
        self.injected[fault.kind_index()].fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(raw: u64) -> f64 {
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------
// Process-global installation.

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static REGISTRY: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

/// Installs `plan` process-globally; replaces any previous plan.
pub fn install(plan: Arc<FaultPlan>) {
    *registry().lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed plan; injection sites return to the
/// single-atomic-load fast path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *registry().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// True iff a plan is installed. One relaxed load — this is the hot-path
/// guard call sites use before doing any per-site work (such as
/// formatting a site name).
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The currently installed plan, if any.
pub fn current() -> Option<Arc<FaultPlan>> {
    if !enabled() {
        return None;
    }
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Total faults injected by the installed plan (0 when none).
pub fn injected_total() -> u64 {
    current().map_or(0, |p| p.injected_total())
}

/// Uninstalls the plan when dropped — keeps a panicking test from
/// leaking chaos into the rest of the process.
#[derive(Debug)]
pub struct InstallGuard(());

/// Installs `plan` and returns a guard that [`clear`]s it on drop.
#[must_use = "dropping the guard immediately uninstalls the plan"]
pub fn install_guarded(plan: Arc<FaultPlan>) -> InstallGuard {
    install(plan);
    InstallGuard(())
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Consults the plan at `site`, handling panics and delays in place.
///
/// With no plan installed this is one relaxed atomic load. Otherwise:
/// `Panic` faults panic right here (the caller's containment layer must
/// absorb it), `Delay` sleeps and continues, `Cancel` cancels `token`
/// (if one was passed) and continues, and `Fail` is returned as
/// [`Verdict::Fail`] for the caller to act on.
#[inline]
pub fn inject(site: &str, token: Option<&CancelToken>) -> Verdict {
    if !enabled() {
        return Verdict::Continue;
    }
    inject_slow(site, token)
}

#[cold]
fn inject_slow(site: &str, token: Option<&CancelToken>) -> Verdict {
    let Some(plan) = current() else {
        return Verdict::Continue;
    };
    match plan.decide(site) {
        None => Verdict::Continue,
        Some(Fault::Panic) => panic!("altx-faults: injected panic at {site}"),
        Some(Fault::Delay(d)) => {
            std::thread::sleep(d);
            Verdict::Continue
        }
        Some(Fault::Cancel) => {
            if let Some(t) = token {
                t.cancel();
            }
            Verdict::Continue
        }
        Some(Fault::Fail) => Verdict::Fail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let plan = FaultPlan::new(FaultConfig::quiet(7));
        for _ in 0..500 {
            assert_eq!(plan.decide("engine.alt.x"), None);
        }
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_site() {
        let a = FaultPlan::new(FaultConfig::chaos(42));
        let b = FaultPlan::new(FaultConfig::chaos(42));
        let seq_a: Vec<_> = (0..200).map(|_| a.decide("pool.job")).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.decide("pool.job")).collect();
        assert_eq!(seq_a, seq_b);

        let c = FaultPlan::new(FaultConfig::chaos(43));
        let seq_c: Vec<_> = (0..200).map(|_| c.decide("pool.job")).collect();
        assert_ne!(seq_a, seq_c, "different seed, different stream");
    }

    #[test]
    fn sites_have_independent_streams() {
        let plan = FaultPlan::new(FaultConfig::chaos(9));
        let s1: Vec<_> = (0..100).map(|_| plan.decide("site.one")).collect();
        let plan2 = FaultPlan::new(FaultConfig::chaos(9));
        let s2: Vec<_> = (0..100).map(|_| plan2.decide("site.two")).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn injection_rate_tracks_configured_probability() {
        let plan = FaultPlan::new(FaultConfig::chaos(1));
        let fired = (0..2000).filter(|_| plan.decide("rate").is_some()).count();
        // chaos() totals 0.30; allow generous slack.
        assert!((400..800).contains(&fired), "fired {fired} of 2000");
        assert_eq!(plan.injected_total(), fired as u64);
    }

    #[test]
    fn per_kind_counters_sum_to_total() {
        let plan = FaultPlan::new(FaultConfig::chaos(5));
        for _ in 0..1000 {
            let _ = plan.decide("kinds");
        }
        let by_kind = plan.injected_of(Fault::Panic)
            + plan.injected_of(Fault::Delay(Duration::ZERO))
            + plan.injected_of(Fault::Cancel)
            + plan.injected_of(Fault::Fail);
        assert_eq!(by_kind, plan.injected_total());
        assert!(plan.injected_of(Fault::Panic) > 0);
        assert!(plan.injected_of(Fault::Fail) > 0);
    }

    #[test]
    fn delays_respect_max_delay() {
        let mut cfg = FaultConfig::quiet(3);
        cfg.p_delay = 1.0;
        cfg.max_delay = Duration::from_millis(7);
        let plan = FaultPlan::new(cfg);
        for _ in 0..100 {
            match plan.decide("delays") {
                Some(Fault::Delay(d)) => assert!(d <= Duration::from_millis(7)),
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }

    // The install/clear global is exercised in one test to avoid
    // cross-test interference inside this binary.
    #[test]
    fn global_install_roundtrip() {
        assert_eq!(inject("nothing.installed", None), Verdict::Continue);
        assert_eq!(injected_total(), 0);

        let mut cfg = FaultConfig::quiet(11);
        cfg.p_fail = 1.0;
        {
            let _guard = install_guarded(FaultPlan::new(cfg));
            assert!(enabled());
            assert_eq!(inject("always.fails", None), Verdict::Fail);
            assert!(injected_total() >= 1);

            let mut cancel_cfg = FaultConfig::quiet(12);
            cancel_cfg.p_cancel = 1.0;
            install(FaultPlan::new(cancel_cfg));
            let token = CancelToken::new();
            assert_eq!(inject("always.cancels", Some(&token)), Verdict::Continue);
            assert!(token.is_cancelled(), "cancel fault fired the token");
        }
        assert!(!enabled(), "guard uninstalls on drop");
        assert!(current().is_none());
    }
}
