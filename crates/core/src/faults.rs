//! Deterministic, seeded fault injection for the racing and serving
//! layers.
//!
//! The paper's premise is that alternatives *fail* — a guard is
//! unsatisfied, a sibling is eliminated, a machine dies — and the
//! survivor must still present clean sequential semantics (§5 frames
//! this as recovery blocks). This module makes those failures
//! *manufacturable*: a [`FaultPlan`] built from a seed decides, at named
//! **sites** on the execution path, whether to inject a panic, a delay,
//! a spurious cancellation, or a forced alternative failure. Every
//! decision is drawn from a per-site deterministic stream, so a soak run
//! under seed `S` injects the same fault sequence at each site every
//! time — failures become replayable test inputs rather than flakes.
//!
//! Sites in this workspace:
//!
//! | site | layer | faults honored |
//! |---|---|---|
//! | `engine.alt.<name>` | `ThreadedEngine`, per alternative | panic, delay, cancel, fail |
//! | `pool.job` | `WorkerPool`, per job | panic, delay, fail |
//! | `pool.worker` | `WorkerPool`, per queue pop | panic (kills the thread) |
//! | `peer.link.<addr>.send` | `PeerNet`, per outbound frame | drop, delay, duplicate, truncate, partition |
//! | `peer.link.<addr>.recv` | `PeerNet`, per inbound frame | drop, delay, duplicate, truncate, partition |
//!
//! The `peer.link.*` sites speak the separate [`NetFault`] vocabulary —
//! wire-level failures rather than process-level ones — drawn from the
//! same seeded per-site streams via [`FaultPlan::decide_net`]. A test
//! can also impose a *timed one-way partition* by hand with
//! [`FaultPlan::partition`] / [`FaultPlan::heal`]: every visit of the
//! named site drops until healed, which is how the cluster soak models
//! a link that silently eats traffic in one direction and then comes
//! back.
//!
//! A plan is installed process-globally with [`install`] and removed
//! with [`clear`]. With no plan installed, [`inject`] is a single
//! relaxed atomic load — the layer compiles to near-zero overhead on the
//! hot path. Install a plan only from a test or binary that owns the
//! process (the chaos soak test lives in its own test binary for exactly
//! this reason).

use crate::cancel::CancelToken;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (`panic!`); the surrounding layer must contain
    /// it — a dead worker or poisoned race is a containment bug, and the
    /// chaos soak exists to catch it.
    Panic,
    /// Sleep for the carried duration before proceeding: models a slow
    /// disk, a GC pause, a cold cache.
    Delay(Duration),
    /// Cancel the site's [`CancelToken`]: a spurious elimination signal,
    /// as if a sibling had already won or the caller gave up.
    Cancel,
    /// Force the alternative to fail (guard-unsatisfied semantics)
    /// without running it.
    Fail,
}

impl Fault {
    fn kind_index(self) -> usize {
        match self {
            Fault::Panic => 0,
            Fault::Delay(_) => 1,
            Fault::Cancel => 2,
            Fault::Fail => 3,
        }
    }
}

/// One injected *network* fault at a `peer.link.*` site.
///
/// These model the wire, not the process: a frame that never leaves,
/// arrives twice, arrives cut short, or a direction of a link that
/// silently eats everything for a while.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The frame is lost: on send it never reaches the wire, on recv it
    /// is consumed without being delivered to the protocol layer.
    Drop,
    /// The frame is stalled for the carried duration before proceeding.
    Delay(Duration),
    /// The frame is delivered twice; the protocol layer must be
    /// idempotent against it.
    Duplicate,
    /// The frame's bytes are cut short, desynchronizing the stream —
    /// the link is expected to die and redial.
    Truncate,
    /// A one-way partition is swallowing this site: behaves as [`Drop`]
    /// for every visit until the partition window ends or is healed.
    ///
    /// [`Drop`]: NetFault::Drop
    Partition,
}

impl NetFault {
    fn kind_index(self) -> usize {
        match self {
            NetFault::Drop => 0,
            NetFault::Delay(_) => 1,
            NetFault::Duplicate => 2,
            NetFault::Truncate => 3,
            NetFault::Partition => 4,
        }
    }
}

/// Per-kind network fault probabilities, evaluated exactly like
/// [`FaultConfig`]'s process faults: one uniform draw per site visit
/// against the stacked edges drop → delay → duplicate → truncate →
/// partition.
#[derive(Debug, Clone)]
pub struct NetFaultConfig {
    /// Probability of [`NetFault::Drop`] per frame.
    pub p_drop: f64,
    /// Probability of [`NetFault::Delay`] per frame.
    pub p_delay: f64,
    /// Probability of [`NetFault::Duplicate`] per frame.
    pub p_duplicate: f64,
    /// Probability of [`NetFault::Truncate`] per frame.
    pub p_truncate: f64,
    /// Probability of a probabilistic one-way partition *starting* at
    /// this frame; it then swallows the next [`partition_visits`]
    /// visits of the same site.
    ///
    /// [`partition_visits`]: NetFaultConfig::partition_visits
    pub p_partition: f64,
    /// Upper bound for injected wire delays.
    pub max_delay: Duration,
    /// How many subsequent visits a probabilistic partition swallows.
    pub partition_visits: u64,
}

impl NetFaultConfig {
    /// No network faults at all.
    pub fn quiet() -> Self {
        NetFaultConfig {
            p_drop: 0.0,
            p_delay: 0.0,
            p_duplicate: 0.0,
            p_truncate: 0.0,
            p_partition: 0.0,
            max_delay: Duration::from_millis(2),
            partition_visits: 20,
        }
    }

    /// The cluster-soak mix: mostly drops, delays, and duplicates, with
    /// rare truncations (each one costs a redial) and rare short
    /// partitions.
    pub fn chaos() -> Self {
        NetFaultConfig {
            p_drop: 0.02,
            p_delay: 0.05,
            p_duplicate: 0.03,
            p_truncate: 0.005,
            p_partition: 0.002,
            max_delay: Duration::from_millis(2),
            partition_visits: 20,
        }
    }

    fn total(&self) -> f64 {
        self.p_drop + self.p_delay + self.p_duplicate + self.p_truncate + self.p_partition
    }
}

/// What a call site must do after consulting the plan. Panics and
/// delays are handled inside [`inject`]; the verdict only carries what
/// the caller itself has to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proceed normally.
    Continue,
    /// Treat the alternative/job as failed without running it.
    Fail,
}

/// Per-kind injection probabilities and the seed they are drawn under.
///
/// Probabilities are evaluated in order panic → delay → cancel → fail
/// against one uniform draw per site visit, so their sum is the total
/// injection rate (values summing above 1.0 saturate).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for every per-site decision stream.
    pub seed: u64,
    /// Probability of [`Fault::Panic`] per site visit.
    pub p_panic: f64,
    /// Probability of [`Fault::Delay`] per site visit.
    pub p_delay: f64,
    /// Probability of [`Fault::Cancel`] per site visit.
    pub p_cancel: f64,
    /// Probability of [`Fault::Fail`] per site visit.
    pub p_fail: f64,
    /// Upper bound for injected delays (drawn uniformly in `0..max`).
    pub max_delay: Duration,
    /// Network fault mix for the `peer.link.*` sites. Quiet in both the
    /// [`quiet`] and [`chaos`] presets — the process-fault soak and the
    /// wire-fault soak are separate tests with separate mixes.
    ///
    /// [`quiet`]: FaultConfig::quiet
    /// [`chaos`]: FaultConfig::chaos
    pub net: NetFaultConfig,
}

impl FaultConfig {
    /// A quiet plan: nothing fires. Useful as a base for builders.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_panic: 0.0,
            p_delay: 0.0,
            p_cancel: 0.0,
            p_fail: 0.0,
            max_delay: Duration::from_millis(2),
            net: NetFaultConfig::quiet(),
        }
    }

    /// The standard chaos-soak mix: roughly 30% of site visits are
    /// faulted, split across all four kinds, with short delays so soaks
    /// stay fast. Network sites stay quiet.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_panic: 0.08,
            p_delay: 0.08,
            p_cancel: 0.04,
            p_fail: 0.10,
            max_delay: Duration::from_millis(3),
            net: NetFaultConfig::quiet(),
        }
    }

    /// The cluster-soak mix: quiet process sites, chaotic wire — the
    /// failures under test are the network's, not the workers'.
    pub fn net_chaos(seed: u64) -> Self {
        FaultConfig {
            net: NetFaultConfig::chaos(),
            ..FaultConfig::quiet(seed)
        }
    }

    fn total(&self) -> f64 {
        self.p_panic + self.p_delay + self.p_cancel + self.p_fail
    }
}

/// A seeded fault plan plus its injection counters.
///
/// Each site gets its own decision stream: visit `n` of site `s` hashes
/// `(seed, s, n)`, so the fault sequence a site sees depends only on
/// the seed and how many times that site has been visited — not on how
/// threads interleave across sites.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Per-site visit counters (site name → visits so far).
    site_seq: Mutex<BTreeMap<String, u64>>,
    /// Injections per fault kind, indexed by [`Fault::kind_index`].
    injected: [AtomicU64; 4],
    /// Injections per network fault kind ([`NetFault::kind_index`]).
    net_injected: [AtomicU64; 5],
    /// Sites under a manual one-way partition ([`partition`]/[`heal`]).
    ///
    /// [`partition`]: FaultPlan::partition
    /// [`heal`]: FaultPlan::heal
    partitioned: Mutex<std::collections::BTreeSet<String>>,
    /// Remaining visits swallowed by a probabilistic partition, per site.
    partition_left: Mutex<BTreeMap<String, u64>>,
}

impl FaultPlan {
    /// Builds a plan from a config.
    pub fn new(cfg: FaultConfig) -> Arc<Self> {
        Arc::new(FaultPlan {
            cfg,
            site_seq: Mutex::new(BTreeMap::new()),
            injected: Default::default(),
            net_injected: Default::default(),
            partitioned: Mutex::new(std::collections::BTreeSet::new()),
            partition_left: Mutex::new(BTreeMap::new()),
        })
    }

    /// Shorthand: the [`FaultConfig::chaos`] mix under `seed`.
    pub fn chaos(seed: u64) -> Arc<Self> {
        FaultPlan::new(FaultConfig::chaos(seed))
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Total faults injected so far, all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Faults of one kind injected so far (`Delay`'s duration is
    /// ignored for matching).
    pub fn injected_of(&self, kind: Fault) -> u64 {
        self.injected[kind.kind_index()].load(Ordering::Relaxed)
    }

    /// Decides the fault (if any) for the next visit of `site`, and
    /// counts it. Deterministic per `(seed, site, visit-number)`.
    pub fn decide(&self, site: &str) -> Option<Fault> {
        let seq = {
            let mut sites = self.site_seq.lock().unwrap_or_else(PoisonError::into_inner);
            let n = sites.entry(site.to_owned()).or_insert(0);
            let seq = *n;
            *n += 1;
            seq
        };
        let raw = splitmix(self.cfg.seed ^ fnv1a(site) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = uniform(raw);
        if self.cfg.total() <= 0.0 {
            return None;
        }
        // One uniform draw against the stacked probability edges.
        let mut edge = 0.0;
        let mut hits = |p: f64| {
            edge += p;
            u < edge
        };
        let fault = if hits(self.cfg.p_panic) {
            Fault::Panic
        } else if hits(self.cfg.p_delay) {
            // A second draw picks the delay length, still deterministic.
            let frac = uniform(splitmix(raw ^ 0xD31A));
            Fault::Delay(self.cfg.max_delay.mul_f64(frac))
        } else if hits(self.cfg.p_cancel) {
            Fault::Cancel
        } else if hits(self.cfg.p_fail) {
            Fault::Fail
        } else {
            return None;
        };
        self.injected[fault.kind_index()].fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    /// Decides the network fault (if any) for the next visit of a
    /// `peer.link.*` site, and counts it. Deterministic per
    /// `(seed, site, visit-number)`, on a stream independent from the
    /// process-fault stream of the same site name.
    ///
    /// Manual partitions ([`partition`]) take precedence over the
    /// probabilistic draw; a probabilistic [`NetFault::Partition`]
    /// swallows the next [`NetFaultConfig::partition_visits`] visits of
    /// the same site so a partition has *duration*, not just a single
    /// lost frame.
    ///
    /// [`partition`]: FaultPlan::partition
    pub fn decide_net(&self, site: &str) -> Option<NetFault> {
        let partitioned = self
            .partitioned
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(site);
        if partitioned {
            self.net_injected[NetFault::Partition.kind_index()].fetch_add(1, Ordering::Relaxed);
            return Some(NetFault::Partition);
        }
        {
            let mut left = self
                .partition_left
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(n) = left.get_mut(site) {
                *n -= 1;
                if *n == 0 {
                    left.remove(site);
                }
                self.net_injected[NetFault::Partition.kind_index()].fetch_add(1, Ordering::Relaxed);
                return Some(NetFault::Partition);
            }
        }
        if self.cfg.net.total() <= 0.0 {
            return None;
        }
        let seq = {
            let mut sites = self.site_seq.lock().unwrap_or_else(PoisonError::into_inner);
            let n = sites.entry(site.to_owned()).or_insert(0);
            let seq = *n;
            *n += 1;
            seq
        };
        // Salted so the wire stream never mirrors a process stream that
        // happens to share a site name.
        let raw = splitmix(
            self.cfg.seed
                ^ fnv1a(site)
                ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ 0x57A7_1C0D_E57A_71C0,
        );
        let u = uniform(raw);
        let net = &self.cfg.net;
        let mut edge = 0.0;
        let mut hits = |p: f64| {
            edge += p;
            u < edge
        };
        let fault = if hits(net.p_drop) {
            NetFault::Drop
        } else if hits(net.p_delay) {
            let frac = uniform(splitmix(raw ^ 0xD31A));
            NetFault::Delay(net.max_delay.mul_f64(frac))
        } else if hits(net.p_duplicate) {
            NetFault::Duplicate
        } else if hits(net.p_truncate) {
            NetFault::Truncate
        } else if hits(net.p_partition) {
            if net.partition_visits > 0 {
                self.partition_left
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(site.to_owned(), net.partition_visits);
            }
            NetFault::Partition
        } else {
            return None;
        };
        self.net_injected[fault.kind_index()].fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    /// Imposes a manual one-way partition: every subsequent visit of
    /// `site` draws [`NetFault::Partition`] until [`heal`] is called.
    /// Partitioning only one direction (`…send` or `…recv`) is exactly
    /// the asymmetric failure TCP keeps alive and health checks must
    /// catch.
    ///
    /// [`heal`]: FaultPlan::heal
    pub fn partition(&self, site: &str) {
        self.partitioned
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(site.to_owned());
    }

    /// Lifts a manual partition on `site` (and any probabilistic
    /// partition window in progress there).
    pub fn heal(&self, site: &str) {
        self.partitioned
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(site);
        self.partition_left
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(site);
    }

    /// Total network faults injected so far, all kinds.
    pub fn net_injected_total(&self) -> u64 {
        self.net_injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Network faults of one kind injected so far (`Delay`'s duration
    /// is ignored for matching).
    pub fn net_injected_of(&self, kind: NetFault) -> u64 {
        self.net_injected[kind.kind_index()].load(Ordering::Relaxed)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(raw: u64) -> f64 {
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------
// Process-global installation.

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static REGISTRY: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

/// Installs `plan` process-globally; replaces any previous plan.
pub fn install(plan: Arc<FaultPlan>) {
    *registry().lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed plan; injection sites return to the
/// single-atomic-load fast path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *registry().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// True iff a plan is installed. One relaxed load — this is the hot-path
/// guard call sites use before doing any per-site work (such as
/// formatting a site name).
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The currently installed plan, if any.
pub fn current() -> Option<Arc<FaultPlan>> {
    if !enabled() {
        return None;
    }
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Total faults injected by the installed plan (0 when none).
pub fn injected_total() -> u64 {
    current().map_or(0, |p| p.injected_total())
}

/// Uninstalls the plan when dropped — keeps a panicking test from
/// leaking chaos into the rest of the process.
#[derive(Debug)]
pub struct InstallGuard(());

/// Installs `plan` and returns a guard that [`clear`]s it on drop.
#[must_use = "dropping the guard immediately uninstalls the plan"]
pub fn install_guarded(plan: Arc<FaultPlan>) -> InstallGuard {
    install(plan);
    InstallGuard(())
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Consults the plan at `site`, handling panics and delays in place.
///
/// With no plan installed this is one relaxed atomic load. Otherwise:
/// `Panic` faults panic right here (the caller's containment layer must
/// absorb it), `Delay` sleeps and continues, `Cancel` cancels `token`
/// (if one was passed) and continues, and `Fail` is returned as
/// [`Verdict::Fail`] for the caller to act on.
#[inline]
pub fn inject(site: &str, token: Option<&CancelToken>) -> Verdict {
    if !enabled() {
        return Verdict::Continue;
    }
    inject_slow(site, token)
}

/// Consults the plan for a network fault at `site` (a `peer.link.*`
/// site). Unlike [`inject`], nothing is handled in place: the caller
/// owns the frame and must act on the returned fault — including
/// sleeping out a [`NetFault::Delay`] at whatever point in its I/O
/// path models the stall best. With no plan installed this is one
/// relaxed atomic load and returns `None`.
#[inline]
pub fn inject_net(site: &str) -> Option<NetFault> {
    if !enabled() {
        return None;
    }
    inject_net_slow(site)
}

#[cold]
fn inject_net_slow(site: &str) -> Option<NetFault> {
    current()?.decide_net(site)
}

#[cold]
fn inject_slow(site: &str, token: Option<&CancelToken>) -> Verdict {
    let Some(plan) = current() else {
        return Verdict::Continue;
    };
    match plan.decide(site) {
        None => Verdict::Continue,
        Some(Fault::Panic) => panic!("altx-faults: injected panic at {site}"),
        Some(Fault::Delay(d)) => {
            std::thread::sleep(d);
            Verdict::Continue
        }
        Some(Fault::Cancel) => {
            if let Some(t) = token {
                t.cancel();
            }
            Verdict::Continue
        }
        Some(Fault::Fail) => Verdict::Fail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let plan = FaultPlan::new(FaultConfig::quiet(7));
        for _ in 0..500 {
            assert_eq!(plan.decide("engine.alt.x"), None);
        }
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_site() {
        let a = FaultPlan::new(FaultConfig::chaos(42));
        let b = FaultPlan::new(FaultConfig::chaos(42));
        let seq_a: Vec<_> = (0..200).map(|_| a.decide("pool.job")).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.decide("pool.job")).collect();
        assert_eq!(seq_a, seq_b);

        let c = FaultPlan::new(FaultConfig::chaos(43));
        let seq_c: Vec<_> = (0..200).map(|_| c.decide("pool.job")).collect();
        assert_ne!(seq_a, seq_c, "different seed, different stream");
    }

    #[test]
    fn sites_have_independent_streams() {
        let plan = FaultPlan::new(FaultConfig::chaos(9));
        let s1: Vec<_> = (0..100).map(|_| plan.decide("site.one")).collect();
        let plan2 = FaultPlan::new(FaultConfig::chaos(9));
        let s2: Vec<_> = (0..100).map(|_| plan2.decide("site.two")).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn injection_rate_tracks_configured_probability() {
        let plan = FaultPlan::new(FaultConfig::chaos(1));
        let fired = (0..2000).filter(|_| plan.decide("rate").is_some()).count();
        // chaos() totals 0.30; allow generous slack.
        assert!((400..800).contains(&fired), "fired {fired} of 2000");
        assert_eq!(plan.injected_total(), fired as u64);
    }

    #[test]
    fn per_kind_counters_sum_to_total() {
        let plan = FaultPlan::new(FaultConfig::chaos(5));
        for _ in 0..1000 {
            let _ = plan.decide("kinds");
        }
        let by_kind = plan.injected_of(Fault::Panic)
            + plan.injected_of(Fault::Delay(Duration::ZERO))
            + plan.injected_of(Fault::Cancel)
            + plan.injected_of(Fault::Fail);
        assert_eq!(by_kind, plan.injected_total());
        assert!(plan.injected_of(Fault::Panic) > 0);
        assert!(plan.injected_of(Fault::Fail) > 0);
    }

    #[test]
    fn delays_respect_max_delay() {
        let mut cfg = FaultConfig::quiet(3);
        cfg.p_delay = 1.0;
        cfg.max_delay = Duration::from_millis(7);
        let plan = FaultPlan::new(cfg);
        for _ in 0..100 {
            match plan.decide("delays") {
                Some(Fault::Delay(d)) => assert!(d <= Duration::from_millis(7)),
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn net_quiet_never_fires() {
        let plan = FaultPlan::new(FaultConfig::quiet(7));
        for _ in 0..500 {
            assert_eq!(plan.decide_net("peer.link.a:1.send"), None);
        }
        assert_eq!(plan.net_injected_total(), 0);
    }

    #[test]
    fn net_streams_are_deterministic_and_independent_of_process_streams() {
        let a = FaultPlan::new(FaultConfig::net_chaos(42));
        let b = FaultPlan::new(FaultConfig::net_chaos(42));
        let site = "peer.link.10.0.0.1:7171.recv";
        let seq_a: Vec<_> = (0..300).map(|_| a.decide_net(site)).collect();
        let seq_b: Vec<_> = (0..300).map(|_| b.decide_net(site)).collect();
        assert_eq!(seq_a, seq_b);

        let c = FaultPlan::new(FaultConfig::net_chaos(43));
        let seq_c: Vec<_> = (0..300).map(|_| c.decide_net(site)).collect();
        assert_ne!(seq_a, seq_c, "different seed, different wire stream");

        // Process faults at the same site name draw from a salted
        // stream and — under net_chaos — never fire at all.
        assert_eq!(a.decide(site), None);
    }

    #[test]
    fn net_injection_rate_tracks_configured_probability() {
        let plan = FaultPlan::new(FaultConfig::net_chaos(1));
        let mut fired = 0usize;
        for _ in 0..4000 {
            if plan.decide_net("rate").is_some() {
                fired += 1;
            }
        }
        // chaos() totals ~0.107, and each partition draw swallows 20
        // more visits; allow generous slack around that inflation.
        assert!((200..1600).contains(&fired), "fired {fired} of 4000");
        assert_eq!(plan.net_injected_total(), fired as u64);
        let by_kind = plan.net_injected_of(NetFault::Drop)
            + plan.net_injected_of(NetFault::Delay(Duration::ZERO))
            + plan.net_injected_of(NetFault::Duplicate)
            + plan.net_injected_of(NetFault::Truncate)
            + plan.net_injected_of(NetFault::Partition);
        assert_eq!(by_kind, plan.net_injected_total());
        assert!(plan.net_injected_of(NetFault::Drop) > 0);
        assert!(plan.net_injected_of(NetFault::Duplicate) > 0);
    }

    #[test]
    fn manual_partition_swallows_everything_until_healed() {
        let plan = FaultPlan::new(FaultConfig::quiet(3));
        let site = "peer.link.b:2.recv";
        assert_eq!(plan.decide_net(site), None);
        plan.partition(site);
        for _ in 0..50 {
            assert_eq!(plan.decide_net(site), Some(NetFault::Partition));
        }
        // The other direction is untouched: the partition is one-way.
        assert_eq!(plan.decide_net("peer.link.b:2.send"), None);
        plan.heal(site);
        assert_eq!(plan.decide_net(site), None);
        assert_eq!(plan.net_injected_of(NetFault::Partition), 50);
    }

    #[test]
    fn probabilistic_partition_has_duration() {
        let mut cfg = FaultConfig::quiet(9);
        cfg.net.p_partition = 1.0;
        cfg.net.partition_visits = 5;
        let plan = FaultPlan::new(cfg);
        // First visit starts the window; the next 5 are swallowed by it
        // (without consuming the site's draw stream), then the stream
        // immediately starts another window.
        for i in 0..12 {
            assert_eq!(
                plan.decide_net("peer.link.c:3.send"),
                Some(NetFault::Partition),
                "visit {i}"
            );
        }
    }

    // The install/clear global is exercised in one test to avoid
    // cross-test interference inside this binary.
    #[test]
    fn global_install_roundtrip() {
        assert_eq!(inject("nothing.installed", None), Verdict::Continue);
        assert_eq!(injected_total(), 0);

        let mut cfg = FaultConfig::quiet(11);
        cfg.p_fail = 1.0;
        {
            let _guard = install_guarded(FaultPlan::new(cfg));
            assert!(enabled());
            assert_eq!(inject("always.fails", None), Verdict::Fail);
            assert!(injected_total() >= 1);

            let mut cancel_cfg = FaultConfig::quiet(12);
            cancel_cfg.p_cancel = 1.0;
            install(FaultPlan::new(cancel_cfg));
            let token = CancelToken::new();
            assert_eq!(inject("always.cancels", Some(&token)), Verdict::Continue);
            assert!(token.is_cancelled(), "cancel fault fired the token");
        }
        assert!(!enabled(), "guard uninstalls on drop");
        assert!(current().is_none());
    }
}
