//! # altx — transparent concurrent execution of mutually exclusive alternatives
//!
//! A Rust reproduction of Jonathan M. Smith and Gerald Q. Maguire Jr.,
//! *Transparent Concurrent Execution of Mutually Exclusive Alternatives*
//! (ICDCS 1989): given several alternative methods of computing one
//! result, race them speculatively, keep the **first** whose guard holds,
//! and eliminate the rest — while an observer sees exactly the semantics
//! of a nondeterministic *sequential* selection.
//!
//! ## The pieces
//!
//! * [`AltBlock`] — the `ALTBEGIN … END` construct (Figure 1): a list of
//!   guarded alternatives over a copy-on-write [`AddressSpace`] workspace.
//! * [`engine`] — interchangeable execution strategies with identical
//!   observable semantics:
//!   - [`engine::OrderedEngine`] — sequential, first listed alternative
//!     that succeeds (recovery-block style, with rollback);
//!   - [`engine::RandomEngine`] — the paper's *Scheme B* baseline:
//!     arbitrary selection of a single alternative;
//!   - [`engine::ThreadedEngine`] — *Scheme C*: real OS threads racing on
//!     COW forks of the workspace, fastest first;
//!   - [`engine::sim`] — the same race on the deterministic simulated
//!     kernel (`altx-kernel`) with 1989-calibrated costs, for the paper's
//!     quantitative experiments.
//! * [`perf`] — the §4.2 analytic model: performance improvement
//!   `PI = τ(C_mean) / (τ(C_best) + τ(overhead))`, the worked table, the
//!   win condition, and the dispersion analysis.
//!
//! ## Quickstart
//!
//! ```
//! use altx::engine::ThreadedEngine;
//! use altx::{AltBlock, Engine};
//! use altx_pager::{AddressSpace, PageSize};
//!
//! // Two ways to compute the same answer; either may win.
//! let block: AltBlock<u64> = AltBlock::new()
//!     .alternative("iterative", |_ws, _cancel| Some((1..=10u64).product()))
//!     .alternative("closed-form", |_ws, _cancel| Some(3628800));
//!
//! let mut workspace = AddressSpace::zeroed(4096, PageSize::K4);
//! let result = ThreadedEngine::new().execute(&block, &mut workspace);
//! assert_eq!(result.value, Some(3628800));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cancel;
pub mod engine;
pub mod faults;
#[macro_use]
pub mod macros;
pub mod pad;
pub mod perf;
pub mod stats;
pub mod sync;

pub use block::{AltBlock, BlockResult};
pub use cancel::CancelToken;
pub use engine::Engine;
pub use pad::CachePadded;

// Re-export the substrate types that appear in this crate's public API.
pub use altx_pager::{AddressSpace, MachineProfile, PageSize};
