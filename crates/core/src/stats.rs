//! Shared per-alternative statistics.
//!
//! `AltStatsTable` is the online record behind Scheme A (§4.2): for every
//! alternative of a block it tracks how often it ran, how often it won a
//! race, how often it failed its guard, an EWMA of its observed latency,
//! and a coarse latency histogram good enough to answer quantile queries
//! (the hedging policy wants "the favourite's p95").
//!
//! The table is lock-cheap by design: every slot is a bundle of atomics,
//! and the only lock is an `RwLock` around the slot vector that is taken
//! in read mode on the record path (uncontended unless the table is
//! growing). `AdaptiveEngine` and the serving layer's `HedgePolicy` both
//! sit on top of this type.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Smoothing factor for the latency EWMA. High enough to adapt within a
/// few tens of observations, low enough not to chase single outliers.
const EWMA_ALPHA: f64 = 0.2;

/// Number of power-of-two latency buckets. Bucket `k` covers
/// `[2^(k-1), 2^k)` microseconds; bucket 31 absorbs everything slower
/// (~36 minutes), bucket 0 holds sub-microsecond observations.
const BUCKETS: usize = 32;

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        return 0;
    }
    let k = 64 - u64::leading_zeros(us) as usize;
    k.min(BUCKETS - 1)
}

/// One alternative's statistics. All fields are atomics so the record
/// path never blocks a concurrent reader (or another recorder). Cells
/// are stored cache-line padded ([`CachePadded`]) in the table: two
/// workers recording wins for *different* alternatives must not fight
/// over one line.
#[derive(Debug, Default)]
struct AltStat {
    runs: AtomicU64,
    wins: AtomicU64,
    failures: AtomicU64,
    /// EWMA of observed latency in microseconds, stored as `f64` bits.
    /// Zero means "no observation yet" (a true 0.0 EWMA is indistinguishable
    /// from unset, which is fine: both mean "treat as instant").
    ewma_us_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl AltStat {
    fn observe_latency(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        let sample = us as f64;
        let mut cur = self.ewma_us_bits.load(Ordering::Relaxed);
        loop {
            let prev = f64::from_bits(cur);
            let next = if self.runs.load(Ordering::Relaxed) == 0 {
                sample
            } else {
                prev + EWMA_ALPHA * (sample - prev)
            };
            match self.ewma_us_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A point-in-time copy of one alternative's statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AltStatSnapshot {
    /// Completed runs (wins, losses, and failures alike).
    pub runs: u64,
    /// Races this alternative won.
    pub wins: u64,
    /// Runs that failed their guard (or panicked, contained).
    pub failures: u64,
    /// EWMA latency in microseconds; `None` until the first observation.
    pub ewma_us: Option<f64>,
}

/// Growable table of per-alternative statistics. See module docs.
#[derive(Debug, Default)]
pub struct AltStatsTable {
    slots: RwLock<Vec<Arc<CachePadded<AltStat>>>>,
}

impl AltStatsTable {
    /// An empty table; it grows on demand via [`AltStatsTable::ensure`].
    pub fn new() -> Self {
        Self::with_len(0)
    }

    /// A table pre-sized for `n` alternatives.
    pub fn with_len(n: usize) -> Self {
        let table = AltStatsTable {
            slots: RwLock::new(Vec::new()),
        };
        table.ensure(n);
        table
    }

    /// Grow the table so indices `0..n` are valid. Cheap no-op when the
    /// table is already large enough (read lock only).
    pub fn ensure(&self, n: usize) {
        if self.slots.read().map(|s| s.len()).unwrap_or(0) >= n {
            return;
        }
        if let Ok(mut slots) = self.slots.write() {
            while slots.len() < n {
                slots.push(Arc::new(CachePadded::new(AltStat::default())));
            }
        }
    }

    /// Number of alternatives the table currently covers.
    pub fn len(&self) -> usize {
        self.slots.read().map(|s| s.len()).unwrap_or(0)
    }

    /// True when the table covers no alternatives yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot(&self, i: usize) -> Option<Arc<CachePadded<AltStat>>> {
        self.slots.read().ok().and_then(|s| s.get(i).cloned())
    }

    /// Record one completed run of alternative `i`: latency is folded into
    /// the EWMA and histogram, `failed` bumps the failure count (a failed
    /// guard or a contained panic — the run happened either way).
    pub fn record_run(&self, i: usize, latency_us: u64, failed: bool) {
        self.ensure(i + 1);
        if let Some(slot) = self.slot(i) {
            slot.observe_latency(latency_us);
            slot.runs.fetch_add(1, Ordering::Relaxed);
            if failed {
                slot.failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record that alternative `i` won a race in `latency_us`. Implies a
    /// successful run.
    pub fn record_win(&self, i: usize, latency_us: u64) {
        self.record_run(i, latency_us, false);
        if let Some(slot) = self.slot(i) {
            slot.wins.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Completed runs recorded for alternative `i` (0 when out of range).
    pub fn runs(&self, i: usize) -> u64 {
        self.slot(i).map_or(0, |s| s.runs.load(Ordering::Relaxed))
    }

    /// Race wins recorded for alternative `i` (0 when out of range).
    pub fn wins(&self, i: usize) -> u64 {
        self.slot(i).map_or(0, |s| s.wins.load(Ordering::Relaxed))
    }

    /// Failed runs recorded for alternative `i` (0 when out of range).
    pub fn failures(&self, i: usize) -> u64 {
        self.slot(i)
            .map_or(0, |s| s.failures.load(Ordering::Relaxed))
    }

    /// EWMA latency of alternative `i` in microseconds, or `None` if it
    /// has never been observed.
    pub fn ewma_us(&self, i: usize) -> Option<f64> {
        let slot = self.slot(i)?;
        if slot.runs.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(f64::from_bits(slot.ewma_us_bits.load(Ordering::Relaxed)))
    }

    /// Sum of wins across all alternatives.
    pub fn total_wins(&self) -> u64 {
        (0..self.len()).map(|i| self.wins(i)).sum()
    }

    /// Sum of recorded runs across all alternatives.
    pub fn total_runs(&self) -> u64 {
        (0..self.len()).map(|i| self.runs(i)).sum()
    }

    /// The alternative with the most wins, or `None` if nothing has won
    /// yet. Ties break toward the lower EWMA latency.
    pub fn favourite(&self) -> Option<usize> {
        let mut best: Option<(usize, u64, f64)> = None;
        for i in 0..self.len() {
            let wins = self.wins(i);
            if wins == 0 {
                continue;
            }
            let ewma = self.ewma_us(i).unwrap_or(f64::INFINITY);
            let better = match best {
                None => true,
                Some((_, bw, be)) => wins > bw || (wins == bw && ewma < be),
            };
            if better {
                best = Some((i, wins, ewma));
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// Approximate latency quantile (`0.0..=1.0`) for alternative `i`, in
    /// microseconds. Resolution is the power-of-two bucket upper bound, so
    /// answers are within a factor of two of the true quantile — plenty
    /// for picking a hedge delay. Returns `None` with no observations.
    pub fn quantile_us(&self, i: usize, q: f64) -> Option<u64> {
        let slot = self.slot(i)?;
        let counts: Vec<u64> = slot
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(if k == 0 { 1 } else { 1u64 << k });
            }
        }
        Some(1u64 << (BUCKETS - 1))
    }

    /// Point-in-time copy of alternative `i`'s statistics.
    pub fn snapshot(&self, i: usize) -> AltStatSnapshot {
        AltStatSnapshot {
            runs: self.runs(i),
            wins: self.wins(i),
            failures: self.failures(i),
            ewma_us: self.ewma_us(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_answers_zeroes() {
        let t = AltStatsTable::new();
        assert_eq!(t.len(), 0);
        assert_eq!(t.runs(3), 0);
        assert_eq!(t.wins(3), 0);
        assert_eq!(t.ewma_us(3), None);
        assert_eq!(t.quantile_us(3, 0.95), None);
        assert_eq!(t.favourite(), None);
    }

    #[test]
    fn record_run_grows_and_counts() {
        let t = AltStatsTable::new();
        t.record_run(2, 100, false);
        t.record_run(2, 300, true);
        assert_eq!(t.len(), 3);
        assert_eq!(t.runs(2), 2);
        assert_eq!(t.failures(2), 1);
        let ewma = t.ewma_us(2).expect("observed");
        assert!(ewma > 100.0 && ewma < 300.0, "ewma {ewma} between samples");
    }

    #[test]
    fn wins_pick_the_favourite_with_latency_tiebreak() {
        let t = AltStatsTable::with_len(3);
        t.record_win(0, 500);
        t.record_win(2, 50);
        t.record_win(2, 50);
        assert_eq!(t.favourite(), Some(2));
        // Tie on wins: the faster alternative is favoured.
        t.record_win(0, 500);
        assert_eq!(t.favourite(), Some(2));
        assert_eq!(t.total_wins(), 4);
    }

    #[test]
    fn quantile_tracks_the_tail() {
        let t = AltStatsTable::with_len(1);
        // 95 fast observations, 5 slow ones an order of magnitude out.
        for _ in 0..95 {
            t.record_run(0, 1_000, false);
        }
        for _ in 0..5 {
            t.record_run(0, 60_000, false);
        }
        let p50 = t.quantile_us(0, 0.50).expect("observed");
        let p99 = t.quantile_us(0, 0.99).expect("observed");
        assert!(p50 <= 2_048, "p50 {p50} in the fast bucket");
        assert!(p99 >= 32_768, "p99 {p99} reaches the slow tail");
    }

    #[test]
    fn ewma_converges_toward_recent_samples() {
        let t = AltStatsTable::with_len(1);
        for _ in 0..50 {
            t.record_run(0, 10_000, false);
        }
        for _ in 0..50 {
            t.record_run(0, 1_000, false);
        }
        let ewma = t.ewma_us(0).expect("observed");
        assert!(ewma < 2_000.0, "ewma {ewma} tracked the recent regime");
    }

    #[test]
    fn bucket_of_is_monotone() {
        let mut prev = 0;
        for us in [0u64, 1, 2, 3, 7, 8, 1_000, 65_535, u64::MAX] {
            let b = bucket_of(us);
            assert!(b >= prev, "bucket_of({us}) = {b} not monotone");
            assert!(b < BUCKETS);
            prev = b;
        }
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let t = std::sync::Arc::new(AltStatsTable::with_len(2));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        t.record_win(0, 100);
                        t.record_run(1, 200, true);
                    }
                });
            }
        });
        assert_eq!(t.wins(0), 4_000);
        assert_eq!(t.runs(0), 4_000);
        assert_eq!(t.runs(1), 4_000);
        assert_eq!(t.failures(1), 4_000);
    }
}
