//! Cooperative cancellation for racing alternatives.
//!
//! Sibling elimination (§3.2.1) for real threads: Rust cannot safely kill
//! a thread, so losing alternatives are *asked* to stop via a shared
//! [`CancelToken`] that well-behaved bodies poll. The token is cheap
//! enough to check inside inner loops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning shares the underlying flag.
///
/// # Example
///
/// ```
/// use altx::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// assert_eq!(observer.checkpoint(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates an un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True iff cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// `Some(())` while running, `None` once cancelled — lets bodies bail
    /// out of loops with `token.checkpoint()?`.
    pub fn checkpoint(&self) -> Option<()> {
        (!self.is_cancelled()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Some(()));
    }

    #[test]
    fn cancel_is_shared_and_idempotent() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(u.checkpoint(), None);
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        let handle = std::thread::spawn(move || {
            while !u.is_cancelled() {
                std::hint::spin_loop();
            }
            true
        });
        t.cancel();
        assert!(handle.join().expect("thread joins"));
    }
}
