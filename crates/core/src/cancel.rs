//! Cooperative cancellation and deadlines for racing alternatives.
//!
//! Sibling elimination (§3.2.1) for real threads: Rust cannot safely kill
//! a thread, so losing alternatives are *asked* to stop via a shared
//! [`CancelToken`] that well-behaved bodies poll. The token is cheap
//! enough to check inside inner loops.
//!
//! A token may additionally carry a **deadline** — the real-time analogue
//! of the paper's `alt_wait(timeout)`: once the deadline passes, every
//! observer of the token sees it as cancelled, so a race whose budget is
//! blown converts into an explicit failure instead of a late answer.
//! [`CancelToken::deadline_expired`] distinguishes "lost the race" from
//! "ran out of time", which `altx-serve` maps to its `DeadlineExceeded`
//! reply.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag, optionally with a deadline. Cloning
/// shares the underlying flag (and deadline).
///
/// # Example
///
/// ```
/// use altx::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// assert_eq!(observer.checkpoint(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// Creates an un-cancelled token with no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Creates a token that auto-cancels once `budget` has elapsed
    /// (measured from now).
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Creates a token that auto-cancels at `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time remaining until the deadline (`None` if no deadline; zero if
    /// already past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True iff the deadline (if any) has passed.
    ///
    /// Independent of [`cancel`](Self::cancel): a race that was decided
    /// before its budget ran out has `is_cancelled() == true` but
    /// `deadline_expired() == false`.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True iff cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline_expired()
    }

    /// `Some(())` while running, `None` once cancelled — lets bodies bail
    /// out of loops with `token.checkpoint()?`.
    pub fn checkpoint(&self) -> Option<()> {
        (!self.is_cancelled()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Some(()));
        assert!(t.deadline().is_none());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn cancel_is_shared_and_idempotent() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(u.checkpoint(), None);
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        let handle = std::thread::spawn(move || {
            while !u.is_cancelled() {
                std::hint::spin_loop();
            }
            true
        });
        t.cancel();
        assert!(handle.join().expect("thread joins"));
    }

    #[test]
    fn deadline_expiry_cancels_all_clones() {
        let t = CancelToken::with_deadline(Duration::from_millis(10));
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.deadline_expired());
        assert!(u.is_cancelled(), "clone observes the shared deadline");
        assert_eq!(u.checkpoint(), None);
    }

    #[test]
    fn explicit_cancel_does_not_claim_expiry() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!t.deadline_expired(), "won race != blown budget");
    }

    #[test]
    fn remaining_counts_down() {
        let t = CancelToken::with_deadline(Duration::from_millis(50));
        let first = t.remaining().expect("has deadline");
        assert!(first <= Duration::from_millis(50));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn deadline_at_absolute_instant() {
        let t = CancelToken::with_deadline_at(Instant::now());
        assert!(t.is_cancelled());
        assert!(t.deadline_expired());
    }

    #[test]
    fn deadline_in_the_past_expires_immediately() {
        let past = Instant::now()
            .checked_sub(Duration::from_secs(60))
            .unwrap_or_else(Instant::now);
        let t = CancelToken::with_deadline_at(past);
        assert!(t.deadline_expired(), "a past deadline is already blown");
        assert!(t.is_cancelled());
        assert_eq!(t.checkpoint(), None);
        assert_eq!(
            t.remaining(),
            Some(Duration::ZERO),
            "remaining saturates, never underflows"
        );
        // A zero-budget relative deadline behaves the same way.
        let z = CancelToken::with_deadline(Duration::ZERO);
        assert!(z.is_cancelled());
        assert_eq!(z.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn checkpoint_after_cancel_stays_none() {
        let t = CancelToken::new();
        assert_eq!(t.checkpoint(), Some(()));
        t.cancel();
        assert_eq!(t.checkpoint(), None);
        // Cancellation is sticky: repeated polls and repeated cancels
        // never resurrect the token.
        t.cancel();
        assert_eq!(t.checkpoint(), None);
        assert_eq!(t.clone().checkpoint(), None, "clones see it too");
    }

    #[test]
    fn remaining_saturates_at_zero_far_past_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(15));
        // Repeated reads long after expiry keep returning exactly zero.
        for _ in 0..3 {
            assert_eq!(t.remaining(), Some(Duration::ZERO));
        }
        assert!(t.deadline_expired());
    }
}
