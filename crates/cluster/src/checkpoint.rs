//! Process-image checkpointing.
//!
//! Smith & Ioannidis's `rfork()` worked "by dumping the state of the
//! process into a file in such a way that the file is executable; a
//! bootstrapping routine restores the registers and data segments and
//! returns control to the caller of the checkpoint routine when this
//! file is executed" (§4.4's footnote).
//!
//! [`Checkpoint`] is that file for an [`AddressSpace`]: a self-contained
//! byte image with a sparse page-granular encoding (all-zero and
//! unmapped pages cost only a header entry, matching how a real dump
//! skips untouched pages). [`Checkpoint::restore`] reconstructs a
//! byte-identical address space. The encoded size feeds the
//! [`RemoteForkModel`](crate::RemoteForkModel) so rfork costs are driven
//! by the *actual* image, not an assumed constant.
//!
//! ## Format
//!
//! ```text
//! magic  u32  "ALTX"
//! page_size  u32
//! page_count u32
//! entries    u32          number of stored (non-zero) pages
//! entries × { index u32, page_size bytes }
//! ```

use altx_pager::{AddressSpace, Page, PageIndex, PageSize};
use std::fmt;
use std::sync::Arc;

const MAGIC: u32 = 0x414C_5458; // "ALTX"

/// A serialized process image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    bytes: Vec<u8>,
}

/// Error restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// What was malformed.
    pub message: String,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt checkpoint: {}", self.message)
    }
}

impl std::error::Error for RestoreError {}

impl Checkpoint {
    /// Dumps an address space to a self-contained image. Unmapped and
    /// all-zero pages are elided (sparse encoding).
    pub fn capture(space: &AddressSpace) -> Checkpoint {
        let page_size = space.page_size();
        let stored: Vec<(usize, &[u8])> = space
            .map()
            .iter()
            .filter(|(_, page)| !page.is_zero())
            .map(|(idx, page)| (idx.0, page.as_bytes()))
            .collect();

        let mut bytes = Vec::with_capacity(16 + stored.len() * (4 + page_size.bytes()));
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&(page_size.bytes() as u32).to_le_bytes());
        bytes.extend_from_slice(&(space.page_count() as u32).to_le_bytes());
        bytes.extend_from_slice(&(stored.len() as u32).to_le_bytes());
        for (idx, data) in stored {
            bytes.extend_from_slice(&(idx as u32).to_le_bytes());
            bytes.extend_from_slice(data);
        }
        Checkpoint { bytes }
    }

    /// The encoded image size in bytes — the quantity rfork ships.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True iff the image holds no pages (header only).
    pub fn is_empty(&self) -> bool {
        self.len() <= 16
    }

    /// The raw encoded image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parses an image captured elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the bytes are not a valid image.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Checkpoint, RestoreError> {
        let cp = Checkpoint { bytes };
        cp.restore()?; // validate eagerly
        Ok(cp)
    }

    /// Reconstructs the address space ("the bootstrapping routine
    /// restores the … data segments").
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] on a malformed image.
    pub fn restore(&self) -> Result<AddressSpace, RestoreError> {
        let b = &self.bytes;
        let err = |message: &str| RestoreError {
            message: message.to_string(),
        };
        let u32_at = |off: usize| -> Result<u32, RestoreError> {
            b.get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
                .ok_or_else(|| err("truncated header"))
        };
        if u32_at(0)? != MAGIC {
            return Err(err("bad magic"));
        }
        let page_bytes = u32_at(4)? as usize;
        if page_bytes == 0 {
            return Err(err("zero page size"));
        }
        // Resource caps: an untrusted header must not be able to demand
        // an enormous allocation before its page data is validated.
        if page_bytes > 1 << 24 {
            return Err(err("implausible page size"));
        }
        let page_size = PageSize::new(page_bytes);
        let page_count = u32_at(8)? as usize;
        if page_count.saturating_mul(page_bytes) > 1 << 32 {
            return Err(err("implausible address-space size"));
        }
        let entries = u32_at(12)? as usize;
        if entries > page_count {
            return Err(err("more entries than pages"));
        }
        // Each entry needs 4 + page_bytes bytes of payload.
        if b.len() < 16 + entries.saturating_mul(4 + page_bytes) {
            return Err(err("truncated page data"));
        }

        let mut space = AddressSpace::zeroed(page_count * page_bytes, page_size);
        let mut off = 16;
        let mut map = space.map().clone();
        for _ in 0..entries {
            let idx = u32_at(off)? as usize;
            off += 4;
            if idx >= page_count {
                return Err(err("page index out of range"));
            }
            let data = b
                .get(off..off + page_bytes)
                .ok_or_else(|| err("truncated page data"))?;
            off += page_bytes;
            map.map_page(PageIndex(idx), Arc::new(Page::from_bytes(page_size, data)));
        }
        if off != b.len() {
            return Err(err("trailing bytes"));
        }
        space = AddressSpace::from_map(map);
        Ok(space)
    }

    /// Convenience: rfork cost of shipping *this* image under `model`
    /// (observed variant).
    pub fn rfork_time(&self, model: &crate::RemoteForkModel) -> altx_des::SimDuration {
        model.observed_time(self.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RemoteForkModel;

    fn sample_space() -> AddressSpace {
        let mut s = AddressSpace::zeroed(1024, PageSize::new(64));
        s.write(0, b"first page");
        s.write(200, &[7u8; 100]);
        s.write(1000, b"tail");
        s
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let original = sample_space();
        let cp = Checkpoint::capture(&original);
        let restored = cp.restore().expect("valid image");
        assert_eq!(original.flatten(), restored.flatten());
        assert_eq!(original.page_size(), restored.page_size());
        assert_eq!(original.page_count(), restored.page_count());
    }

    #[test]
    fn sparse_encoding_skips_zero_pages() {
        let mut dense = AddressSpace::zeroed(64 * 64, PageSize::new(64));
        dense.touch_pages(0, 64, 1);
        let mut sparse = AddressSpace::zeroed(64 * 64, PageSize::new(64));
        sparse.write(0, &[1]);
        let cp_dense = Checkpoint::capture(&dense);
        let cp_sparse = Checkpoint::capture(&sparse);
        assert!(cp_sparse.len() < cp_dense.len() / 10);
        assert_eq!(
            cp_sparse.restore().expect("valid").flatten(),
            sparse.flatten()
        );
    }

    #[test]
    fn empty_space_is_header_only() {
        let cp = Checkpoint::capture(&AddressSpace::zeroed(4096, PageSize::new(64)));
        assert!(cp.is_empty());
        assert_eq!(cp.len(), 16);
    }

    #[test]
    fn cow_forks_checkpoint_identically() {
        let parent = sample_space();
        let child = parent.cow_fork();
        assert_eq!(
            Checkpoint::capture(&parent).as_bytes(),
            Checkpoint::capture(&child).as_bytes()
        );
    }

    #[test]
    fn from_bytes_validates() {
        let cp = Checkpoint::capture(&sample_space());
        let ok = Checkpoint::from_bytes(cp.as_bytes().to_vec()).expect("valid");
        assert_eq!(ok, cp);
        assert!(Checkpoint::from_bytes(vec![1, 2, 3]).is_err());
        let mut bad_magic = cp.as_bytes().to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(bad_magic).is_err());
        let mut truncated = cp.as_bytes().to_vec();
        truncated.pop();
        assert!(Checkpoint::from_bytes(truncated).is_err());
        let mut trailing = cp.as_bytes().to_vec();
        trailing.push(0);
        assert!(Checkpoint::from_bytes(trailing).is_err());
    }

    #[test]
    fn corrupt_page_index_rejected() {
        let mut s = AddressSpace::zeroed(128, PageSize::new(64));
        s.write(0, &[9]);
        let mut bytes = Checkpoint::capture(&s).as_bytes().to_vec();
        // First entry's index field is at offset 16; point it past the
        // page count.
        bytes[16..20].copy_from_slice(&99u32.to_le_bytes());
        assert!(Checkpoint::from_bytes(bytes).is_err());
    }

    #[test]
    fn rfork_cost_tracks_real_image_size() {
        let model = RemoteForkModel::calibrated_1989();
        let mut small = AddressSpace::zeroed(70 * 1024, PageSize::K2);
        small.write(0, &[1]);
        let mut big = AddressSpace::zeroed(70 * 1024, PageSize::K2);
        big.touch_pages(0, 35, 1);
        let t_small = Checkpoint::capture(&small).rfork_time(&model);
        let t_big = Checkpoint::capture(&big).rfork_time(&model);
        assert!(t_big > t_small * 5, "{t_small} vs {t_big}");
    }

    #[test]
    fn paper_70k_image_costs_what_the_paper_says() {
        // A fully resident 70K process image, checkpointed for real,
        // shipped under the calibrated model.
        let mut space = AddressSpace::zeroed(70 * 1024, PageSize::K2);
        space.touch_pages(0, 35, 0xAB);
        let cp = Checkpoint::capture(&space);
        assert!(cp.len() >= 70 * 1024, "resident image at least 70K");
        let t = cp
            .rfork_time(&RemoteForkModel::calibrated_1989())
            .as_secs_f64();
        assert!(
            (1.1..1.5).contains(&t),
            "observed {t}s for {} bytes",
            cp.len()
        );
    }
}
