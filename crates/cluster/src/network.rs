//! Network cost model.
//!
//! A simple latency + bandwidth model with a multiplicative delay factor
//! standing in for queueing, protocol, and file-server time — the paper's
//! "network delays" that inflated a ~1 s rfork service time to an observed
//! ~1.3 s average.

use altx_des::SimDuration;

/// Latency/bandwidth network model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// One-way per-message latency.
    pub latency: SimDuration,
    /// Sustained transfer bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: u64,
    /// Multiplier ≥ 1 applied to transfer time, modeling queueing and
    /// protocol overhead under load.
    pub delay_factor: f64,
}

impl NetworkModel {
    /// A 1989-vintage 10 Mb/s Ethernet with NFS-ish effective throughput:
    /// 500 µs latency, ~800 KB/s effective bandwidth, 1.35× delay factor
    /// (calibrated with [`RemoteForkModel`](crate::RemoteForkModel) to the
    /// paper's observed-vs-service rfork gap).
    pub fn lan_1989() -> Self {
        NetworkModel {
            latency: SimDuration::from_micros(500),
            bandwidth_bytes_per_sec: 800 * 1024,
            delay_factor: 1.35,
        }
    }

    /// An ideal network: zero latency, (practically) infinite bandwidth.
    pub fn ideal() -> Self {
        NetworkModel {
            latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
            delay_factor: 1.0,
        }
    }

    /// Raw (uninflated) time to move `bytes` point-to-point.
    pub fn raw_transfer_time(&self, bytes: u64) -> SimDuration {
        let seconds = bytes as f64 / self.bandwidth_bytes_per_sec as f64;
        self.latency + SimDuration::from_secs_f64(seconds)
    }

    /// Observed time to move `bytes`, including the delay factor.
    ///
    /// # Panics
    ///
    /// Panics if the delay factor is less than 1 (validated here because
    /// the struct's fields are public for experiment sweeps).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        assert!(self.delay_factor >= 1.0, "delay factor must be ≥ 1");
        self.raw_transfer_time(bytes).mul_f64(self.delay_factor)
    }

    /// Round-trip time for a minimal control message.
    pub fn rtt(&self) -> SimDuration {
        self.latency * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_network_is_free() {
        let n = NetworkModel::ideal();
        assert_eq!(n.transfer_time(1_000_000_000), SimDuration::ZERO);
        assert_eq!(n.rtt(), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let n = NetworkModel {
            latency: SimDuration::from_millis(1),
            bandwidth_bytes_per_sec: 1000,
            delay_factor: 1.0,
        };
        assert_eq!(n.transfer_time(0), SimDuration::from_millis(1));
        assert_eq!(
            n.transfer_time(1000),
            SimDuration::from_millis(1) + SimDuration::from_secs(1)
        );
        assert_eq!(
            n.transfer_time(500),
            SimDuration::from_millis(1) + SimDuration::from_millis(500)
        );
    }

    #[test]
    fn delay_factor_inflates() {
        let mut n = NetworkModel {
            latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: 1000,
            delay_factor: 1.5,
        };
        assert_eq!(n.transfer_time(1000), SimDuration::from_millis(1500));
        n.delay_factor = 1.0;
        assert_eq!(n.transfer_time(1000), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn delay_factor_below_one_rejected() {
        let n = NetworkModel {
            latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: 1000,
            delay_factor: 0.5,
        };
        n.transfer_time(1);
    }

    #[test]
    fn lan_1989_is_plausible() {
        let n = NetworkModel::lan_1989();
        // 70K over the 1989 LAN: tens of milliseconds, not seconds.
        let t = n.transfer_time(70 * 1024);
        assert!(
            t > SimDuration::from_millis(50) && t < SimDuration::from_millis(500),
            "{t}"
        );
    }
}
