//! Transparent replication combined with alternative racing (§6).
//!
//! "Transparent replication can easily be combined with the use of
//! parallel execution of several alternatives for increases in
//! performance, reliability, or both." (Related-work discussion of
//! Cooper's CIRCUS and Goldberg's process cloning.)
//!
//! A [`ReplicatedRace`] runs each alternative as *k* replicas on distinct
//! nodes: the alternative finishes when its **first surviving replica**
//! finishes (replicas are identical, so any response is the response —
//! idempotency of reads is forced by buffering, per §6). Node crashes
//! take out individual replicas; an alternative is lost only when *all*
//! its replicas crash. The race across alternatives then proceeds as in
//! [`DistributedRace`](crate::DistributedRace).
//!
//! The cost: every replica is rforked, so setup scales with
//! `alternatives × replicas` — performance *and* reliability are bought
//! with the same coin, hardware.

use crate::rfork::RemoteForkModel;
use altx_des::{SimDuration, SimTime};

/// One replicated alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedAlternate {
    /// Compute time (identical on every replica — they run the same
    /// deterministic computation).
    pub compute: SimDuration,
    /// Whether the guard/acceptance test passes.
    pub guard_passes: bool,
    /// Per-replica crash flags; the replica count is this vector's
    /// length (must be ≥ 1).
    pub replica_crashes: Vec<bool>,
}

impl ReplicatedAlternate {
    /// A healthy alternative with `k` replicas.
    pub fn healthy(compute: SimDuration, k: usize) -> Self {
        assert!(k >= 1, "need at least one replica");
        ReplicatedAlternate {
            compute,
            guard_passes: true,
            replica_crashes: vec![false; k],
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replica_crashes.len()
    }

    /// True iff at least one replica survives.
    pub fn survives(&self) -> bool {
        self.replica_crashes.iter().any(|&c| !c)
    }
}

/// Outcome of a replicated race.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedRaceReport {
    /// Winning alternative index.
    pub winner: Option<usize>,
    /// Completion instant (first surviving replica of the winning
    /// alternative, plus sync round-trip).
    pub completed_at: Option<SimTime>,
    /// Total rforks performed (the hardware bill).
    pub rforks: usize,
    /// Alternatives that lost every replica to crashes.
    pub fully_crashed: usize,
}

/// A fastest-first race of replicated alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedRace {
    /// Image shipped per replica.
    pub image_bytes: u64,
    /// The alternatives.
    pub alternates: Vec<ReplicatedAlternate>,
    /// rfork cost model.
    pub rfork: RemoteForkModel,
}

impl ReplicatedRace {
    /// Creates a race with the calibrated 1989 rfork model.
    pub fn new(image_bytes: u64, alternates: Vec<ReplicatedAlternate>) -> Self {
        ReplicatedRace {
            image_bytes,
            alternates,
            rfork: RemoteForkModel::calibrated_1989(),
        }
    }

    /// Runs the race.
    ///
    /// # Panics
    ///
    /// Panics if there are no alternates.
    pub fn run(&self) -> ReplicatedRaceReport {
        assert!(!self.alternates.is_empty(), "race needs alternates");
        let breakdown = self.rfork.observed_breakdown(self.image_bytes);

        // Replicas are dispatched round-robin across alternatives so no
        // alternative is systematically last; checkpoints remain serial
        // at the parent.
        let max_replicas = self
            .alternates
            .iter()
            .map(ReplicatedAlternate::replicas)
            .max()
            .expect("non-empty");
        let mut rforks = 0usize;
        let mut checkpoint_done = SimTime::ZERO;
        // finish[i] = earliest finishing surviving replica of alt i.
        let mut finish: Vec<Option<SimTime>> = vec![None; self.alternates.len()];
        for round in 0..max_replicas {
            for (i, alt) in self.alternates.iter().enumerate() {
                if round >= alt.replicas() {
                    continue;
                }
                rforks += 1;
                checkpoint_done += breakdown.checkpoint;
                if alt.replica_crashes[round] {
                    continue;
                }
                let ready = checkpoint_done + breakdown.restore + breakdown.protocol;
                let done = ready + alt.compute;
                finish[i] = Some(match finish[i] {
                    Some(prev) if prev <= done => prev,
                    _ => done,
                });
            }
        }

        let fully_crashed = self.alternates.iter().filter(|a| !a.survives()).count();

        let winner = self
            .alternates
            .iter()
            .zip(&finish)
            .enumerate()
            .filter_map(|(i, (alt, f))| {
                let f = (*f)?;
                alt.guard_passes.then_some((i, f))
            })
            .min_by_key(|&(i, f)| (f, i));

        ReplicatedRaceReport {
            winner: winner.map(|(i, _)| i),
            completed_at: winner.map(|(_, f)| f + self.rfork.network.rtt()),
            rforks,
            fully_crashed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_replica_behaves_like_plain_race() {
        let race = ReplicatedRace::new(
            70 * 1024,
            vec![
                ReplicatedAlternate::healthy(ms(5_000), 1),
                ReplicatedAlternate::healthy(ms(1_000), 1),
            ],
        );
        let r = race.run();
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.rforks, 2);
        assert_eq!(r.fully_crashed, 0);
    }

    #[test]
    fn replication_survives_replica_crashes() {
        let mut fast = ReplicatedAlternate::healthy(ms(1_000), 3);
        fast.replica_crashes = vec![true, true, false]; // two of three die
        let race = ReplicatedRace::new(70 * 1024, vec![fast]);
        let r = race.run();
        assert_eq!(r.winner, Some(0));
        assert_eq!(r.rforks, 3);
    }

    #[test]
    fn all_replicas_crashed_loses_the_alternative() {
        let mut doomed = ReplicatedAlternate::healthy(ms(100), 2);
        doomed.replica_crashes = vec![true, true];
        let backup = ReplicatedAlternate::healthy(ms(5_000), 1);
        let race = ReplicatedRace::new(70 * 1024, vec![doomed, backup]);
        let r = race.run();
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.fully_crashed, 1);
    }

    #[test]
    fn replication_multiplies_setup_cost() {
        let one =
            ReplicatedRace::new(70 * 1024, vec![ReplicatedAlternate::healthy(ms(60_000), 1)]).run();
        let three =
            ReplicatedRace::new(70 * 1024, vec![ReplicatedAlternate::healthy(ms(60_000), 3)]).run();
        assert_eq!(three.rforks, 3 * one.rforks);
        // With identical compute, extra replicas only add cost: the
        // first-dispatched replica still finishes first.
        assert_eq!(
            one.completed_at.expect("done"),
            three.completed_at.expect("done"),
            "first replica's dispatch time is identical"
        );
    }

    #[test]
    fn replicas_of_later_rounds_are_staggered() {
        // Round-robin dispatch: with crash of the round-0 replica, the
        // alternative's finish comes from a later, staggered replica.
        let mut alt = ReplicatedAlternate::healthy(ms(1_000), 2);
        let baseline = ReplicatedRace::new(70 * 1024, vec![alt.clone()]).run();
        alt.replica_crashes = vec![true, false];
        let degraded = ReplicatedRace::new(70 * 1024, vec![alt]).run();
        assert!(
            degraded.completed_at.expect("done") > baseline.completed_at.expect("done"),
            "losing the first replica costs the stagger delay"
        );
    }

    #[test]
    fn guard_failures_still_fall_through() {
        let mut wrong = ReplicatedAlternate::healthy(ms(10), 3);
        wrong.guard_passes = false;
        let right = ReplicatedAlternate::healthy(ms(50_000), 1);
        let r = ReplicatedRace::new(70 * 1024, vec![wrong, right]).run();
        assert_eq!(r.winner, Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        ReplicatedAlternate::healthy(ms(1), 0);
    }
}
