//! # altx-cluster — the simulated distributed system
//!
//! The paper's §4.4 distinguishes the shared-memory case (COW fork, page
//! copies) from the **distributed** case: "In the distributed case we must
//! actually copy state for a remote child so that it can read or write
//! locally" — implemented in Smith & Ioannidis's `rfork()` as a
//! checkpoint/transfer/restart over a network file system: "An rfork() of
//! a 70K process requires slightly less than a second, and network delays
//! gave us an observed average execution time of about 1.3 seconds."
//!
//! This crate models that substrate:
//!
//! * [`NetworkModel`] — latency + bandwidth (+ queueing-delay factor)
//!   transfer times.
//! * [`RemoteForkModel`] — the rfork cost decomposition (checkpoint,
//!   transfer, restore), calibrated so a 70 KB image reproduces the
//!   paper's ≈1 s service / ≈1.3 s observed numbers (experiment E5).
//! * [`DistributedRace`] — fastest-first execution of alternates spread
//!   across cluster nodes with guard evaluation, node crashes,
//!   single-point or majority-consensus synchronization, and winner
//!   state copy-back ("there is more copying to be performed during
//!   synchronization, as the changed state is updated in the parent's
//!   storage", §4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod network;
pub mod race;
pub mod replication;
pub mod rfork;

pub use checkpoint::{Checkpoint, RestoreError};
pub use network::NetworkModel;
pub use race::{
    AlternateTimeline, DistributedRace, DistributedRaceReport, RemoteAlternate, SyncMode,
};
pub use replication::{ReplicatedAlternate, ReplicatedRace, ReplicatedRaceReport};
pub use rfork::{RemoteForkBreakdown, RemoteForkModel};

/// Identifier of a cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}
