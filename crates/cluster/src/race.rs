//! Distributed fastest-first races.
//!
//! [`DistributedRace`] composes the substrates into the paper's
//! distributed execution story (§3.2.1, §4.1, §5.1): the parent rforks one
//! alternate per cluster node (serial checkpoints — the parent is the
//! bottleneck), the alternates compute remotely, survivors whose guards
//! hold race to synchronize (through a single sync point or a majority-
//! consensus quorum), and the winner's changed state is copied back into
//! the parent's storage.

use crate::rfork::RemoteForkModel;
use crate::NodeId;
use altx_consensus::{CandidateSpec, ConsensusConfig, ConsensusSim, FaultPlan};
use altx_des::{SimDuration, SimTime};

/// One alternate placed on a remote node.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteAlternate {
    /// Where it runs.
    pub node: NodeId,
    /// Its computation time on that node.
    pub compute: SimDuration,
    /// Whether its guard/acceptance test will pass.
    pub guard_passes: bool,
    /// Whether the node crashes before synchronization (the alternate is
    /// silently lost — the failure mode distributed recovery blocks must
    /// tolerate).
    pub node_crashes: bool,
    /// Bytes of state the alternate changes (copied back if it wins).
    pub dirty_bytes: u64,
}

impl RemoteAlternate {
    /// A healthy alternate with a passing guard and 4 KB of results.
    pub fn healthy(node: NodeId, compute: SimDuration) -> Self {
        RemoteAlternate {
            node,
            compute,
            guard_passes: true,
            node_crashes: false,
            dirty_bytes: 4 * 1024,
        }
    }
}

/// How the winner is selected (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// One coordinator node holds the sync point. Fast, but a single
    /// point of failure.
    SinglePoint {
        /// Whether the coordinator is up.
        coordinator_up: bool,
    },
    /// Majority consensus across `n_voters` nodes, `crashed_voters` of
    /// which are down. Slower (vote collection) but fault-tolerant while
    /// a majority survives.
    Majority {
        /// Quorum size.
        n_voters: usize,
        /// How many voters are down from the start.
        crashed_voters: usize,
    },
}

/// Per-alternate timeline of the race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlternateTimeline {
    /// When the alternate began computing on its node (rfork complete).
    pub ready_at: SimTime,
    /// When it finished computing, `None` if its node crashed.
    pub finished_at: Option<SimTime>,
    /// When it synchronized successfully (winner only).
    pub synced_at: Option<SimTime>,
}

/// Result of one distributed race.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedRaceReport {
    /// Index of the winning alternate, if any.
    pub winner: Option<usize>,
    /// When the winner's state was fully absorbed by the parent
    /// (synchronization + state copy-back).
    pub completed_at: Option<SimTime>,
    /// Per-alternate timelines.
    pub timelines: Vec<AlternateTimeline>,
    /// Total rfork (setup) time charged at the parent before the last
    /// alternate was dispatched.
    pub setup_total: SimDuration,
}

impl DistributedRaceReport {
    /// True iff some alternate won.
    pub fn succeeded(&self) -> bool {
        self.winner.is_some()
    }
}

/// A distributed fastest-first race specification.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedRace {
    /// Process image size shipped to each node.
    pub image_bytes: u64,
    /// The competing alternates.
    pub alternates: Vec<RemoteAlternate>,
    /// The rfork cost model.
    pub rfork: RemoteForkModel,
    /// Synchronization discipline.
    pub sync: SyncMode,
    /// Seed for the consensus sub-simulation.
    pub seed: u64,
}

impl DistributedRace {
    /// Creates a race with the calibrated 1989 rfork model and a healthy
    /// single sync point.
    pub fn new(image_bytes: u64, alternates: Vec<RemoteAlternate>) -> Self {
        DistributedRace {
            image_bytes,
            alternates,
            rfork: RemoteForkModel::calibrated_1989(),
            sync: SyncMode::SinglePoint {
                coordinator_up: true,
            },
            seed: 11,
        }
    }

    /// Sets the synchronization mode.
    pub fn with_sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Runs the race.
    ///
    /// # Panics
    ///
    /// Panics if there are no alternates.
    pub fn run(&self) -> DistributedRaceReport {
        assert!(
            !self.alternates.is_empty(),
            "race needs at least one alternate"
        );
        let n = self.alternates.len();
        let breakdown = self.rfork.observed_breakdown(self.image_bytes);

        // Serial checkpoints at the parent; restore + protocol overlap
        // with the next child's checkpoint.
        let mut timelines = Vec::with_capacity(n);
        let mut checkpoint_done = SimTime::ZERO;
        for alt in &self.alternates {
            checkpoint_done += breakdown.checkpoint;
            let ready_at = checkpoint_done + breakdown.restore + breakdown.protocol;
            let finished_at = (!alt.node_crashes).then_some(ready_at + alt.compute);
            timelines.push(AlternateTimeline {
                ready_at,
                finished_at,
                synced_at: None,
            });
        }
        let setup_total = checkpoint_done - SimTime::ZERO;

        // Eligible synchronizers: finished and guard passed.
        let eligible: Vec<(usize, SimTime)> = self
            .alternates
            .iter()
            .zip(&timelines)
            .enumerate()
            .filter_map(|(i, (alt, tl))| {
                let finish = tl.finished_at?;
                (alt.guard_passes).then_some((i, finish))
            })
            .collect();

        let network = &self.rfork.network;
        let (winner, synced_at) = match self.sync {
            SyncMode::SinglePoint { coordinator_up } => {
                if !coordinator_up || eligible.is_empty() {
                    (None, None)
                } else {
                    // First finisher claims the sync point; one RTT to
                    // learn it won.
                    let &(idx, finish) = eligible
                        .iter()
                        .min_by_key(|&&(i, t)| (t, i))
                        .expect("non-empty");
                    (Some(idx), Some(finish + network.rtt()))
                }
            }
            SyncMode::Majority {
                n_voters,
                crashed_voters,
            } => {
                if eligible.is_empty() || n_voters == 0 {
                    (None, None)
                } else {
                    let candidates: Vec<CandidateSpec> = eligible
                        .iter()
                        .map(|&(i, finish)| CandidateSpec::new(i as u64 + 1, finish))
                        .collect();
                    let mut faults = FaultPlan::none(n_voters);
                    for v in 0..crashed_voters.min(n_voters) {
                        faults.voter_crash_times[v] = Some(SimTime::ZERO);
                    }
                    let report = ConsensusSim::new(ConsensusConfig {
                        n_voters,
                        latency: network.latency,
                        candidates,
                        faults,
                        seed: self.seed,
                    })
                    .run();
                    match (report.winner, report.decided_at) {
                        (Some(id), Some(at)) => (Some(id as usize - 1), Some(at)),
                        _ => (None, None),
                    }
                }
            }
        };

        let completed_at = winner.zip(synced_at).map(|(idx, at)| {
            // Winner's changed pages are copied back into the parent's
            // storage (§4.1's synchronization copying).
            at + network.transfer_time(self.alternates[idx].dirty_bytes)
        });

        if let (Some(idx), Some(at)) = (winner, synced_at) {
            timelines[idx].synced_at = Some(at);
        }

        DistributedRaceReport {
            winner,
            completed_at,
            timelines,
            setup_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn race(alts: Vec<RemoteAlternate>) -> DistributedRace {
        DistributedRace::new(70 * 1024, alts)
    }

    #[test]
    fn fastest_healthy_alternate_wins() {
        let r = race(vec![
            RemoteAlternate::healthy(NodeId(0), ms(5_000)),
            RemoteAlternate::healthy(NodeId(1), ms(1_000)),
            RemoteAlternate::healthy(NodeId(2), ms(3_000)),
        ])
        .run();
        assert_eq!(r.winner, Some(1));
        assert!(r.succeeded());
        assert!(r.timelines[1].synced_at.is_some());
        assert!(r.timelines[0].synced_at.is_none());
    }

    #[test]
    fn rfork_staggering_affects_readiness() {
        let r = race(vec![
            RemoteAlternate::healthy(NodeId(0), ms(100)),
            RemoteAlternate::healthy(NodeId(1), ms(100)),
        ])
        .run();
        assert!(
            r.timelines[1].ready_at > r.timelines[0].ready_at,
            "serial checkpoints stagger the children"
        );
        // But the stagger equals exactly one checkpoint time.
        let stagger = r.timelines[1].ready_at - r.timelines[0].ready_at;
        let breakdown = RemoteForkModel::calibrated_1989().observed_breakdown(70 * 1024);
        assert_eq!(stagger, breakdown.checkpoint);
    }

    #[test]
    fn earlier_dispatch_beats_equal_compute() {
        let r = race(vec![
            RemoteAlternate::healthy(NodeId(0), ms(1_000)),
            RemoteAlternate::healthy(NodeId(1), ms(1_000)),
        ])
        .run();
        assert_eq!(r.winner, Some(0), "first-dispatched finishes first");
    }

    #[test]
    fn guard_failures_fall_through() {
        let mut fast = RemoteAlternate::healthy(NodeId(0), ms(100));
        fast.guard_passes = false;
        let r = race(vec![fast, RemoteAlternate::healthy(NodeId(1), ms(5_000))]).run();
        assert_eq!(r.winner, Some(1));
    }

    #[test]
    fn node_crash_loses_alternate() {
        let mut fast = RemoteAlternate::healthy(NodeId(0), ms(100));
        fast.node_crashes = true;
        let r = race(vec![fast, RemoteAlternate::healthy(NodeId(1), ms(5_000))]).run();
        assert_eq!(r.winner, Some(1));
        assert_eq!(r.timelines[0].finished_at, None);
    }

    #[test]
    fn all_fail_means_no_winner() {
        let mut a = RemoteAlternate::healthy(NodeId(0), ms(100));
        a.guard_passes = false;
        let mut b = RemoteAlternate::healthy(NodeId(1), ms(100));
        b.node_crashes = true;
        let r = race(vec![a, b]).run();
        assert!(!r.succeeded());
        assert_eq!(r.completed_at, None);
    }

    #[test]
    fn single_point_of_failure_blocks_sync() {
        let r = race(vec![RemoteAlternate::healthy(NodeId(0), ms(100))])
            .with_sync(SyncMode::SinglePoint {
                coordinator_up: false,
            })
            .run();
        assert!(!r.succeeded(), "coordinator down: nobody can synchronize");
    }

    #[test]
    fn majority_consensus_tolerates_minority_crash() {
        let r = race(vec![RemoteAlternate::healthy(NodeId(0), ms(100))])
            .with_sync(SyncMode::Majority {
                n_voters: 5,
                crashed_voters: 2,
            })
            .run();
        assert!(r.succeeded());
    }

    #[test]
    fn majority_consensus_fails_with_majority_crashed() {
        let r = race(vec![RemoteAlternate::healthy(NodeId(0), ms(100))])
            .with_sync(SyncMode::Majority {
                n_voters: 5,
                crashed_voters: 3,
            })
            .run();
        assert!(!r.succeeded());
    }

    #[test]
    fn majority_sync_is_slower_than_single_point() {
        let alts = vec![RemoteAlternate::healthy(NodeId(0), ms(1_000))];
        let single = race(alts.clone()).run();
        let majority = race(alts)
            .with_sync(SyncMode::Majority {
                n_voters: 5,
                crashed_voters: 0,
            })
            .run();
        assert!(single.succeeded() && majority.succeeded());
        // The reliability price: consensus needs at least as long.
        assert!(
            majority.completed_at.expect("completed") >= single.completed_at.expect("completed"),
            "majority {:?} vs single {:?}",
            majority.completed_at,
            single.completed_at
        );
    }

    #[test]
    fn copy_back_scales_with_dirty_bytes() {
        let mut small = RemoteAlternate::healthy(NodeId(0), ms(1_000));
        small.dirty_bytes = 1024;
        let mut large = small.clone();
        large.dirty_bytes = 10 * 1024 * 1024;
        let r_small = race(vec![small]).run();
        let r_large = race(vec![large]).run();
        assert!(r_large.completed_at.expect("done") > r_small.completed_at.expect("done"));
    }

    #[test]
    #[should_panic(expected = "at least one alternate")]
    fn empty_race_panics() {
        race(vec![]).run();
    }
}
