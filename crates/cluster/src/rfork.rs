//! Remote fork (`rfork`) cost model.
//!
//! Smith & Ioannidis implemented `rfork()` *without operating-system
//! modification* by checkpointing the process into an executable file on a
//! network file system and re-executing it remotely; a bootstrap routine
//! restores registers and data segments (§4.4 and its footnote). The
//! dominant costs are therefore:
//!
//! 1. **checkpoint** — dumping the entire process image through the
//!    network file system;
//! 2. **restore** — the remote node reading the image back and
//!    bootstrapping it;
//! 3. **protocol** — the control round-trips of the special-purpose
//!    remote-execution protocol.
//!
//! Calibration (experiment E5): with the default rates, a 70 KB process
//! yields a *service* time just under one second and an *observed* time of
//! about 1.3 s once the network delay factor and protocol round-trips are
//! applied — the two numbers §4.4 reports.

use crate::network::NetworkModel;
use altx_des::SimDuration;
use std::fmt;

/// Cost decomposition of one remote fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteForkBreakdown {
    /// Writing the checkpoint image through the network file system.
    pub checkpoint: SimDuration,
    /// Remote read + bootstrap of the image.
    pub restore: SimDuration,
    /// Control-message round trips.
    pub protocol: SimDuration,
}

impl RemoteForkBreakdown {
    /// Total remote-fork time.
    pub fn total(&self) -> SimDuration {
        self.checkpoint + self.restore + self.protocol
    }
}

impl fmt::Display for RemoteForkBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint {} + restore {} + protocol {} = {}",
            self.checkpoint,
            self.restore,
            self.protocol,
            self.total()
        )
    }
}

/// The rfork cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteForkModel {
    /// Checkpoint write throughput (bytes/s) under no contention.
    pub checkpoint_rate: u64,
    /// Image read + bootstrap throughput (bytes/s) under no contention.
    pub restore_rate: u64,
    /// Fixed per-rfork overhead (process table setup, file creation).
    pub fixed: SimDuration,
    /// Control round-trips of the remote-execution protocol.
    pub control_rtts: u32,
    /// The network the file system and protocol run over.
    pub network: NetworkModel,
}

impl RemoteForkModel {
    /// The calibrated 1989 model (see module docs).
    pub fn calibrated_1989() -> Self {
        RemoteForkModel {
            checkpoint_rate: 150 * 1024,
            restore_rate: 160 * 1024,
            fixed: SimDuration::from_millis(50),
            control_rtts: 4,
            network: NetworkModel::lan_1989(),
        }
    }

    /// *Service* time: the rfork cost in isolation, with no queueing
    /// delays — §4.4's "slightly less than a second" for 70 KB.
    ///
    /// # Panics
    ///
    /// Panics if either throughput rate is zero.
    pub fn service_breakdown(&self, image_bytes: u64) -> RemoteForkBreakdown {
        self.breakdown_inner(image_bytes, 1.0)
    }

    /// *Observed* time: the service phases inflated by the network delay
    /// factor plus control round-trips — §4.4's "about 1.3 seconds".
    pub fn observed_breakdown(&self, image_bytes: u64) -> RemoteForkBreakdown {
        self.breakdown_inner(image_bytes, self.network.delay_factor)
    }

    fn breakdown_inner(&self, image_bytes: u64, factor: f64) -> RemoteForkBreakdown {
        assert!(
            self.checkpoint_rate > 0 && self.restore_rate > 0,
            "rfork throughput rates must be positive"
        );
        let checkpoint =
            SimDuration::from_secs_f64(image_bytes as f64 / self.checkpoint_rate as f64)
                .mul_f64(factor)
                + self.fixed;
        let restore = SimDuration::from_secs_f64(image_bytes as f64 / self.restore_rate as f64)
            .mul_f64(factor);
        let protocol = self.network.rtt() * u64::from(self.control_rtts);
        RemoteForkBreakdown {
            checkpoint,
            restore,
            protocol,
        }
    }

    /// Convenience: total service time for an image.
    pub fn service_time(&self, image_bytes: u64) -> SimDuration {
        self.service_breakdown(image_bytes).total()
    }

    /// Convenience: total observed time for an image.
    pub fn observed_time(&self, image_bytes: u64) -> SimDuration {
        self.observed_breakdown(image_bytes).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K70: u64 = 70 * 1024;

    #[test]
    fn service_time_matches_paper_70k() {
        // §4.4: "An rfork() of a 70K process requires slightly less than a
        // second".
        let m = RemoteForkModel::calibrated_1989();
        let t = m.service_time(K70).as_secs_f64();
        assert!((0.90..1.00).contains(&t), "service time {t}s");
    }

    #[test]
    fn observed_time_matches_paper_70k() {
        // §4.4: "network delays gave us an observed average execution time
        // of about 1.3 seconds".
        let m = RemoteForkModel::calibrated_1989();
        let t = m.observed_time(K70).as_secs_f64();
        assert!((1.20..1.40).contains(&t), "observed time {t}s");
    }

    #[test]
    fn observed_exceeds_service() {
        let m = RemoteForkModel::calibrated_1989();
        for bytes in [1_000u64, K70, 500_000] {
            assert!(m.observed_time(bytes) > m.service_time(bytes));
        }
    }

    #[test]
    fn cost_scales_with_image_size() {
        let m = RemoteForkModel::calibrated_1989();
        let small = m.service_time(10 * 1024);
        let big = m.service_time(100 * 1024);
        assert!(
            big > small * 5,
            "10× image must cost much more: {small} vs {big}"
        );
    }

    #[test]
    fn checkpoint_dominates() {
        // "The major cost … was creating a checkpoint of the process in
        // its entirety."
        let m = RemoteForkModel::calibrated_1989();
        let b = m.service_breakdown(K70);
        assert!(b.checkpoint > b.protocol);
        assert!(b.checkpoint >= b.restore);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let m = RemoteForkModel::calibrated_1989();
        let b = m.observed_breakdown(K70);
        assert_eq!(b.total(), b.checkpoint + b.restore + b.protocol);
        assert!(b.to_string().contains("checkpoint"), "{b}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        let mut m = RemoteForkModel::calibrated_1989();
        m.checkpoint_rate = 0;
        m.service_time(1);
    }

    #[test]
    fn ideal_network_removes_inflation() {
        let mut m = RemoteForkModel::calibrated_1989();
        m.network = NetworkModel::ideal();
        m.control_rtts = 0;
        assert_eq!(m.observed_time(K70), m.service_time(K70));
    }
}
