//! Property-based tests of the distributed race and replication models.

use altx_cluster::{
    DistributedRace, NodeId, RemoteAlternate, ReplicatedAlternate, ReplicatedRace, SyncMode,
};
use altx_des::SimDuration;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct AltGen {
    compute_ms: u64,
    guard_passes: bool,
    node_crashes: bool,
    dirty_kb: u64,
}

fn arb_alt() -> impl Strategy<Value = AltGen> {
    (1u64..30_000, any::<bool>(), any::<bool>(), 1u64..64).prop_map(
        |(compute_ms, guard_passes, node_crashes, dirty_kb)| AltGen {
            compute_ms,
            guard_passes,
            node_crashes,
            dirty_kb,
        },
    )
}

fn to_remote(alts: &[AltGen]) -> Vec<RemoteAlternate> {
    alts.iter()
        .enumerate()
        .map(|(i, a)| RemoteAlternate {
            node: NodeId(i as u32),
            compute: SimDuration::from_millis(a.compute_ms),
            guard_passes: a.guard_passes,
            node_crashes: a.node_crashes,
            dirty_bytes: a.dirty_kb * 1024,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A race succeeds iff some alternate both survives and passes its
    /// guard; the winner is always such an alternate.
    #[test]
    fn success_iff_viable_alternate(alts in prop::collection::vec(arb_alt(), 1..6)) {
        let report = DistributedRace::new(70 * 1024, to_remote(&alts)).run();
        let viable = alts.iter().any(|a| a.guard_passes && !a.node_crashes);
        prop_assert_eq!(report.succeeded(), viable);
        if let Some(w) = report.winner {
            prop_assert!(alts[w].guard_passes && !alts[w].node_crashes);
            prop_assert!(report.timelines[w].synced_at.is_some());
            prop_assert!(report.completed_at.is_some());
        }
    }

    /// The winner has the minimal finish time among viable alternates
    /// (ties to the earlier-dispatched one).
    #[test]
    fn winner_is_earliest_finisher(alts in prop::collection::vec(arb_alt(), 1..6)) {
        let report = DistributedRace::new(70 * 1024, to_remote(&alts)).run();
        if let Some(w) = report.winner {
            let w_finish = report.timelines[w].finished_at.expect("winner finished");
            for (i, (a, tl)) in alts.iter().zip(&report.timelines).enumerate() {
                if a.guard_passes && !a.node_crashes {
                    let f = tl.finished_at.expect("viable alternates finish");
                    prop_assert!(
                        w_finish < f || (w_finish == f && w <= i),
                        "alt {i} finished at {:?} before winner {w} at {:?}",
                        f,
                        w_finish
                    );
                }
            }
        }
    }

    /// Completion is monotone in dirty-state size (more copy-back can
    /// never make the block finish earlier), all else equal.
    #[test]
    fn copyback_monotone(compute_ms in 100u64..10_000, small_kb in 1u64..32, extra_kb in 1u64..512) {
        let mk = |kb: u64| {
            let mut alt = RemoteAlternate::healthy(NodeId(0), SimDuration::from_millis(compute_ms));
            alt.dirty_bytes = kb * 1024;
            DistributedRace::new(70 * 1024, vec![alt]).run().completed_at.expect("succeeds")
        };
        prop_assert!(mk(small_kb) <= mk(small_kb + extra_kb));
    }

    /// Majority sync succeeds exactly when a voter majority survives
    /// (given a viable alternate).
    #[test]
    fn majority_threshold(n_voters in 1usize..8, crashed in 0usize..8) {
        let crashed = crashed.min(n_voters);
        let race = DistributedRace::new(
            70 * 1024,
            vec![RemoteAlternate::healthy(NodeId(0), SimDuration::from_millis(500))],
        )
        .with_sync(SyncMode::Majority { n_voters, crashed_voters: crashed });
        let report = race.run();
        prop_assert_eq!(report.succeeded(), n_voters - crashed > n_voters / 2);
    }

    /// Replication dominance: with the same per-replica crash pattern
    /// prefix, more replicas never lose a previously won race, and the
    /// rfork bill is exactly alternates × replicas.
    #[test]
    fn replication_dominance(
        compute_ms in 1u64..10_000,
        crashes in prop::collection::vec(any::<bool>(), 1..5),
    ) {
        let k = crashes.len();
        let mk = |replicas: usize| {
            let mut alt = ReplicatedAlternate::healthy(
                SimDuration::from_millis(compute_ms),
                replicas,
            );
            alt.replica_crashes = crashes[..replicas].to_vec();
            ReplicatedRace::new(70 * 1024, vec![alt]).run()
        };
        let fewer = mk(k.max(1)); // all replicas
        prop_assert_eq!(fewer.rforks, k);
        if k > 1 {
            let one = mk(1);
            // If the single-replica version succeeded, the replicated one
            // must too (the same first replica exists).
            if one.winner.is_some() {
                prop_assert!(fewer.winner.is_some());
            }
        }
    }
}
