//! Property-based tests of the distributed race and replication models.

use altx_check::{check, CaseRng};
use altx_cluster::{
    DistributedRace, NodeId, RemoteAlternate, ReplicatedAlternate, ReplicatedRace, SyncMode,
};
use altx_des::SimDuration;

#[derive(Debug, Clone)]
struct AltGen {
    compute_ms: u64,
    guard_passes: bool,
    node_crashes: bool,
    dirty_kb: u64,
}

fn arb_alt(rng: &mut CaseRng) -> AltGen {
    AltGen {
        compute_ms: rng.u64_in(1, 30_000),
        guard_passes: rng.bool(),
        node_crashes: rng.bool(),
        dirty_kb: rng.u64_in(1, 64),
    }
}

fn to_remote(alts: &[AltGen]) -> Vec<RemoteAlternate> {
    alts.iter()
        .enumerate()
        .map(|(i, a)| RemoteAlternate {
            node: NodeId(i as u32),
            compute: SimDuration::from_millis(a.compute_ms),
            guard_passes: a.guard_passes,
            node_crashes: a.node_crashes,
            dirty_bytes: a.dirty_kb * 1024,
        })
        .collect()
}

/// A race succeeds iff some alternate both survives and passes its
/// guard; the winner is always such an alternate.
#[test]
fn success_iff_viable_alternate() {
    check("success_iff_viable_alternate", 64, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let report = DistributedRace::new(70 * 1024, to_remote(&alts)).run();
        let viable = alts.iter().any(|a| a.guard_passes && !a.node_crashes);
        assert_eq!(report.succeeded(), viable);
        if let Some(w) = report.winner {
            assert!(alts[w].guard_passes && !alts[w].node_crashes);
            assert!(report.timelines[w].synced_at.is_some());
            assert!(report.completed_at.is_some());
        }
    });
}

/// The winner has the minimal finish time among viable alternates
/// (ties to the earlier-dispatched one).
#[test]
fn winner_is_earliest_finisher() {
    check("winner_is_earliest_finisher", 64, |rng| {
        let alts = rng.vec(1, 6, arb_alt);
        let report = DistributedRace::new(70 * 1024, to_remote(&alts)).run();
        if let Some(w) = report.winner {
            let w_finish = report.timelines[w].finished_at.expect("winner finished");
            for (i, (a, tl)) in alts.iter().zip(&report.timelines).enumerate() {
                if a.guard_passes && !a.node_crashes {
                    let f = tl.finished_at.expect("viable alternates finish");
                    assert!(
                        w_finish < f || (w_finish == f && w <= i),
                        "alt {i} finished at {f:?} before winner {w} at {w_finish:?}"
                    );
                }
            }
        }
    });
}

/// Completion is monotone in dirty-state size (more copy-back can
/// never make the block finish earlier), all else equal.
#[test]
fn copyback_monotone() {
    check("copyback_monotone", 64, |rng| {
        let compute_ms = rng.u64_in(100, 10_000);
        let small_kb = rng.u64_in(1, 32);
        let extra_kb = rng.u64_in(1, 512);
        let mk = |kb: u64| {
            let mut alt = RemoteAlternate::healthy(NodeId(0), SimDuration::from_millis(compute_ms));
            alt.dirty_bytes = kb * 1024;
            DistributedRace::new(70 * 1024, vec![alt])
                .run()
                .completed_at
                .expect("succeeds")
        };
        assert!(mk(small_kb) <= mk(small_kb + extra_kb));
    });
}

/// Majority sync succeeds exactly when a voter majority survives
/// (given a viable alternate).
#[test]
fn majority_threshold() {
    check("majority_threshold", 64, |rng| {
        let n_voters = rng.usize_in(1, 8);
        let crashed = rng.usize_in(0, 8).min(n_voters);
        let race = DistributedRace::new(
            70 * 1024,
            vec![RemoteAlternate::healthy(
                NodeId(0),
                SimDuration::from_millis(500),
            )],
        )
        .with_sync(SyncMode::Majority {
            n_voters,
            crashed_voters: crashed,
        });
        let report = race.run();
        assert_eq!(report.succeeded(), n_voters - crashed > n_voters / 2);
    });
}

/// Replication dominance: with the same per-replica crash pattern
/// prefix, more replicas never lose a previously won race, and the
/// rfork bill is exactly alternates × replicas.
#[test]
fn replication_dominance() {
    check("replication_dominance", 64, |rng| {
        let compute_ms = rng.u64_in(1, 10_000);
        let crashes = rng.vec(1, 5, |r| r.bool());
        let k = crashes.len();
        let mk = |replicas: usize| {
            let mut alt =
                ReplicatedAlternate::healthy(SimDuration::from_millis(compute_ms), replicas);
            alt.replica_crashes = crashes[..replicas].to_vec();
            ReplicatedRace::new(70 * 1024, vec![alt]).run()
        };
        let fewer = mk(k.max(1)); // all replicas
        assert_eq!(fewer.rforks, k);
        if k > 1 {
            let one = mk(1);
            // If the single-replica version succeeded, the replicated one
            // must too (the same first replica exists).
            if one.winner.is_some() {
                assert!(fewer.winner.is_some());
            }
        }
    });
}
