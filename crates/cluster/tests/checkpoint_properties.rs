//! Property-based tests for checkpoint/restore.

use altx_cluster::Checkpoint;
use altx_pager::{AddressSpace, PageSize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// capture → restore is the identity on contents, for arbitrary
    /// write patterns and page sizes.
    #[test]
    fn round_trip_identity(
        writes in prop::collection::vec((0usize..500, prop::collection::vec(any::<u8>(), 1..40)), 0..20),
        page_size in 1usize..128,
    ) {
        let mut space = AddressSpace::zeroed(512, PageSize::new(page_size));
        let len = space.len();
        for (addr, data) in writes {
            if addr + data.len() <= len {
                space.write(addr, &data);
            }
        }
        let cp = Checkpoint::capture(&space);
        let restored = cp.restore().expect("self-captured image is valid");
        prop_assert_eq!(space.flatten(), restored.flatten());
        prop_assert_eq!(space.page_count(), restored.page_count());
    }

    /// Image size is monotone in the number of distinct dirty pages.
    #[test]
    fn size_monotone_in_dirty_pages(dirty_a in 0usize..16, extra in 0usize..16) {
        let mk = |pages: usize| {
            let mut s = AddressSpace::zeroed(32 * 64, PageSize::new(64));
            if pages > 0 {
                s.touch_pages(0, pages.min(32), 1);
            }
            Checkpoint::capture(&s).len()
        };
        prop_assert!(mk(dirty_a) <= mk((dirty_a + extra).min(32)));
    }

    /// Restored images re-capture to the identical byte sequence
    /// (canonical form: capture ∘ restore ∘ capture = capture).
    #[test]
    fn capture_is_canonical(
        writes in prop::collection::vec((0usize..300, any::<u8>()), 0..30),
    ) {
        let mut space = AddressSpace::zeroed(320, PageSize::new(32));
        for (addr, value) in writes {
            if addr < space.len() {
                space.write(addr, &[value]);
            }
        }
        let first = Checkpoint::capture(&space);
        let second = Checkpoint::capture(&first.restore().expect("valid"));
        prop_assert_eq!(first.as_bytes(), second.as_bytes());
    }

    /// Arbitrary byte soup never restores successfully unless it happens
    /// to be a valid image (fuzz the parser: must error, never panic).
    #[test]
    fn parser_rejects_garbage_without_panicking(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Any outcome is fine except a panic; almost all inputs error.
        let _ = Checkpoint::from_bytes(bytes);
    }
}
