//! Property-based tests for checkpoint/restore.

use altx_check::check;
use altx_cluster::Checkpoint;
use altx_pager::{AddressSpace, PageSize};

/// capture → restore is the identity on contents, for arbitrary
/// write patterns and page sizes.
#[test]
fn round_trip_identity() {
    check("round_trip_identity", 64, |rng| {
        let page_size = rng.usize_in(1, 128);
        let writes = rng.vec(0, 20, |r| (r.usize_in(0, 500), r.bytes(1, 40)));
        let mut space = AddressSpace::zeroed(512, PageSize::new(page_size));
        let len = space.len();
        for (addr, data) in writes {
            if addr + data.len() <= len {
                space.write(addr, &data);
            }
        }
        let cp = Checkpoint::capture(&space);
        let restored = cp.restore().expect("self-captured image is valid");
        assert_eq!(space.flatten(), restored.flatten());
        assert_eq!(space.page_count(), restored.page_count());
    });
}

/// Image size is monotone in the number of distinct dirty pages.
#[test]
fn size_monotone_in_dirty_pages() {
    check("size_monotone_in_dirty_pages", 64, |rng| {
        let dirty_a = rng.usize_in(0, 16);
        let extra = rng.usize_in(0, 16);
        let mk = |pages: usize| {
            let mut s = AddressSpace::zeroed(32 * 64, PageSize::new(64));
            if pages > 0 {
                s.touch_pages(0, pages.min(32), 1);
            }
            Checkpoint::capture(&s).len()
        };
        assert!(mk(dirty_a) <= mk((dirty_a + extra).min(32)));
    });
}

/// Restored images re-capture to the identical byte sequence
/// (canonical form: capture ∘ restore ∘ capture = capture).
#[test]
fn capture_is_canonical() {
    check("capture_is_canonical", 64, |rng| {
        let writes = rng.vec(0, 30, |r| (r.usize_in(0, 300), r.u8()));
        let mut space = AddressSpace::zeroed(320, PageSize::new(32));
        for (addr, value) in writes {
            if addr < space.len() {
                space.write(addr, &[value]);
            }
        }
        let first = Checkpoint::capture(&space);
        let second = Checkpoint::capture(&first.restore().expect("valid"));
        assert_eq!(first.as_bytes(), second.as_bytes());
    });
}

/// Arbitrary byte soup never restores successfully unless it happens
/// to be a valid image (fuzz the parser: must error, never panic).
#[test]
fn parser_rejects_garbage_without_panicking() {
    check("parser_rejects_garbage_without_panicking", 256, |rng| {
        let bytes = rng.bytes(0, 200);
        // Any outcome is fine except a panic; almost all inputs error.
        let _ = Checkpoint::from_bytes(bytes);
    });
}
