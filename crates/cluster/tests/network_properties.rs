//! Property-based tests of the network cost model.

use altx_check::check;
use altx_cluster::NetworkModel;
use altx_des::SimDuration;

fn arb_model(rng: &mut altx_check::CaseRng) -> NetworkModel {
    NetworkModel {
        latency: SimDuration::from_micros(rng.u64_in(0, 10_000)),
        bandwidth_bytes_per_sec: rng.u64_in(1, 100_000_000),
        delay_factor: rng.f64_in(1.0, 4.0),
    }
}

/// The delay factor only ever inflates: observed ≥ raw, with equality
/// exactly at factor 1.
#[test]
fn delay_factor_never_deflates() {
    check("delay_factor_never_deflates", 128, |rng| {
        let mut model = arb_model(rng);
        let bytes = rng.u64_in(0, 10_000_000);
        assert!(model.transfer_time(bytes) >= model.raw_transfer_time(bytes));
        model.delay_factor = 1.0;
        assert_eq!(model.transfer_time(bytes), model.raw_transfer_time(bytes));
    });
}

/// Transfer time is monotone in payload size.
#[test]
fn transfer_monotone_in_bytes() {
    check("transfer_monotone_in_bytes", 128, |rng| {
        let model = arb_model(rng);
        let small = rng.u64_in(0, 1_000_000);
        let extra = rng.u64_in(0, 1_000_000);
        assert!(model.transfer_time(small) <= model.transfer_time(small + extra));
    });
}

/// An empty transfer still pays one latency; rtt pays exactly two.
#[test]
fn latency_floor_and_rtt() {
    check("latency_floor_and_rtt", 128, |rng| {
        let model = arb_model(rng);
        assert_eq!(model.raw_transfer_time(0), model.latency);
        assert_eq!(model.rtt(), model.latency * 2);
        assert!(model.transfer_time(0) >= model.latency);
    });
}

/// More bandwidth never slows a transfer down, all else equal.
#[test]
fn bandwidth_monotone() {
    check("bandwidth_monotone", 128, |rng| {
        let mut model = arb_model(rng);
        let bytes = rng.u64_in(1, 10_000_000);
        let slower = model.transfer_time(bytes);
        model.bandwidth_bytes_per_sec = model.bandwidth_bytes_per_sec.saturating_mul(2);
        assert!(model.transfer_time(bytes) <= slower);
    });
}

/// The ideal network dominates every other model.
#[test]
fn ideal_is_a_lower_bound() {
    check("ideal_is_a_lower_bound", 128, |rng| {
        let model = arb_model(rng);
        let ideal = NetworkModel::ideal();
        let bytes = rng.u64_in(0, 10_000_000);
        assert!(ideal.transfer_time(bytes) <= model.transfer_time(bytes));
    });
}
