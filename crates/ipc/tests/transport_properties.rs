//! Property-based tests of the message transport's reliability/FIFO
//! contract (§3.1) and the acceptance algorithm's totality.

use altx_check::{check, CaseRng};
use altx_ipc::{classify, Acceptance, Message, Router};
use altx_predicates::{Pid, PredicateSet};

/// Reliable FIFO per flow: for any interleaving of sends from
/// multiple senders, each sender's messages arrive complete, in
/// order, with consecutive sequence numbers.
#[test]
fn per_flow_fifo() {
    check("per_flow_fifo", 128, |rng| {
        let sends = rng.vec(1, 60, |r| r.u64_in(0, 4));
        let mut router = Router::new();
        let rx = Pid::new(100);
        router.register(rx);
        let mut per_sender_counter = std::collections::HashMap::new();
        for &s in &sends {
            let sender = Pid::new(s);
            let n = per_sender_counter.entry(s).or_insert(0u64);
            // Payload encodes (sender, per-sender index).
            let payload = vec![s as u8, *n as u8];
            *n += 1;
            router.send(sender, rx, PredicateSet::new(), payload);
        }
        let mb = router.mailbox_mut(rx).expect("registered");
        let mut seen = std::collections::HashMap::new();
        let mut received = 0usize;
        while let Some(m) = mb.pop() {
            received += 1;
            let sender = m.payload[0] as u64;
            let idx = m.payload[1] as u64;
            let expected = seen.entry(sender).or_insert(0u64);
            assert_eq!(idx, *expected, "per-sender order broken");
            assert_eq!(m.control.seq, idx, "seq numbers consecutive");
            *expected += 1;
        }
        assert_eq!(received, sends.len(), "no loss, no duplication");
    });
}

/// Mailbox cloning (world splits) duplicates pending messages exactly
/// and the clones then evolve independently.
#[test]
fn clone_mailbox_snapshot() {
    check("clone_mailbox_snapshot", 128, |rng| {
        let n_pending = rng.usize_in(0, 20);
        let n_after = rng.usize_in(0, 10);
        let mut router = Router::new();
        let (tx, rx, clone) = (Pid::new(1), Pid::new(2), Pid::new(3));
        router.register(rx);
        for i in 0..n_pending {
            router.send(tx, rx, PredicateSet::new(), vec![i as u8]);
        }
        router.clone_mailbox(rx, clone);
        assert_eq!(router.mailbox(clone).expect("cloned").len(), n_pending);
        // Later messages to the original do not appear in the clone.
        for i in 0..n_after {
            router.send(tx, rx, PredicateSet::new(), vec![100 + i as u8]);
        }
        assert_eq!(router.mailbox(rx).expect("rx").len(), n_pending + n_after);
        assert_eq!(router.mailbox(clone).expect("clone").len(), n_pending);
    });
}

/// Draws a set of distinct pids from `[lo, hi)`, at most `max` of them.
fn pid_set(rng: &mut CaseRng, lo: u64, hi: u64, max: usize) -> std::collections::BTreeSet<u64> {
    let n = rng.usize_in(0, max);
    (0..n).map(|_| rng.u64_in(lo, hi)).collect()
}

/// classify() is total and consistent: for arbitrary receiver/sender
/// predicate sets it returns exactly one verdict, and `Accept` and
/// `Ignore` are mutually exclusive with `Split`.
#[test]
fn classify_total() {
    check("classify_total", 256, |rng| {
        let r_completes = pid_set(rng, 0, 8, 4);
        let r_fails = pid_set(rng, 8, 16, 4);
        let s_completes = pid_set(rng, 0, 12, 4);
        let s_fails = pid_set(rng, 4, 16, 4);
        let mut receiver = PredicateSet::new();
        for &p in &r_completes {
            receiver
                .assume_completes(Pid::new(p))
                .expect("disjoint ranges");
        }
        for &p in &r_fails {
            receiver.assume_fails(Pid::new(p)).expect("disjoint ranges");
        }
        let mut sender = PredicateSet::new();
        for &p in &s_completes {
            let _ = sender.assume_completes(Pid::new(p));
        }
        for &p in &s_fails {
            let _ = sender.assume_fails(Pid::new(p));
        }
        let msg = Message::new(Pid::new(99), Pid::new(98), sender.clone(), &b"m"[..]);
        match classify(&receiver, &msg) {
            Acceptance::Accept => assert!(receiver.implies(&sender)),
            Acceptance::Ignore { .. } => assert!(receiver.conflicts_with(&sender)),
            Acceptance::Split { extra } => {
                assert!(!receiver.implies(&sender));
                assert!(!receiver.conflicts_with(&sender));
                assert!(!extra.is_empty());
            }
        }
    });
}
