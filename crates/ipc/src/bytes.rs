//! A minimal cheaply-cloneable byte buffer.
//!
//! Message payloads are written once and then shared: world splits clone
//! whole mailboxes, and the kernel re-delivers the same payload to every
//! speculative world. [`Bytes`] is an `Arc<[u8]>` behind the `bytes`
//! crate's spelling — reference-counted clones, immutable contents —
//! which is all the transport needs.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; cloning is O(1).
///
/// # Example
///
/// ```
/// use altx_ipc::Bytes;
///
/// let b: Bytes = vec![1, 2, 3].into();
/// let shared = b.clone();
/// assert_eq!(&shared[..], &[1, 2, 3]);
/// assert_eq!(b.len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_len() {
        assert!(Bytes::new().is_empty());
        let b: Bytes = vec![9, 8].into();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn clones_share_contents() {
        let a: Bytes = (&b"shared"[..]).into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), b"shared".to_vec());
    }

    #[test]
    fn conversions_agree() {
        let from_vec: Bytes = b"xy".to_vec().into();
        let from_slice: Bytes = (&b"xy"[..]).into();
        let from_arr: Bytes = b"xy".into();
        let from_str: Bytes = "xy".into();
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_slice, from_arr);
        assert_eq!(from_arr, from_str);
    }

    #[test]
    fn indexing_via_deref() {
        let b: Bytes = vec![5, 6, 7].into();
        assert_eq!(b[1], 6);
        assert_eq!(&b[..2], &[5, 6]);
    }
}
