//! Source and sink devices (§3.1).
//!
//! "System state is divided into two types, source and sink. The division
//! is made on the basis of idempotence; operations on sink devices can be
//! retried without the effects being visible, while operations on sources
//! cannot be retried. For definiteness, consider a page of backing store
//! and a teletype device, respectively."
//!
//! * [`SinkDevice`] — a staged page of backing store: speculative writes
//!   accumulate in an overlay; commit makes them permanent, abort
//!   discards them (transaction-style atomicity, §3.1).
//! * [`Source`] / [`BufferedSource`] — a non-idempotent input stream;
//!   [`BufferedSource`] records consumed values so that re-reads (by
//!   other speculative worlds, or after a replay) observe the same data
//!   without re-performing the operation — the buffering trick §6 notes
//!   for replicated computations.
//! * [`SourceGate`] — enforcement of §3.4.2's rule: "While a process has
//!   predicates which are unsatisfied, it is restricted from causing
//!   observable side-effects, and thus cannot interface with sources."

use altx_predicates::PredicateSet;
use std::collections::HashMap;
use std::fmt;

/// Error returned when a speculative process attempts a source operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceAccessError {
    /// The unresolved assumptions that block the access.
    pub outstanding: PredicateSet,
}

impl fmt::Display for SourceAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "source access denied: unresolved predicates ({})",
            self.outstanding
        )
    }
}

impl std::error::Error for SourceAccessError {}

/// Gatekeeper for source access: allows the operation only for
/// unconditional (non-speculative) processes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceGate;

impl SourceGate {
    /// Checks whether a process holding `predicates` may touch a source.
    ///
    /// # Errors
    ///
    /// Returns [`SourceAccessError`] carrying the outstanding assumptions
    /// if the process is still speculative.
    pub fn check(&self, predicates: &PredicateSet) -> Result<(), SourceAccessError> {
        if predicates.is_unconditional() {
            Ok(())
        } else {
            Err(SourceAccessError {
                outstanding: predicates.clone(),
            })
        }
    }
}

/// A non-idempotent input source: each `pull` consumes an item for good.
/// (Think teletype input, a network socket, or a sensor.)
pub trait Source {
    /// The item type produced.
    type Item;

    /// Consumes and returns the next item, or `None` when exhausted.
    /// This operation cannot be retried: the item is gone.
    fn pull(&mut self) -> Option<Self::Item>;
}

/// A simple in-memory source for tests and simulations.
#[derive(Debug, Clone)]
pub struct VecSource<T> {
    items: std::collections::VecDeque<T>,
    pulls: u64,
}

impl<T> VecSource<T> {
    /// Creates a source yielding `items` in order.
    pub fn new(items: impl IntoIterator<Item = T>) -> Self {
        VecSource {
            items: items.into_iter().collect(),
            pulls: 0,
        }
    }

    /// Number of destructive pulls performed on the underlying device.
    pub fn pulls(&self) -> u64 {
        self.pulls
    }
}

impl<T> Source for VecSource<T> {
    type Item = T;
    fn pull(&mut self) -> Option<T> {
        self.pulls += 1;
        self.items.pop_front()
    }
}

/// Forces idempotency onto a [`Source`] by buffering consumed items:
/// `read(n)` performs the destructive pull only the first time index `n`
/// is requested; later readers of the same index get the buffered value.
///
/// §6: "only one read operation can be performed, and its results buffered
/// for subsequent readers of the same data. Thus, idempotency of some
/// source state can be forced through buffering."
#[derive(Debug, Clone)]
pub struct BufferedSource<S: Source> {
    inner: S,
    buffer: Vec<Option<S::Item>>,
}

impl<S: Source> BufferedSource<S>
where
    S::Item: Clone,
{
    /// Wraps a source.
    pub fn new(inner: S) -> Self {
        BufferedSource {
            inner,
            buffer: Vec::new(),
        }
    }

    /// Reads item `index` of the stream, pulling from the device only if
    /// that index has never been read before.
    pub fn read(&mut self, index: usize) -> Option<S::Item> {
        while self.buffer.len() <= index {
            let item = self.inner.pull();
            let exhausted = item.is_none();
            self.buffer.push(item);
            if exhausted {
                break;
            }
        }
        self.buffer.get(index).cloned().flatten()
    }

    /// Number of items buffered so far.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

/// A sink device: an idempotent, page-like store with transactional
/// staging. Writes by a speculative world go to a named overlay; the
/// overlay is applied atomically on commit or discarded on abort, so
/// "either none or all of the transaction's component actions occur"
/// (§3.1).
#[derive(Debug, Clone, Default)]
pub struct SinkDevice {
    committed: Vec<u8>,
    overlays: HashMap<u64, HashMap<usize, u8>>,
    commits: u64,
    aborts: u64,
}

impl SinkDevice {
    /// Creates a sink of `len` zero bytes.
    pub fn new(len: usize) -> Self {
        SinkDevice {
            committed: vec![0; len],
            ..SinkDevice::default()
        }
    }

    /// Size of the device in bytes.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// True iff the device has zero size.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Reads a byte as seen by transaction `txn` (its own staged writes
    /// first — "it can read what was written" — then committed state).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn read(&self, txn: u64, addr: usize) -> u8 {
        assert!(addr < self.committed.len(), "sink read out of bounds");
        self.overlays
            .get(&txn)
            .and_then(|o| o.get(&addr).copied())
            .unwrap_or(self.committed[addr])
    }

    /// Reads a byte of committed state only (an external observer's view).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn read_committed(&self, addr: usize) -> u8 {
        assert!(addr < self.committed.len(), "sink read out of bounds");
        self.committed[addr]
    }

    /// Stages a write for transaction `txn`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn write(&mut self, txn: u64, addr: usize, value: u8) {
        assert!(addr < self.committed.len(), "sink write out of bounds");
        self.overlays.entry(txn).or_default().insert(addr, value);
    }

    /// Atomically applies transaction `txn`'s staged writes.
    pub fn commit(&mut self, txn: u64) {
        if let Some(overlay) = self.overlays.remove(&txn) {
            for (addr, value) in overlay {
                self.committed[addr] = value;
            }
            self.commits += 1;
        }
    }

    /// Discards transaction `txn`'s staged writes.
    pub fn abort(&mut self, txn: u64) {
        if self.overlays.remove(&txn).is_some() {
            self.aborts += 1;
        }
    }

    /// Moves transaction `from`'s staged writes into transaction `into`
    /// (later writes win on address collisions). Used at `alt_wait`
    /// absorption: the winning child's staged sink effects become part of
    /// the parent's transaction, staying invisible until the *parent*
    /// commits.
    pub fn merge_txn(&mut self, from: u64, into: u64) {
        if from == into {
            return;
        }
        if let Some(overlay) = self.overlays.remove(&from) {
            self.overlays.entry(into).or_default().extend(overlay);
        }
    }

    /// Copies transaction `from`'s staged writes to transaction `to`
    /// (world splitting: both worlds see the same staged view until one
    /// is eliminated).
    pub fn clone_txn(&mut self, from: u64, to: u64) {
        if let Some(overlay) = self.overlays.get(&from).cloned() {
            self.overlays.insert(to, overlay);
        }
    }

    /// Number of staged (uncommitted) transactions.
    pub fn pending_transactions(&self) -> usize {
        self.overlays.len()
    }

    /// Count of committed / aborted transactions.
    pub fn txn_counts(&self) -> (u64, u64) {
        (self.commits, self.aborts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_predicates::Pid;

    #[test]
    fn gate_allows_unconditional() {
        assert!(SourceGate.check(&PredicateSet::new()).is_ok());
    }

    #[test]
    fn gate_blocks_speculative() {
        let mut p = PredicateSet::new();
        p.assume_completes(Pid::new(1)).unwrap();
        let err = SourceGate.check(&p).unwrap_err();
        assert_eq!(err.outstanding, p);
        assert!(err.to_string().contains("denied"));
    }

    #[test]
    fn vec_source_is_destructive() {
        let mut s = VecSource::new([1, 2, 3]);
        assert_eq!(s.pull(), Some(1));
        assert_eq!(s.pull(), Some(2));
        assert_eq!(s.pulls(), 2);
    }

    #[test]
    fn buffered_source_forces_idempotency() {
        let mut b = BufferedSource::new(VecSource::new([10, 20, 30]));
        assert_eq!(b.read(0), Some(10));
        assert_eq!(b.read(0), Some(10), "re-read same index");
        assert_eq!(b.inner().pulls(), 1, "device pulled only once");
        assert_eq!(b.read(2), Some(30));
        assert_eq!(b.inner().pulls(), 3);
        assert_eq!(b.read(1), Some(20), "backfilled index still available");
        assert_eq!(b.inner().pulls(), 3, "no extra pulls for buffered reads");
    }

    #[test]
    fn buffered_source_exhaustion() {
        let mut b = BufferedSource::new(VecSource::new([1]));
        assert_eq!(b.read(0), Some(1));
        assert_eq!(b.read(5), None);
        assert_eq!(b.read(5), None);
    }

    #[test]
    fn sink_stages_and_commits_atomically() {
        let mut sink = SinkDevice::new(4);
        sink.write(1, 0, 0xAA);
        sink.write(1, 3, 0xBB);
        // Not visible to an observer before commit.
        assert_eq!(sink.read_committed(0), 0);
        // Visible to the writing transaction (internal consistency).
        assert_eq!(sink.read(1, 0), 0xAA);
        // Not visible to other transactions.
        assert_eq!(sink.read(2, 0), 0);
        sink.commit(1);
        assert_eq!(sink.read_committed(0), 0xAA);
        assert_eq!(sink.read_committed(3), 0xBB);
        assert_eq!(sink.txn_counts(), (1, 0));
    }

    #[test]
    fn sink_abort_discards() {
        let mut sink = SinkDevice::new(2);
        sink.write(7, 0, 9);
        sink.abort(7);
        assert_eq!(sink.read_committed(0), 0);
        assert_eq!(sink.read(7, 0), 0, "aborted overlay gone");
        assert_eq!(sink.txn_counts(), (0, 1));
        assert_eq!(sink.pending_transactions(), 0);
    }

    #[test]
    fn sink_merge_txn_moves_staged_writes() {
        let mut sink = SinkDevice::new(4);
        sink.write(1, 0, 0xAA);
        sink.write(2, 0, 0xBB); // parent's own staged write, to be overridden
        sink.write(2, 1, 0xCC);
        sink.merge_txn(1, 2);
        assert_eq!(sink.read(2, 0), 0xAA, "child's write wins the collision");
        assert_eq!(sink.read(2, 1), 0xCC);
        assert_eq!(sink.pending_transactions(), 1);
        assert_eq!(sink.read_committed(0), 0, "still uncommitted");
        sink.commit(2);
        assert_eq!(sink.read_committed(0), 0xAA);
        // Self-merge is a no-op.
        sink.write(5, 2, 9);
        sink.merge_txn(5, 5);
        assert_eq!(sink.read(5, 2), 9);
    }

    #[test]
    fn sink_clone_txn_copies_view() {
        let mut sink = SinkDevice::new(2);
        sink.write(1, 0, 7);
        sink.clone_txn(1, 2);
        assert_eq!(sink.read(2, 0), 7);
        // The views are independent afterwards.
        sink.write(2, 0, 8);
        assert_eq!(sink.read(1, 0), 7);
        sink.abort(1);
        assert_eq!(sink.read(2, 0), 8, "clone unaffected by original abort");
    }

    #[test]
    fn sink_commit_unknown_txn_is_noop() {
        let mut sink = SinkDevice::new(2);
        sink.commit(42);
        sink.abort(42);
        assert_eq!(sink.txn_counts(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sink_oob_write_panics() {
        SinkDevice::new(1).write(0, 5, 1);
    }
}
