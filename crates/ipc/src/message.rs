//! The three-part message structure of §3.4.1.

use crate::bytes::Bytes;
use altx_predicates::{Pid, PredicateSet};
use std::fmt;

/// Control information: sender, destination, and a per-(sender, receiver)
/// sequence number assigned by the router (the FIFO guarantee's witness).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Control {
    /// The sending process.
    pub from: Pid,
    /// The destination process.
    pub to: Pid,
    /// Sequence number within the (from, to) flow; consecutive from 0.
    pub seq: u64,
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{} #{}", self.from, self.to, self.seq)
    }
}

/// A message: sending predicate + payload + control information (§3.4.1).
///
/// The *sending predicate* encapsulates "the assumptions under which the
/// sender sends the message"; the receiver's acceptance decision
/// ([`crate::classify`]) is a pure function of this predicate and the
/// receiver's own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The sender's assumptions at send time.
    pub predicate: PredicateSet,
    /// The message contents.
    pub payload: Bytes,
    /// Sender/destination/sequence metadata.
    pub control: Control,
}

impl Message {
    /// Builds a message. The sequence number is assigned later by the
    /// router; constructing directly with `seq` is for tests.
    pub fn new(from: Pid, to: Pid, predicate: PredicateSet, payload: impl Into<Bytes>) -> Self {
        Message {
            predicate,
            payload: payload.into(),
            control: Control { from, to, seq: 0 },
        }
    }

    /// The sender pid.
    pub fn from(&self) -> Pid {
        self.control.from
    }

    /// The destination pid.
    pub fn to(&self) -> Pid {
        self.control.to
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True iff the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] pred=({}) {} bytes",
            self.control,
            self.predicate,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accessors() {
        let m = Message::new(Pid::new(1), Pid::new(2), PredicateSet::new(), &b"hi"[..]);
        assert_eq!(m.from(), Pid::new(1));
        assert_eq!(m.to(), Pid::new(2));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn empty_payload() {
        let m = Message::new(Pid::new(1), Pid::new(2), PredicateSet::new(), Bytes::new());
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn display_contains_flow() {
        let m = Message::new(Pid::new(3), Pid::new(4), PredicateSet::new(), &b"x"[..]);
        let s = m.to_string();
        assert!(s.contains("pid3→pid4"), "{s}");
        assert!(s.contains("1 bytes"), "{s}");
    }

    #[test]
    fn control_display() {
        let c = Control {
            from: Pid::new(1),
            to: Pid::new(2),
            seq: 7,
        };
        assert_eq!(c.to_string(), "pid1→pid2 #7");
    }
}
