//! # altx-ipc — predicated interprocess communication
//!
//! §3.4 of Smith & Maguire: interprocess communication is the only way a
//! process can observe or affect another, and it is the channel through
//! which speculative side-effects could leak. This crate implements the
//! paper's containment machinery:
//!
//! * [`Message`] — the three-part message of §3.4.1: a *sending
//!   predicate* (the sender's assumptions), the data, and control
//!   information.
//! * [`Mailbox`] / [`Router`] — reliable, FIFO message delivery (the
//!   paper's stated IPC assumptions).
//! * [`acceptance`] — the §3.4.2 "multiple worlds" algorithm: accept when
//!   the receiver's assumptions imply the sender's, ignore on conflict,
//!   and otherwise **split the receiver into two worlds** (one assuming
//!   the sender completes, one assuming it fails).
//! * [`device`] — *source*/*sink* discipline (§3.1): sinks are idempotent
//!   and may be staged/rolled back; sources are not, so processes holding
//!   unresolved predicates are denied source access, and source reads are
//!   buffered to force idempotency for re-reads (§6, replication
//!   discussion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acceptance;
pub mod bytes;
pub mod device;
pub mod message;
pub mod router;

pub use acceptance::{classify, split_worlds, Acceptance};
pub use bytes::Bytes;
pub use device::{BufferedSource, SinkDevice, Source, SourceAccessError, SourceGate, VecSource};
pub use message::{Control, Message};
pub use router::{Mailbox, Router};
