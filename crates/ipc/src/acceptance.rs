//! The §3.4.2 message-acceptance ("multiple worlds") algorithm.
//!
//! When a receiver with predicates `R` accepts a message with sending
//! predicate `S`:
//!
//! * `S ⊆ R` — immediately accept;
//! * `∃p: p ∈ S ∧ ¬p ∈ R` — ignore (the message comes from a world the
//!   receiver already knows is unreal);
//! * otherwise — **two copies of the receiver are created**: one with
//!   `R ∧ complete(S)` (implying all the sender's predicates, footnote 2)
//!   and one with `R ∧ ¬complete(sender)` (negating the sender's
//!   completion without assuming the negation of each of its predicates,
//!   which could be a logical impossibility — footnote 3).

use crate::message::Message;
use altx_predicates::{Compatibility, Pid, PredicateSet};

/// The receiver-side decision for one incoming message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acceptance {
    /// The receiver's assumptions already imply the sender's: deliver.
    Accept,
    /// The sender's world is known-unreal to this receiver: drop silently.
    Ignore {
        /// A process assumed one way by the sender, the other by the
        /// receiver.
        witness: Pid,
    },
    /// The receiver must fork into an accepting and a rejecting world.
    Split {
        /// Assumptions the accepting world must additionally adopt.
        extra: PredicateSet,
    },
}

/// Classifies `message` against the receiver's current predicates.
pub fn classify(receiver: &PredicateSet, message: &Message) -> Acceptance {
    match receiver.compare(&message.predicate) {
        Compatibility::Implied => Acceptance::Accept,
        Compatibility::Conflicting { witness } => Acceptance::Ignore { witness },
        Compatibility::NeedsAssumptions { extra } => Acceptance::Split { extra },
    }
}

/// Computes the predicate sets for the two worlds of a split.
///
/// Returns `(accepting, rejecting)`:
///
/// * `accepting` = receiver ∧ `extra` ∧ "`sender` completes";
/// * `rejecting` = receiver ∧ "`sender` does not complete".
///
/// # Errors
///
/// Returns [`altx_predicates::PredicateConflict`] if the receiver already
/// holds an assumption about `sender` that contradicts the side being
/// built. Callers that classified with [`classify`] first will never see
/// this for the `extra` conjunction; a conflict on the sender pid itself
/// means the caller should have gotten `Accept` or `Ignore` instead.
pub fn split_worlds(
    receiver: &PredicateSet,
    sender: Pid,
    extra: &PredicateSet,
) -> Result<(PredicateSet, PredicateSet), altx_predicates::PredicateConflict> {
    let mut accepting = receiver.clone();
    accepting.conjoin(extra)?;
    accepting.assume_completes(sender)?;

    let mut rejecting = receiver.clone();
    rejecting.assume_fails(sender)?;

    Ok((accepting, rejecting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use altx_predicates::Outcome;

    fn pid(n: u64) -> Pid {
        Pid::new(n)
    }

    fn msg_with_pred(sender: Pid, pred: PredicateSet) -> Message {
        Message::new(sender, pid(99), pred, &b"payload"[..])
    }

    #[test]
    fn unconditional_sender_is_always_accepted() {
        let receiver = PredicateSet::new();
        let m = msg_with_pred(pid(1), PredicateSet::new());
        assert_eq!(classify(&receiver, &m), Acceptance::Accept);
    }

    #[test]
    fn implied_sender_accepted() {
        let mut receiver = PredicateSet::new();
        receiver.assume_completes(pid(5)).unwrap();
        let mut sender_pred = PredicateSet::new();
        sender_pred.assume_completes(pid(5)).unwrap();
        let m = msg_with_pred(pid(5), sender_pred);
        assert_eq!(classify(&receiver, &m), Acceptance::Accept);
    }

    #[test]
    fn conflicting_sender_ignored() {
        let mut receiver = PredicateSet::new();
        receiver.assume_fails(pid(5)).unwrap();
        let mut sender_pred = PredicateSet::new();
        sender_pred.assume_completes(pid(5)).unwrap();
        let m = msg_with_pred(pid(5), sender_pred);
        assert_eq!(
            classify(&receiver, &m),
            Acceptance::Ignore { witness: pid(5) }
        );
    }

    #[test]
    fn novel_assumptions_split() {
        let receiver = PredicateSet::new();
        let mut sender_pred = PredicateSet::new();
        sender_pred.assume_completes(pid(5)).unwrap();
        let m = msg_with_pred(pid(5), sender_pred.clone());
        match classify(&receiver, &m) {
            Acceptance::Split { extra } => assert_eq!(extra, sender_pred),
            other => panic!("expected Split, got {other:?}"),
        }
    }

    #[test]
    fn split_worlds_have_opposite_sender_assumptions() {
        let receiver = PredicateSet::new();
        let mut extra = PredicateSet::new();
        extra.assume_completes(pid(5)).unwrap();
        extra.assume_fails(pid(6)).unwrap();

        let (acc, rej) = split_worlds(&receiver, pid(5), &extra).unwrap();
        assert_eq!(acc.assumption_about(pid(5)), Some(Outcome::Completed));
        assert_eq!(acc.assumption_about(pid(6)), Some(Outcome::Failed));
        assert_eq!(rej.assumption_about(pid(5)), Some(Outcome::Failed));
        // The rejecting world does NOT negate each of the sender's
        // predicates (footnote 3) — only the sender's completion.
        assert_eq!(rej.assumption_about(pid(6)), None);
    }

    #[test]
    fn split_preserves_receiver_assumptions() {
        let mut receiver = PredicateSet::new();
        receiver.assume_completes(pid(1)).unwrap();
        let mut extra = PredicateSet::new();
        extra.assume_completes(pid(5)).unwrap();
        let (acc, rej) = split_worlds(&receiver, pid(5), &extra).unwrap();
        assert_eq!(acc.assumption_about(pid(1)), Some(Outcome::Completed));
        assert_eq!(rej.assumption_about(pid(1)), Some(Outcome::Completed));
    }

    #[test]
    fn split_conflict_when_sender_already_assumed_failed() {
        let mut receiver = PredicateSet::new();
        receiver.assume_fails(pid(5)).unwrap();
        let extra = PredicateSet::new();
        assert!(split_worlds(&receiver, pid(5), &extra).is_err());
    }
}
