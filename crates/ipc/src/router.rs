//! Reliable FIFO message transport.
//!
//! §3.1: "Interprocess communication (IPC) is assumed to behave reliably
//! (no lost or duplicated messages) and FIFO (no out of order messages)."
//! [`Router`] provides exactly that contract between pids: per-flow
//! sequence numbers, in-order per-receiver mailboxes, and no loss or
//! duplication. (Unreliability belongs to the *distributed* substrate,
//! `altx-cluster`, which models it above this layer for the
//! synchronization protocol's sake.)

use crate::bytes::Bytes;
use crate::message::{Control, Message};
use altx_predicates::{Pid, PredicateSet};
use std::collections::{HashMap, VecDeque};

/// A receiver's in-order message queue.
#[derive(Debug, Clone, Default)]
pub struct Mailbox {
    queue: VecDeque<Message>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True iff no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a message (transport-internal).
    fn push(&mut self, m: Message) {
        self.queue.push_back(m);
    }

    /// Dequeues the oldest message.
    pub fn pop(&mut self) -> Option<Message> {
        self.queue.pop_front()
    }

    /// Peeks at the oldest message without removing it.
    pub fn peek(&self) -> Option<&Message> {
        self.queue.front()
    }

    /// Iterates the queued messages oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.queue.iter()
    }
}

/// The transport: routes messages between pids with reliable FIFO
/// semantics and assigns per-flow sequence numbers.
///
/// # Example
///
/// ```
/// use altx_ipc::Router;
/// use altx_predicates::{Pid, PredicateSet};
///
/// let mut router = Router::new();
/// let (a, b) = (Pid::new(1), Pid::new(2));
/// router.register(b);
/// router.send(a, b, PredicateSet::new(), &b"hello"[..]);
/// let m = router.mailbox_mut(b).unwrap().pop().unwrap();
/// assert_eq!(&m.payload[..], b"hello");
/// ```
#[derive(Debug, Default)]
pub struct Router {
    mailboxes: HashMap<Pid, Mailbox>,
    flow_seq: HashMap<(Pid, Pid), u64>,
    delivered: u64,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a mailbox for `pid` (idempotent).
    pub fn register(&mut self, pid: Pid) {
        self.mailboxes.entry(pid).or_default();
    }

    /// Removes `pid`'s mailbox (process terminated), returning any
    /// undelivered messages.
    pub fn unregister(&mut self, pid: Pid) -> Vec<Message> {
        self.mailboxes
            .remove(&pid)
            .map(|mb| mb.queue.into_iter().collect())
            .unwrap_or_default()
    }

    /// True iff `pid` has a mailbox.
    pub fn is_registered(&self, pid: Pid) -> bool {
        self.mailboxes.contains_key(&pid)
    }

    /// Sends a message from `from` to `to` carrying `predicate`.
    /// Returns the assigned control record, or `None` if `to` is not
    /// registered (the caller decides whether that is an error).
    pub fn send(
        &mut self,
        from: Pid,
        to: Pid,
        predicate: PredicateSet,
        payload: impl Into<Bytes>,
    ) -> Option<Control> {
        if !self.mailboxes.contains_key(&to) {
            return None;
        }
        let seq = self.flow_seq.entry((from, to)).or_insert(0);
        let control = Control {
            from,
            to,
            seq: *seq,
        };
        *seq += 1;
        self.delivered += 1;
        let message = Message {
            predicate,
            payload: payload.into(),
            control: control.clone(),
        };
        self.mailboxes
            .get_mut(&to)
            .expect("checked above")
            .push(message);
        Some(control)
    }

    /// Duplicates `pid`'s mailbox for a world-split clone: the new world
    /// must see exactly the same pending messages (§3.4.2 splits the
    /// *receiver*, and undelivered messages belong to both worlds until
    /// classified).
    pub fn clone_mailbox(&mut self, from_pid: Pid, to_pid: Pid) {
        let cloned = self.mailboxes.get(&from_pid).cloned().unwrap_or_default();
        self.mailboxes.insert(to_pid, cloned);
    }

    /// Read access to `pid`'s mailbox.
    pub fn mailbox(&self, pid: Pid) -> Option<&Mailbox> {
        self.mailboxes.get(&pid)
    }

    /// Write access to `pid`'s mailbox.
    pub fn mailbox_mut(&mut self, pid: Pid) -> Option<&mut Mailbox> {
        self.mailboxes.get_mut(&pid)
    }

    /// Total messages ever accepted for delivery.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n)
    }

    #[test]
    fn fifo_within_flow() {
        let mut r = Router::new();
        r.register(pid(2));
        for i in 0..5u8 {
            r.send(pid(1), pid(2), PredicateSet::new(), vec![i]);
        }
        let mb = r.mailbox_mut(pid(2)).unwrap();
        let order: Vec<u8> = std::iter::from_fn(|| mb.pop().map(|m| m.payload[0])).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sequence_numbers_per_flow() {
        let mut r = Router::new();
        r.register(pid(3));
        let c1 = r
            .send(pid(1), pid(3), PredicateSet::new(), &b"a"[..])
            .unwrap();
        let c2 = r
            .send(pid(1), pid(3), PredicateSet::new(), &b"b"[..])
            .unwrap();
        let c3 = r
            .send(pid(2), pid(3), PredicateSet::new(), &b"c"[..])
            .unwrap();
        assert_eq!((c1.seq, c2.seq), (0, 1));
        assert_eq!(c3.seq, 0, "flows are independent");
    }

    #[test]
    fn send_to_unregistered_fails() {
        let mut r = Router::new();
        assert!(r
            .send(pid(1), pid(9), PredicateSet::new(), &b"x"[..])
            .is_none());
        assert_eq!(r.delivered_count(), 0);
    }

    #[test]
    fn unregister_returns_pending() {
        let mut r = Router::new();
        r.register(pid(2));
        r.send(pid(1), pid(2), PredicateSet::new(), &b"m"[..]);
        let pending = r.unregister(pid(2));
        assert_eq!(pending.len(), 1);
        assert!(!r.is_registered(pid(2)));
        assert!(
            r.unregister(pid(2)).is_empty(),
            "double unregister is empty"
        );
    }

    #[test]
    fn clone_mailbox_copies_pending_messages() {
        let mut r = Router::new();
        r.register(pid(2));
        r.send(pid(1), pid(2), PredicateSet::new(), &b"m1"[..]);
        r.send(pid(1), pid(2), PredicateSet::new(), &b"m2"[..]);
        r.clone_mailbox(pid(2), pid(7));
        assert_eq!(r.mailbox(pid(7)).unwrap().len(), 2);
        // The clone's queue is independent.
        r.mailbox_mut(pid(7)).unwrap().pop();
        assert_eq!(r.mailbox(pid(2)).unwrap().len(), 2);
        assert_eq!(r.mailbox(pid(7)).unwrap().len(), 1);
    }

    #[test]
    fn mailbox_peek_and_iter() {
        let mut r = Router::new();
        r.register(pid(2));
        r.send(pid(1), pid(2), PredicateSet::new(), &b"a"[..]);
        r.send(pid(1), pid(2), PredicateSet::new(), &b"b"[..]);
        let mb = r.mailbox(pid(2)).unwrap();
        assert_eq!(&mb.peek().unwrap().payload[..], b"a");
        assert_eq!(mb.iter().count(), 2);
        assert_eq!(mb.len(), 2);
        assert!(!mb.is_empty());
    }
}
