//! Property-based tests for the predicate algebra.
//!
//! These check the logical laws the message-acceptance protocol (§3.4.2)
//! depends on: world splits partition the assumption space, comparison is
//! exhaustive and mutually exclusive, and resolution commutes with
//! conjunction for disjoint pids.

use altx_check::{check, CaseRng};
use altx_predicates::{Compatibility, Outcome, Pid, PredicateSet, Resolution};

/// Builds an arbitrary consistent predicate set over pids `0..n`.
fn arb_set(rng: &mut CaseRng, n: u64) -> PredicateSet {
    let mut s = PredicateSet::new();
    for i in 0..n {
        let pid = Pid::new(i);
        match rng.usize_in(0, 3) {
            1 => s.assume_completes(pid).expect("fresh pid"),
            2 => s.assume_fails(pid).expect("fresh pid"),
            _ => {}
        }
    }
    s
}

/// compare() classifies every (receiver, sender) pair into exactly one
/// of the three §3.4.2 outcomes, consistently with implies/conflicts.
#[test]
fn compare_is_exhaustive_and_consistent() {
    check("compare_is_exhaustive_and_consistent", 256, |rng| {
        let r = arb_set(rng, 6);
        let s = arb_set(rng, 6);
        match r.compare(&s) {
            Compatibility::Implied => {
                assert!(r.implies(&s));
                assert!(!r.conflicts_with(&s));
            }
            Compatibility::Conflicting { witness } => {
                assert!(r.conflicts_with(&s));
                // The witness really is assumed both ways.
                let rw = r.assumption_about(witness).expect("receiver assumption");
                let sw = s.assumption_about(witness).expect("sender assumption");
                assert_eq!(rw, sw.negated());
            }
            Compatibility::NeedsAssumptions { extra } => {
                assert!(!r.implies(&s));
                assert!(!r.conflicts_with(&s));
                assert!(!extra.is_empty());
                // Conjoining the extras yields a world that implies S.
                let mut accepting = r.clone();
                accepting
                    .conjoin(&extra)
                    .expect("no conflict by construction");
                assert!(accepting.implies(&s));
            }
        }
    });
}

/// Conflict detection is symmetric.
#[test]
fn conflicts_symmetric() {
    check("conflicts_symmetric", 256, |rng| {
        let a = arb_set(rng, 6);
        let b = arb_set(rng, 6);
        assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
    });
}

/// implies is reflexive and transitive on generated sets.
#[test]
fn implies_reflexive_transitive() {
    check("implies_reflexive_transitive", 256, |rng| {
        let a = arb_set(rng, 5);
        let b = arb_set(rng, 5);
        let c = arb_set(rng, 5);
        assert!(a.implies(&a));
        if a.implies(&b) && b.implies(&c) {
            assert!(a.implies(&c));
        }
    });
}

/// Resolving every assumed pid with its assumed fate empties the set
/// (all assumptions discharged, never doomed).
#[test]
fn resolving_as_assumed_discharges_everything() {
    check("resolving_as_assumed_discharges_everything", 128, |rng| {
        let s = arb_set(rng, 8);
        let mut set = s.clone();
        let assumed: Vec<(Pid, Outcome)> = (0..8)
            .map(Pid::new)
            .filter_map(|p| set.assumption_about(p).map(|o| (p, o)))
            .collect();
        for (p, o) in assumed {
            assert_eq!(set.resolve(p, o), Resolution::Satisfied);
        }
        assert!(set.is_unconditional());
    });
}

/// Resolving any assumed pid with the opposite fate dooms the world.
#[test]
fn resolving_against_assumption_dooms() {
    check("resolving_against_assumption_dooms", 128, |rng| {
        let s = arb_set(rng, 8);
        for p in (0..8).map(Pid::new) {
            if let Some(o) = s.assumption_about(p) {
                let mut world = s.clone();
                assert_eq!(world.resolve(p, o.negated()), Resolution::Doomed);
            }
        }
    });
}

/// The two worlds created by a split hold contradictory assumptions
/// about the sender, so exactly one survives any resolution of the
/// sender's fate — the §3.4.2 "multiple worlds" invariant.
#[test]
fn split_worlds_partition_on_sender_fate() {
    check("split_worlds_partition_on_sender_fate", 128, |rng| {
        let r = arb_set(rng, 4);
        let sender_pid = Pid::new(rng.u64_in(4, 8));
        // Sender assumes its own completion (footnote 2: accepting implies
        // all the sender's predicates, rooted in its completion).
        let mut sender = PredicateSet::new();
        sender.assume_completes(sender_pid).expect("fresh");

        if let Compatibility::NeedsAssumptions { extra } = r.compare(&sender) {
            // World A: accepts (conjoins the extras).
            let mut world_a = r.clone();
            world_a.conjoin(&extra).expect("consistent by construction");
            // World B: rejects (assumes the sender fails; footnote 3).
            let mut world_b = r.clone();
            world_b
                .assume_fails(sender_pid)
                .expect("no prior assumption");

            for fate in [Outcome::Completed, Outcome::Failed] {
                let mut a = world_a.clone();
                let mut b = world_b.clone();
                let ra = a.resolve(sender_pid, fate);
                let rb = b.resolve(sender_pid, fate);
                let a_survives = ra != Resolution::Doomed;
                let b_survives = rb != Resolution::Doomed;
                assert_ne!(
                    a_survives, b_survives,
                    "exactly one world must survive fate {fate:?}"
                );
            }
        }
    });
}

/// Conjunction is commutative when it succeeds.
#[test]
fn conjoin_commutative_on_success() {
    check("conjoin_commutative_on_success", 256, |rng| {
        let a = arb_set(rng, 6);
        let b = arb_set(rng, 6);
        let mut ab = a.clone();
        let mut ba = b.clone();
        let r1 = ab.conjoin(&b);
        let r2 = ba.conjoin(&a);
        assert_eq!(r1.is_ok(), r2.is_ok());
        if r1.is_ok() {
            assert_eq!(ab, ba);
        }
    });
}
