//! Property-based tests for the predicate algebra.
//!
//! These check the logical laws the message-acceptance protocol (§3.4.2)
//! depends on: world splits partition the assumption space, comparison is
//! exhaustive and mutually exclusive, and resolution commutes with
//! conjunction for disjoint pids.

use altx_predicates::{Compatibility, Outcome, Pid, PredicateSet, Resolution};
use proptest::prelude::*;

/// Builds an arbitrary consistent predicate set over pids `0..n`.
fn arb_set(n: u64) -> impl Strategy<Value = PredicateSet> {
    prop::collection::vec(prop_oneof![Just(0u8), Just(1), Just(2)], n as usize).prop_map(|fates| {
        let mut s = PredicateSet::new();
        for (i, fate) in fates.into_iter().enumerate() {
            let pid = Pid::new(i as u64);
            match fate {
                1 => s.assume_completes(pid).expect("fresh pid"),
                2 => s.assume_fails(pid).expect("fresh pid"),
                _ => {}
            }
        }
        s
    })
}

proptest! {
    /// compare() classifies every (receiver, sender) pair into exactly one
    /// of the three §3.4.2 outcomes, consistently with implies/conflicts.
    #[test]
    fn compare_is_exhaustive_and_consistent(r in arb_set(6), s in arb_set(6)) {
        match r.compare(&s) {
            Compatibility::Implied => {
                prop_assert!(r.implies(&s));
                prop_assert!(!r.conflicts_with(&s));
            }
            Compatibility::Conflicting { witness } => {
                prop_assert!(r.conflicts_with(&s));
                // The witness really is assumed both ways.
                let rw = r.assumption_about(witness).expect("receiver assumption");
                let sw = s.assumption_about(witness).expect("sender assumption");
                prop_assert_eq!(rw, sw.negated());
            }
            Compatibility::NeedsAssumptions { extra } => {
                prop_assert!(!r.implies(&s));
                prop_assert!(!r.conflicts_with(&s));
                prop_assert!(!extra.is_empty());
                // Conjoining the extras yields a world that implies S.
                let mut accepting = r.clone();
                accepting.conjoin(&extra).expect("no conflict by construction");
                prop_assert!(accepting.implies(&s));
            }
        }
    }

    /// Conflict detection is symmetric.
    #[test]
    fn conflicts_symmetric(a in arb_set(6), b in arb_set(6)) {
        prop_assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
    }

    /// implies is reflexive and transitive on generated sets.
    #[test]
    fn implies_reflexive_transitive(a in arb_set(5), b in arb_set(5), c in arb_set(5)) {
        prop_assert!(a.implies(&a));
        if a.implies(&b) && b.implies(&c) {
            prop_assert!(a.implies(&c));
        }
    }

    /// Resolving every assumed pid with its assumed fate empties the set
    /// (all assumptions discharged, never doomed).
    #[test]
    fn resolving_as_assumed_discharges_everything(s in arb_set(8)) {
        let mut set = s.clone();
        let assumed: Vec<(Pid, Outcome)> = (0..8)
            .map(Pid::new)
            .filter_map(|p| set.assumption_about(p).map(|o| (p, o)))
            .collect();
        for (p, o) in assumed {
            prop_assert_eq!(set.resolve(p, o), Resolution::Satisfied);
        }
        prop_assert!(set.is_unconditional());
    }

    /// Resolving any assumed pid with the opposite fate dooms the world.
    #[test]
    fn resolving_against_assumption_dooms(s in arb_set(8)) {
        for p in (0..8).map(Pid::new) {
            if let Some(o) = s.assumption_about(p) {
                let mut world = s.clone();
                prop_assert_eq!(world.resolve(p, o.negated()), Resolution::Doomed);
            }
        }
    }

    /// The two worlds created by a split hold contradictory assumptions
    /// about the sender, so exactly one survives any resolution of the
    /// sender's fate — the §3.4.2 "multiple worlds" invariant.
    #[test]
    fn split_worlds_partition_on_sender_fate(r in arb_set(4), sender_pid in 4u64..8) {
        let sender_pid = Pid::new(sender_pid);
        // Sender assumes its own completion (footnote 2: accepting implies
        // all the sender's predicates, rooted in its completion).
        let mut sender = PredicateSet::new();
        sender.assume_completes(sender_pid).expect("fresh");

        if let Compatibility::NeedsAssumptions { extra } = r.compare(&sender) {
            // World A: accepts (conjoins the extras).
            let mut world_a = r.clone();
            world_a.conjoin(&extra).expect("consistent by construction");
            // World B: rejects (assumes the sender fails; footnote 3).
            let mut world_b = r.clone();
            world_b.assume_fails(sender_pid).expect("no prior assumption");

            for fate in [Outcome::Completed, Outcome::Failed] {
                let mut a = world_a.clone();
                let mut b = world_b.clone();
                let ra = a.resolve(sender_pid, fate);
                let rb = b.resolve(sender_pid, fate);
                let a_survives = ra != Resolution::Doomed;
                let b_survives = rb != Resolution::Doomed;
                prop_assert_ne!(a_survives, b_survives,
                    "exactly one world must survive fate {:?}", fate);
            }
        }
    }

    /// Conjunction is commutative when it succeeds.
    #[test]
    fn conjoin_commutative_on_success(a in arb_set(6), b in arb_set(6)) {
        let mut ab = a.clone();
        let mut ba = b.clone();
        let r1 = ab.conjoin(&b);
        let r2 = ba.conjoin(&a);
        prop_assert_eq!(r1.is_ok(), r2.is_ok());
        if r1.is_ok() {
            prop_assert_eq!(ab, ba);
        }
    }
}
