//! Process identifiers and fates.

use core::fmt;

/// A unique process identifier.
///
/// §3.4.1: "Each process in a multiprocessing system has a unique
/// identifier, used to identify the process both within the system … and
/// further, for interaction with other processes." Pids are never reused
/// within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(u64);

impl Pid {
    /// Creates a pid from a raw value.
    pub const fn new(raw: u64) -> Self {
        Pid(raw)
    }

    /// The raw identifier value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl From<u64> for Pid {
    fn from(raw: u64) -> Self {
        Pid(raw)
    }
}

/// The resolved fate of a speculative process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The process synchronized successfully (its guard held and it won,
    /// or it was absorbed).
    Completed,
    /// The process failed its guard, was eliminated as a losing sibling,
    /// or timed out.
    Failed,
}

impl Outcome {
    /// The opposite fate.
    pub fn negated(self) -> Outcome {
        match self {
            Outcome::Completed => Outcome::Failed,
            Outcome::Failed => Outcome::Completed,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed => write!(f, "completed"),
            Outcome::Failed => write!(f, "failed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_round_trip() {
        let p = Pid::new(42);
        assert_eq!(p.as_u64(), 42);
        assert_eq!(Pid::from(42u64), p);
        assert_eq!(p.to_string(), "pid42");
    }

    #[test]
    fn pid_ordering() {
        assert!(Pid::new(1) < Pid::new(2));
    }

    #[test]
    fn outcome_negation_is_involutive() {
        assert_eq!(Outcome::Completed.negated(), Outcome::Failed);
        assert_eq!(Outcome::Failed.negated().negated(), Outcome::Failed);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(Outcome::Completed.to_string(), "completed");
        assert_eq!(Outcome::Failed.to_string(), "failed");
    }
}
