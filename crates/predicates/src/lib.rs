//! # altx-predicates — the speculative-assumption algebra
//!
//! §3.3 of Smith & Maguire: *"The predicates are lists of process
//! identifiers, some of which the sending process depends on completing
//! successfully and others on which the sending process depends on to not
//! complete successfully."*
//!
//! A [`PredicateSet`] is exactly that pair of lists. Each speculative
//! process carries one; every message carries the sender's. The operations
//! needed by the kernel and the message layer are:
//!
//! * **inheritance** — a child's predicates start as the parent's
//!   ([`PredicateSet::child_of`]), extended with *sibling rivalry*: the
//!   child assumes it completes and its siblings do not
//!   ([`PredicateSet::with_sibling_rivalry`]).
//! * **comparison** — classifying a sender's assumptions against a
//!   receiver's ([`PredicateSet::compare`]) as already-implied,
//!   conflicting, or requiring a world split (§3.4.2).
//! * **conjunction** — merging assumption sets when a world accepts a
//!   message ([`PredicateSet::conjoin`]).
//! * **resolution** — when a process's fate becomes known, predicates
//!   referencing it either become satisfied (and are dropped) or doom the
//!   world that held them ([`PredicateSet::resolve`]).
//!
//! The crate is pure logic with no dependency on the simulation substrate,
//! so it is also where the workspace-wide [`Pid`] lives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pid;
mod set;
pub mod versioned;

pub use pid::{Outcome, Pid};
pub use set::{Compatibility, PredicateConflict, PredicateSet, Resolution};
pub use versioned::VersionedStore;
