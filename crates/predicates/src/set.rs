//! The two-list predicate set and its algebra.

use crate::pid::{Outcome, Pid};
use std::collections::BTreeSet;
use std::fmt;

/// A set of speculative assumptions: processes that **must complete** and
/// processes that **must not complete** for the holder's world to be real.
///
/// §3.3 argues for this representation over data-object predication:
/// process status changes are rare compared to memory references, so the
/// lists are cheap to maintain. The empty set means the holder's world is
/// unconditionally real — only then may it touch *sources* (§3.4.2).
///
/// # Example
///
/// ```
/// use altx_predicates::{Outcome, Pid, PredicateSet, Resolution};
///
/// let mut world = PredicateSet::new();
/// world.assume_completes(Pid::new(3)).unwrap();
/// world.assume_fails(Pid::new(4)).unwrap();
/// assert!(!world.is_unconditional());
///
/// // pid3 completes: that assumption is discharged.
/// assert_eq!(world.resolve(Pid::new(3), Outcome::Completed), Resolution::Satisfied);
/// // pid4 completes: the world assumed it would fail — world is doomed.
/// assert_eq!(world.resolve(Pid::new(4), Outcome::Completed), Resolution::Doomed);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PredicateSet {
    must_complete: BTreeSet<Pid>,
    must_fail: BTreeSet<Pid>,
}

/// Error: an assumption would contradict one already held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateConflict {
    /// The process whose fate is assumed both ways.
    pub pid: Pid,
}

impl fmt::Display for PredicateConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contradictory assumption about {}", self.pid)
    }
}

impl std::error::Error for PredicateConflict {}

/// Result of comparing a sender's predicates `S` against a receiver's `R`
/// (§3.4.2's message-acceptance classification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Compatibility {
    /// `S ⊆ R`: the receiver already assumes everything the sender does —
    /// accept the message immediately.
    Implied,
    /// Some assumption in `S` is negated in `R` — the message is from a
    /// world the receiver knows to be unreal; ignore it.
    Conflicting {
        /// A process assumed one way by the sender and the other by the
        /// receiver.
        witness: Pid,
    },
    /// The receiver must make additional assumptions to accept: split into
    /// two worlds (one accepting, one rejecting).
    NeedsAssumptions {
        /// The assumptions in `S` the receiver does not yet hold.
        extra: PredicateSet,
    },
}

/// What [`PredicateSet::resolve`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The set held an assumption about the process and the real fate
    /// agreed; the assumption was discharged and removed.
    Satisfied,
    /// The set held an assumption and the real fate contradicted it; the
    /// holding world is inconsistent with reality and must be eliminated.
    Doomed,
    /// The set held no assumption about the process.
    Unaffected,
}

impl PredicateSet {
    /// The empty (unconditional) predicate set.
    pub fn new() -> Self {
        PredicateSet::default()
    }

    /// A child's starting predicates: a copy of the parent's (§3.3:
    /// "the predicates of a 'child' process consist of those of the
    /// 'parent'; this allows for nesting").
    pub fn child_of(parent: &PredicateSet) -> Self {
        parent.clone()
    }

    /// Extends with *sibling rivalry* (§3.3): the holder assumes `me`
    /// completes and every pid in `siblings` does not.
    ///
    /// # Errors
    ///
    /// Returns [`PredicateConflict`] if the extension contradicts an
    /// existing assumption (e.g., nested blocks racing an ancestor).
    pub fn with_sibling_rivalry<I>(
        mut self,
        me: Pid,
        siblings: I,
    ) -> Result<Self, PredicateConflict>
    where
        I: IntoIterator<Item = Pid>,
    {
        self.assume_completes(me)?;
        for s in siblings {
            if s != me {
                self.assume_fails(s)?;
            }
        }
        Ok(self)
    }

    /// The failure alternative's predicates (§3.3 footnote: it "assumes
    /// that none of the siblings will complete").
    pub fn failure_alternative<I>(
        parent: &PredicateSet,
        siblings: I,
    ) -> Result<Self, PredicateConflict>
    where
        I: IntoIterator<Item = Pid>,
    {
        let mut set = parent.clone();
        for s in siblings {
            set.assume_fails(s)?;
        }
        Ok(set)
    }

    /// Assumes `pid` will complete.
    ///
    /// # Errors
    ///
    /// Returns [`PredicateConflict`] if `pid` is already assumed to fail.
    pub fn assume_completes(&mut self, pid: Pid) -> Result<(), PredicateConflict> {
        if self.must_fail.contains(&pid) {
            return Err(PredicateConflict { pid });
        }
        self.must_complete.insert(pid);
        Ok(())
    }

    /// Assumes `pid` will not complete.
    ///
    /// # Errors
    ///
    /// Returns [`PredicateConflict`] if `pid` is already assumed to
    /// complete.
    pub fn assume_fails(&mut self, pid: Pid) -> Result<(), PredicateConflict> {
        if self.must_complete.contains(&pid) {
            return Err(PredicateConflict { pid });
        }
        self.must_fail.insert(pid);
        Ok(())
    }

    /// True iff no assumptions remain: the holder's world is real and it
    /// may interact with sources.
    pub fn is_unconditional(&self) -> bool {
        self.must_complete.is_empty() && self.must_fail.is_empty()
    }

    /// Number of outstanding assumptions.
    pub fn len(&self) -> usize {
        self.must_complete.len() + self.must_fail.len()
    }

    /// True iff there are no assumptions (alias of
    /// [`is_unconditional`](Self::is_unconditional) for collection
    /// idiom).
    pub fn is_empty(&self) -> bool {
        self.is_unconditional()
    }

    /// The processes assumed to complete.
    pub fn must_complete(&self) -> impl Iterator<Item = Pid> + '_ {
        self.must_complete.iter().copied()
    }

    /// The processes assumed to fail.
    pub fn must_fail(&self) -> impl Iterator<Item = Pid> + '_ {
        self.must_fail.iter().copied()
    }

    /// The assumed fate of `pid`, if any assumption is held.
    pub fn assumption_about(&self, pid: Pid) -> Option<Outcome> {
        if self.must_complete.contains(&pid) {
            Some(Outcome::Completed)
        } else if self.must_fail.contains(&pid) {
            Some(Outcome::Failed)
        } else {
            None
        }
    }

    /// True iff every assumption in `other` is also held by `self`.
    pub fn implies(&self, other: &PredicateSet) -> bool {
        other.must_complete.is_subset(&self.must_complete)
            && other.must_fail.is_subset(&self.must_fail)
    }

    /// True iff some process is assumed to complete by one set and to
    /// fail by the other.
    pub fn conflicts_with(&self, other: &PredicateSet) -> bool {
        self.conflict_witness(other).is_some()
    }

    fn conflict_witness(&self, other: &PredicateSet) -> Option<Pid> {
        self.must_complete
            .intersection(&other.must_fail)
            .next()
            .or_else(|| self.must_fail.intersection(&other.must_complete).next())
            .copied()
    }

    /// Classifies a sender's predicate set `sender` against this
    /// receiver's set, per §3.4.2:
    ///
    /// * sender ⊆ receiver → [`Compatibility::Implied`] (accept);
    /// * contradiction → [`Compatibility::Conflicting`] (ignore);
    /// * otherwise → [`Compatibility::NeedsAssumptions`] (split worlds).
    pub fn compare(&self, sender: &PredicateSet) -> Compatibility {
        if let Some(witness) = self.conflict_witness(sender) {
            return Compatibility::Conflicting { witness };
        }
        if self.implies(sender) {
            return Compatibility::Implied;
        }
        let extra = PredicateSet {
            must_complete: sender
                .must_complete
                .difference(&self.must_complete)
                .copied()
                .collect(),
            must_fail: sender
                .must_fail
                .difference(&self.must_fail)
                .copied()
                .collect(),
        };
        Compatibility::NeedsAssumptions { extra }
    }

    /// Conjoins `other`'s assumptions into `self`.
    ///
    /// # Errors
    ///
    /// Returns the first [`PredicateConflict`] encountered; `self` is left
    /// in a partially-extended state only on error (callers treat the
    /// error as fatal for the world, matching the paper — a conflicting
    /// world is eliminated, not repaired).
    pub fn conjoin(&mut self, other: &PredicateSet) -> Result<(), PredicateConflict> {
        for &p in &other.must_complete {
            self.assume_completes(p)?;
        }
        for &p in &other.must_fail {
            self.assume_fails(p)?;
        }
        Ok(())
    }

    /// Resolves the real fate of `pid` against this set. Satisfied
    /// assumptions are removed ("at this point the additional assumptions
    /// … will become TRUE, and they can be eliminated from the lists",
    /// §3.4.2); contradicted assumptions doom the holder.
    pub fn resolve(&mut self, pid: Pid, outcome: Outcome) -> Resolution {
        match (
            self.must_complete.contains(&pid),
            self.must_fail.contains(&pid),
            outcome,
        ) {
            (true, _, Outcome::Completed) => {
                self.must_complete.remove(&pid);
                Resolution::Satisfied
            }
            (true, _, Outcome::Failed) => Resolution::Doomed,
            (_, true, Outcome::Failed) => {
                self.must_fail.remove(&pid);
                Resolution::Satisfied
            }
            (_, true, Outcome::Completed) => Resolution::Doomed,
            _ => Resolution::Unaffected,
        }
    }
}

impl fmt::Display for PredicateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unconditional() {
            return write!(f, "⊤");
        }
        let mut first = true;
        for p in &self.must_complete {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        for p in &self.must_fail {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "¬{p}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> Pid {
        Pid::new(n)
    }

    #[test]
    fn empty_set_is_unconditional() {
        let s = PredicateSet::new();
        assert!(s.is_unconditional());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.to_string(), "⊤");
    }

    #[test]
    fn assumptions_accumulate() {
        let mut s = PredicateSet::new();
        s.assume_completes(pid(1)).unwrap();
        s.assume_fails(pid(2)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.assumption_about(pid(1)), Some(Outcome::Completed));
        assert_eq!(s.assumption_about(pid(2)), Some(Outcome::Failed));
        assert_eq!(s.assumption_about(pid(3)), None);
    }

    #[test]
    fn contradictions_are_rejected() {
        let mut s = PredicateSet::new();
        s.assume_completes(pid(1)).unwrap();
        let err = s.assume_fails(pid(1)).unwrap_err();
        assert_eq!(err.pid, pid(1));
        assert_eq!(err.to_string(), "contradictory assumption about pid1");
    }

    #[test]
    fn duplicate_assumptions_are_idempotent() {
        let mut s = PredicateSet::new();
        s.assume_completes(pid(1)).unwrap();
        s.assume_completes(pid(1)).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sibling_rivalry() {
        let parent = PredicateSet::new();
        let s = PredicateSet::child_of(&parent)
            .with_sibling_rivalry(pid(10), [pid(10), pid(11), pid(12)])
            .unwrap();
        assert_eq!(s.assumption_about(pid(10)), Some(Outcome::Completed));
        assert_eq!(s.assumption_about(pid(11)), Some(Outcome::Failed));
        assert_eq!(s.assumption_about(pid(12)), Some(Outcome::Failed));
    }

    #[test]
    fn failure_alternative_assumes_all_fail() {
        let s = PredicateSet::failure_alternative(&PredicateSet::new(), [pid(1), pid(2)]).unwrap();
        assert_eq!(s.assumption_about(pid(1)), Some(Outcome::Failed));
        assert_eq!(s.assumption_about(pid(2)), Some(Outcome::Failed));
    }

    #[test]
    fn nesting_inherits_parent_assumptions() {
        let parent = PredicateSet::new()
            .with_sibling_rivalry(pid(1), [pid(2)])
            .unwrap();
        let child = PredicateSet::child_of(&parent)
            .with_sibling_rivalry(pid(5), [pid(6)])
            .unwrap();
        assert_eq!(child.assumption_about(pid(1)), Some(Outcome::Completed));
        assert_eq!(child.assumption_about(pid(2)), Some(Outcome::Failed));
        assert_eq!(child.assumption_about(pid(5)), Some(Outcome::Completed));
        assert_eq!(child.assumption_about(pid(6)), Some(Outcome::Failed));
    }

    #[test]
    fn implies_is_subset() {
        let mut big = PredicateSet::new();
        big.assume_completes(pid(1)).unwrap();
        big.assume_fails(pid(2)).unwrap();
        let mut small = PredicateSet::new();
        small.assume_completes(pid(1)).unwrap();
        assert!(big.implies(&small));
        assert!(!small.implies(&big));
        assert!(big.implies(&PredicateSet::new()), "everything implies ⊤");
    }

    #[test]
    fn compare_implied() {
        let mut receiver = PredicateSet::new();
        receiver.assume_completes(pid(1)).unwrap();
        let mut sender = PredicateSet::new();
        sender.assume_completes(pid(1)).unwrap();
        assert_eq!(receiver.compare(&sender), Compatibility::Implied);
        assert_eq!(
            receiver.compare(&PredicateSet::new()),
            Compatibility::Implied
        );
    }

    #[test]
    fn compare_conflicting() {
        let mut receiver = PredicateSet::new();
        receiver.assume_fails(pid(1)).unwrap();
        let mut sender = PredicateSet::new();
        sender.assume_completes(pid(1)).unwrap();
        assert_eq!(
            receiver.compare(&sender),
            Compatibility::Conflicting { witness: pid(1) }
        );
    }

    #[test]
    fn compare_needs_assumptions_yields_exact_extras() {
        let mut receiver = PredicateSet::new();
        receiver.assume_completes(pid(1)).unwrap();
        let mut sender = PredicateSet::new();
        sender.assume_completes(pid(1)).unwrap();
        sender.assume_completes(pid(2)).unwrap();
        sender.assume_fails(pid(3)).unwrap();
        match receiver.compare(&sender) {
            Compatibility::NeedsAssumptions { extra } => {
                assert_eq!(extra.assumption_about(pid(1)), None, "already held");
                assert_eq!(extra.assumption_about(pid(2)), Some(Outcome::Completed));
                assert_eq!(extra.assumption_about(pid(3)), Some(Outcome::Failed));
                assert_eq!(extra.len(), 2);
            }
            other => panic!("expected NeedsAssumptions, got {other:?}"),
        }
    }

    #[test]
    fn conjoin_merges_or_conflicts() {
        let mut a = PredicateSet::new();
        a.assume_completes(pid(1)).unwrap();
        let mut b = PredicateSet::new();
        b.assume_fails(pid(2)).unwrap();
        a.conjoin(&b).unwrap();
        assert_eq!(a.len(), 2);

        let mut c = PredicateSet::new();
        c.assume_fails(pid(1)).unwrap();
        assert!(a.conjoin(&c).is_err());
    }

    #[test]
    fn resolve_satisfied_removes_assumption() {
        let mut s = PredicateSet::new();
        s.assume_completes(pid(1)).unwrap();
        assert_eq!(s.resolve(pid(1), Outcome::Completed), Resolution::Satisfied);
        assert!(s.is_unconditional());
    }

    #[test]
    fn resolve_contradiction_dooms() {
        let mut s = PredicateSet::new();
        s.assume_fails(pid(9)).unwrap();
        assert_eq!(s.resolve(pid(9), Outcome::Completed), Resolution::Doomed);
    }

    #[test]
    fn resolve_unknown_pid_unaffected() {
        let mut s = PredicateSet::new();
        assert_eq!(s.resolve(pid(3), Outcome::Failed), Resolution::Unaffected);
    }

    #[test]
    fn display_renders_both_polarities() {
        let mut s = PredicateSet::new();
        s.assume_completes(pid(1)).unwrap();
        s.assume_fails(pid(2)).unwrap();
        assert_eq!(s.to_string(), "pid1 ∧ ¬pid2");
    }
}
