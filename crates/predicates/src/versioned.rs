//! Predicated data objects — the design §3.3 argues *against*.
//!
//! "The advantage of this representation \[process-level predicate
//! lists\] over predication of data objects is that we can update the
//! value of these elements as processes change status (e.g., running,
//! blocked), with the idea that processes change status much less
//! frequently than they make memory references to objects."
//!
//! To make that argument measurable, this module implements the rejected
//! alternative: a [`VersionedStore`] that attaches a [`PredicateSet`] to
//! every written *value* (like PEDIT's parametric lines, §6). Reading
//! selects the version whose guard is implied by the reader's
//! assumptions; resolving a process's fate must visit every object's
//! version list. Experiment E14 (`exp_ablation_predicates`) compares the
//! bookkeeping cost of the two designs as the ratio of memory references
//! to status changes grows — reproducing the paper's design rationale as
//! a benchmark.

use crate::pid::{Outcome, Pid};
use crate::set::PredicateSet;
use std::collections::BTreeMap;
use std::fmt;

/// One guarded version of a value.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Version<T> {
    guard: PredicateSet,
    value: T,
}

/// A store whose every value carries the writer's assumptions — the
/// per-object predication design.
///
/// Keys are `u64` object ids; values are whatever the application
/// stores. Writes push a guarded version; reads select the **newest
/// version whose guard the reader's assumptions imply**; resolving a
/// pid's fate prunes every version list.
///
/// # Example
///
/// ```
/// use altx_predicates::versioned::VersionedStore;
/// use altx_predicates::{Outcome, Pid, PredicateSet};
///
/// let mut store: VersionedStore<&str> = VersionedStore::new();
/// store.write(7, PredicateSet::new(), "committed");
///
/// let mut speculative = PredicateSet::new();
/// speculative.assume_completes(Pid::new(3)).unwrap();
/// store.write(7, speculative.clone(), "speculative");
///
/// // A reader with no assumptions sees only the committed value…
/// assert_eq!(store.read(7, &PredicateSet::new()), Some(&"committed"));
/// // …the speculative world sees its own write.
/// assert_eq!(store.read(7, &speculative), Some(&"speculative"));
///
/// // pid3 fails: the speculative version vanishes for everyone.
/// store.resolve(Pid::new(3), Outcome::Failed);
/// assert_eq!(store.read(7, &speculative), Some(&"committed"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionedStore<T> {
    objects: BTreeMap<u64, Vec<Version<T>>>,
    /// Version-list entries visited by operations — the bookkeeping-cost
    /// metric E14 compares against process-level predicate work.
    pub versions_visited: u64,
}

impl<T> VersionedStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        VersionedStore {
            objects: BTreeMap::new(),
            versions_visited: 0,
        }
    }

    /// Number of objects with at least one version.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True iff the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total live versions across all objects.
    pub fn version_count(&self) -> usize {
        self.objects.values().map(Vec::len).sum()
    }

    /// Writes `value` to `object` under the writer's assumptions.
    /// An existing version with the *identical* guard is overwritten
    /// (same world, newer value).
    pub fn write(&mut self, object: u64, guard: PredicateSet, value: T) {
        let versions = self.objects.entry(object).or_default();
        for v in versions.iter_mut() {
            self.versions_visited += 1;
            if v.guard == guard {
                v.value = value;
                return;
            }
        }
        versions.push(Version { guard, value });
    }

    /// Reads `object` as seen by a reader holding `assumptions`: the
    /// newest version whose guard is implied by them.
    pub fn read(&mut self, object: u64, assumptions: &PredicateSet) -> Option<&T> {
        let versions = self.objects.get(&object)?;
        let mut best: Option<usize> = None;
        for (i, v) in versions.iter().enumerate() {
            self.versions_visited += 1;
            if assumptions.implies(&v.guard) {
                best = Some(i); // later versions shadow earlier ones
            }
        }
        best.map(|i| &versions[i].value)
    }

    /// Publishes the fate of `pid`: versions whose guards are
    /// contradicted are dropped; satisfied assumptions are discharged
    /// from the surviving guards. Visits every version of every object —
    /// the cost §3.3 is avoiding.
    pub fn resolve(&mut self, pid: Pid, outcome: Outcome) {
        let mut visited = 0u64;
        for versions in self.objects.values_mut() {
            versions.retain_mut(|v| {
                visited += 1;
                !matches!(
                    v.guard.resolve(pid, outcome),
                    crate::set::Resolution::Doomed
                )
            });
        }
        self.objects.retain(|_, vs| !vs.is_empty());
        self.versions_visited += visited;
    }
}

impl<T> fmt::Display for VersionedStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} objects, {} versions ({} visits)",
            self.len(),
            self.version_count(),
            self.versions_visited
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speculative(pid: u64) -> PredicateSet {
        let mut p = PredicateSet::new();
        p.assume_completes(Pid::new(pid)).expect("fresh");
        p
    }

    #[test]
    fn committed_and_speculative_views_coexist() {
        let mut store = VersionedStore::new();
        store.write(1, PredicateSet::new(), 10);
        store.write(1, speculative(5), 20);
        assert_eq!(store.read(1, &PredicateSet::new()), Some(&10));
        assert_eq!(store.read(1, &speculative(5)), Some(&20));
        assert_eq!(store.version_count(), 2);
    }

    #[test]
    fn same_world_write_overwrites() {
        let mut store = VersionedStore::new();
        store.write(1, speculative(5), 1);
        store.write(1, speculative(5), 2);
        assert_eq!(store.version_count(), 1);
        assert_eq!(store.read(1, &speculative(5)), Some(&2));
    }

    #[test]
    fn resolution_failure_drops_speculative_versions() {
        let mut store = VersionedStore::new();
        store.write(1, PredicateSet::new(), 10);
        store.write(1, speculative(5), 20);
        store.write(2, speculative(5), 99);
        store.resolve(Pid::new(5), Outcome::Failed);
        assert_eq!(
            store.read(1, &speculative(5)),
            Some(&10),
            "spec version gone"
        );
        assert_eq!(store.read(2, &PredicateSet::new()), None, "object vanished");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn resolution_success_promotes_speculative_versions() {
        let mut store = VersionedStore::new();
        store.write(1, PredicateSet::new(), 10);
        store.write(1, speculative(5), 20);
        store.resolve(Pid::new(5), Outcome::Completed);
        // The guard is discharged: everyone now sees the speculative
        // write (it shadows the older committed version).
        assert_eq!(store.read(1, &PredicateSet::new()), Some(&20));
    }

    #[test]
    fn readers_with_conflicting_assumptions_skip_versions() {
        let mut store = VersionedStore::new();
        store.write(1, speculative(5), 20);
        let mut opposed = PredicateSet::new();
        opposed.assume_fails(Pid::new(5)).expect("fresh");
        assert_eq!(store.read(1, &opposed), None);
    }

    #[test]
    fn missing_object_reads_none() {
        let mut store: VersionedStore<i32> = VersionedStore::new();
        assert_eq!(store.read(42, &PredicateSet::new()), None);
        assert!(store.is_empty());
    }

    #[test]
    fn visit_accounting_grows_with_reads() {
        let mut store = VersionedStore::new();
        for obj in 0..10 {
            store.write(obj, PredicateSet::new(), obj);
            store.write(obj, speculative(5), obj + 100);
        }
        let before = store.versions_visited;
        for obj in 0..10 {
            store.read(obj, &PredicateSet::new());
        }
        // 10 objects × 2 versions each.
        assert_eq!(store.versions_visited - before, 20);
    }

    #[test]
    fn display_summarizes() {
        let mut store = VersionedStore::new();
        store.write(1, PredicateSet::new(), 0);
        assert!(store.to_string().contains("1 objects"), "{store}");
    }
}
