//! # altx-check — a tiny seeded property-testing harness
//!
//! A std-only stand-in for `proptest`, used by the workspace's
//! property-test suites. It has no strategy algebra and no shrinking;
//! instead every case is generated from a deterministic seed, and a
//! failing case panics with its case number and seed so the failure can
//! be replayed exactly with [`replay`].
//!
//! ```
//! altx_check::check("addition_commutes", 64, |rng| {
//!     let (a, b) = (rng.u64_below(1000), rng.u64_below(1000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases for suites that don't pick their own count.
pub const DEFAULT_CASES: u32 = 64;

/// A deterministic generator handed to each property case.
///
/// The core is SplitMix64 — tiny, fast, and well distributed — which is
/// also what `altx_des::SimRng` seeds itself from, so the whole
/// workspace shares one RNG lineage.
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        CaseRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. `bound` 0 yields 0.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bound reduction; bias is negligible for test
        // generation purposes.
        ((self.u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.u64_below((hi - lo) as u64) as i64)
    }

    /// Uniform byte.
    pub fn u8(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// A vector of `len` in `[lo, hi)` elements drawn by `f`.
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut CaseRng) -> T) -> Vec<T> {
        let n = self.usize_in(lo, hi);
        (0..n).map(|_| f(self)).collect()
    }

    /// A vector of random bytes with `len` in `[lo, hi)`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        self.vec(lo, hi, |r| r.u8())
    }

    /// `Some(f(rng))` with probability `p`, else `None`.
    pub fn option<T>(&mut self, p: f64, f: impl FnOnce(&mut CaseRng) -> T) -> Option<T> {
        self.chance(p).then(|| f(self))
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_in(0, items.len())]
    }
}

/// Derives the seed for case `case` of the property named `name`.
///
/// The name participates so distinct properties in one file don't share
/// generation streams.
pub fn case_seed(name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `cases` deterministic cases of property `body`; panics with the
/// case number and seed on the first failure.
pub fn check(name: &str, cases: u32, mut body: impl FnMut(&mut CaseRng)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = CaseRng::from_seed(seed);
        if let Err(cause) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!(
                "altx-check: property '{name}' failed at case {case} (seed {seed:#x}); \
                 replay with altx_check::replay({seed:#x}, ...)"
            );
            resume_unwind(cause);
        }
    }
}

/// Re-runs one failing case by seed (for debugging a [`check`] failure).
pub fn replay(seed: u64, mut body: impl FnMut(&mut CaseRng)) {
    let mut rng = CaseRng::from_seed(seed);
    body(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = CaseRng::from_seed(case_seed("p", 3));
        let mut b = CaseRng::from_seed(case_seed("p", 3));
        assert_eq!(a.u64(), b.u64());
        assert_ne!(
            CaseRng::from_seed(case_seed("p", 0)).u64(),
            CaseRng::from_seed(case_seed("q", 0)).u64()
        );
    }

    #[test]
    fn ranges_respected() {
        let mut rng = CaseRng::from_seed(1);
        for _ in 0..1000 {
            let v = rng.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let x = rng.i64_in(-5, 5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = CaseRng::from_seed(2);
        for _ in 0..100 {
            let v = rng.bytes(1, 64);
            assert!((1..64).contains(&v.len()));
        }
    }

    #[test]
    fn bool_and_chance_hit_both_sides() {
        let mut rng = CaseRng::from_seed(3);
        let trues = (0..1000).filter(|_| rng.bool()).count();
        assert!((400..600).contains(&trues), "{trues}");
        let hits = (0..1000).filter(|_| rng.chance(0.1)).count();
        assert!((50..200).contains(&hits), "{hits}");
    }

    #[test]
    fn check_runs_every_case() {
        let mut n = 0;
        check("counter", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn check_propagates_failures() {
        check("fails", 4, |rng| {
            if rng.u64() % 2 == 0 || true {
                panic!("boom");
            }
        });
    }

    #[test]
    fn replay_matches_check_stream() {
        let seed = case_seed("stream", 5);
        let mut from_check = Vec::new();
        let mut case = 0u32;
        check("stream", 6, |rng| {
            if case == 5 {
                from_check.push(rng.u64());
            }
            case += 1;
        });
        let mut from_replay = Vec::new();
        replay(seed, |rng| from_replay.push(rng.u64()));
        assert_eq!(from_check, from_replay);
    }
}
