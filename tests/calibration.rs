//! End-to-end calibration tests: the paper's §4.2/§4.4 numbers must be
//! reproducible through the public API, not just the individual cost
//! models. These are the acceptance criteria for experiments E2–E5.

use altx::engine::sim::{race, SimRaceSpec};
use altx::perf::{paper_table, performance_improvement, Overhead};
use altx::MachineProfile;
use altx_cluster::RemoteForkModel;
use altx_des::SimDuration;
use altx_kernel::{Kernel, KernelConfig, Op, Program};

#[test]
fn e2_paper_pi_table_analytic() {
    // §4.2: all six rows to printed precision.
    let expected = [1.33, 7.0, 0.8, 0.33, 1.0, 1.9];
    for (row, want) in paper_table().iter().zip(expected) {
        let got = performance_improvement(&row.times, &Overhead::total_of(row.overhead));
        assert!(
            (got - want).abs() < 0.01,
            "row {}: {got} vs {want}",
            row.row
        );
    }
}

#[test]
fn e2_simulated_pi_tracks_analytic_ordering() {
    // The simulated kernel charges *real* modelled overhead rather than
    // the abstract τ(overhead)=5, so absolute PI differs — but the
    // qualitative structure of the table must hold: which rows win, and
    // their relative order.
    let measured: Vec<f64> = paper_table()
        .iter()
        .map(|row| {
            let times: Vec<u64> = row.times.iter().map(|&t| t as u64).collect();
            let spec = SimRaceSpec::from_millis(&times).with_dirty_pages(2);
            altx::engine::sim::measured_pi(&spec)
        })
        .collect();
    // Rows 1, 2, 6 won on paper; rows 3, 4 lost; row 5 broke even.
    assert!(
        measured[1] > measured[0],
        "big dispersion beats small: {measured:?}"
    );
    assert!(
        measured[3] < 1.0,
        "tiny times lose to overhead: {measured:?}"
    );
    assert!(measured[5] > 1.0, "row 6 wins: {measured:?}");
    assert!(measured[2] < 1.0, "identical times lose: {measured:?}");
}

#[test]
fn e3_fork_latency_via_simulated_kernel() {
    // §4.4: fork of a 320K address space with no updates costs ≈31 ms on
    // the 3B2 and ≈12 ms on the HP. We measure through a real kernel run:
    // an alt block with one no-op alternative charges exactly one fork.
    for (profile, expect_ms) in [
        (MachineProfile::att_3b2_310(), 31.0),
        (MachineProfile::hp_9000_350(), 12.0),
    ] {
        let name = profile.name();
        let mut kernel = Kernel::new(KernelConfig {
            profile,
            ..KernelConfig::default()
        });
        let spec = altx_kernel::AltBlockSpec::new(vec![altx_kernel::Alternative::new(
            altx_kernel::GuardSpec::Const(true),
            Program::empty(),
        )]);
        let root = kernel.spawn(Program::new(vec![Op::AltBlock(spec)]), 320 * 1024);
        let report = kernel.run();
        let setup = report.block_outcomes(root)[0].setup_cost;
        let fork_ms = setup.as_millis_f64();
        // setup = syscall + one fork; the syscall is ≤ 0.2 ms.
        assert!(
            (fork_ms - expect_ms).abs() < 0.5,
            "{name}: fork setup {fork_ms} ms, paper {expect_ms} ms"
        );
    }
}

#[test]
fn e4_page_copy_rates_through_cow_faults() {
    // §4.4: 326 2K-pages/s (3B2) and 1034 4K-pages/s (HP). Measure by
    // timing an alternative that dirties many inherited pages.
    for (profile, pages_per_sec) in [
        (MachineProfile::att_3b2_310(), 326.0),
        (MachineProfile::hp_9000_350(), 1034.0),
    ] {
        let name = profile.name();
        // 80 pages exist on both machines' 320 KB spaces (160 × 2K, 80 × 4K).
        let npages = 80usize;
        let spec = SimRaceSpec::new(vec![SimDuration::ZERO])
            .with_profile(profile.clone())
            .with_dirty_pages(npages);
        let result = race(&spec);
        let o = &result.outcome;
        // Copy time = decided - waiting - (sync costs); bound it instead
        // of solving exactly: it must be within 15% of npages / rate
        // (fault overhead inflates it slightly above the pure copy rate).
        let copying = (o.decided_at - o.waiting_at).as_secs_f64();
        let pure = npages as f64 / pages_per_sec;
        assert!(
            copying >= pure && copying < pure * 1.25,
            "{name}: measured {copying}s vs pure-copy {pure}s"
        );
    }
}

#[test]
fn e5_rfork_service_and_observed_times() {
    // §4.4: 70K process → slightly under 1 s service, ≈1.3 s observed.
    let model = RemoteForkModel::calibrated_1989();
    let service = model.service_time(70 * 1024).as_secs_f64();
    let observed = model.observed_time(70 * 1024).as_secs_f64();
    assert!((0.9..1.0).contains(&service), "service {service}");
    assert!((1.2..1.4).contains(&observed), "observed {observed}");
}

#[test]
fn overheads_scale_down_on_frictionless_hardware() {
    // Sanity: with zero-cost hardware, the measured PI approaches the
    // analytic PI with zero overhead (mean / best).
    let times = [100u64, 200, 300];
    let spec = SimRaceSpec::from_millis(&times)
        .with_profile(MachineProfile::frictionless())
        .with_dirty_pages(0);
    let pi = altx::engine::sim::measured_pi(&spec);
    let ideal = performance_improvement(&[100.0, 200.0, 300.0], &Overhead::default());
    assert!(
        (pi - ideal).abs() / ideal < 0.01,
        "pi {pi} vs ideal {ideal}"
    );
}
