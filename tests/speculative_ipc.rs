//! Integration tests: predicated IPC with cascading world splits, plus
//! checkpoint-based state migration of speculation results.

use altx_cluster::{Checkpoint, RemoteForkModel};
use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, GuardSpec, Kernel, KernelConfig, Op, Program, Target, TraceEvent,
};

/// The multiple-worlds scenario, CI-guarded: a logger service receives
/// from two racing alternates; its worlds split twice and exactly one
/// consistent world survives.
#[test]
fn cascading_world_splits_leave_one_consistent_survivor() {
    let mut kernel = Kernel::new(KernelConfig::default());
    kernel.add_source(0, vec![b"console".to_vec()]);

    let logger = Program::new(vec![
        Op::RegisterName("logger".into()),
        Op::Recv { reg: 0 },
        Op::WriteFromRegister { reg: 0, addr: 0 },
        Op::SourcePull {
            source_id: 0,
            index: 0,
            reg: 1,
        },
        Op::WriteFromRegister { reg: 1, addr: 64 },
    ]);
    let chatty_loser = Program::new(vec![
        Op::Send {
            to: Target::Name("logger".into()),
            payload: b"loser-spoke".to_vec(),
        },
        Op::Compute(SimDuration::from_millis(300)),
    ]);
    let quiet_winner = Program::new(vec![
        Op::Compute(SimDuration::from_millis(40)),
        Op::Send {
            to: Target::Name("logger".into()),
            payload: b"winner-word".to_vec(),
        },
    ]);

    let logger_pid = kernel.spawn(logger, 4 * 1024);
    let racer = kernel.spawn(
        Program::new(vec![
            Op::Compute(SimDuration::from_millis(5)),
            Op::AltBlock(AltBlockSpec::new(vec![
                Alternative::new(GuardSpec::Const(true), chatty_loser),
                Alternative::new(GuardSpec::Const(true), quiet_winner),
            ])),
        ]),
        4 * 1024,
    );
    let report = kernel.run();

    assert_eq!(report.block_outcomes(racer)[0].winner, Some(1));
    assert_eq!(
        report.stats.world_splits, 2,
        "one split per speculative sender"
    );

    // Exactly one world of the logger's logical process completes.
    let mut worlds = std::collections::BTreeSet::from([logger_pid]);
    for e in report.trace() {
        if let TraceEvent::WorldSplit {
            accepting,
            rejecting,
            ..
        } = e
        {
            if worlds.contains(accepting) {
                worlds.insert(*rejecting);
            }
        }
    }
    let survivors: Vec<_> = worlds
        .iter()
        .filter(|&&p| report.exit(p).map(|s| s.is_success()).unwrap_or(false))
        .collect();
    assert_eq!(survivors.len(), 1, "worlds {worlds:?}");
    let survivor = *survivors[0];

    let mut space = kernel.space(survivor).expect("survivor lives").clone();
    assert_eq!(&space.read_vec(0, 11), b"winner-word");
    assert_eq!(&space.read_vec(64, 7), b"console");

    // No other world's memory is observable as a completed process, and
    // the loser's payload appears in no surviving state.
    for &world in worlds.iter().filter(|&&p| p != survivor) {
        assert!(
            !report.exit(world).map(|s| s.is_success()).unwrap_or(false),
            "world {world} must not complete"
        );
    }
}

/// Checkpoint pipeline: a speculation winner's address space survives a
/// capture → ship → restore round trip, and the shipping cost is the
/// rfork model applied to the real image size.
#[test]
fn winner_state_migrates_via_checkpoint() {
    let mut kernel = Kernel::new(KernelConfig::default());
    let winner_body = Program::new(vec![
        Op::Compute(SimDuration::from_millis(5)),
        Op::Write {
            addr: 0,
            data: b"result-of-the-race".to_vec(),
        },
        Op::TouchPages { first: 2, count: 3 },
    ]);
    let root = kernel.spawn(
        Program::new(vec![Op::AltBlock(AltBlockSpec::new(vec![
            Alternative::new(GuardSpec::Const(true), winner_body),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(500)),
        ]))]),
        32 * 1024,
    );
    let report = kernel.run();
    assert!(report.exit(root).expect("exits").is_success());

    // "Migrate" the absorbed result to another node.
    let space = kernel.space(root).expect("root").clone();
    let image = Checkpoint::capture(&space);
    assert!(!image.is_empty());

    // The wire: bytes only.
    let wire = image.as_bytes().to_vec();
    let received = Checkpoint::from_bytes(wire).expect("intact in transit");
    let mut remote = received.restore().expect("restores");
    assert_eq!(remote.flatten(), space.flatten());
    assert_eq!(&remote.read_vec(0, 18), b"result-of-the-race");

    // Cost model: driven by the real encoded size.
    let model = RemoteForkModel::calibrated_1989();
    let shipped = image.rfork_time(&model);
    let full = model.observed_time(space.len() as u64);
    assert!(
        shipped < full,
        "sparse image ({} bytes of {}) must ship faster: {} vs {}",
        image.len(),
        space.len(),
        shipped,
        full
    );
}

/// Messages sent to a process after it has terminated are dropped, not
/// delivered to a recycled mailbox; senders are unaffected.
#[test]
fn messages_to_dead_processes_are_dropped() {
    let mut kernel = Kernel::new(KernelConfig::default());
    let short_lived = Program::new(vec![Op::RegisterName("flash".into())]);
    let sender = Program::new(vec![
        Op::Compute(SimDuration::from_millis(50)), // flash is long gone
        Op::Send {
            to: Target::Name("flash".into()),
            payload: b"too late".to_vec(),
        },
        Op::Write {
            addr: 0,
            data: vec![1],
        },
    ]);
    let flash = kernel.spawn(short_lived, 4 * 1024);
    let tx = kernel.spawn(sender, 4 * 1024);
    let report = kernel.run();
    assert!(report.exit(flash).expect("exits").is_success());
    assert!(
        report.exit(tx).expect("sender exits").is_success(),
        "send to dead pid is not fatal"
    );
    let mut space = kernel.space(tx).expect("tx").clone();
    assert_eq!(
        space.read_vec(0, 1),
        vec![1],
        "sender continued past the dead send"
    );
}

/// Two alternative blocks executed back-to-back by the same parent keep
/// independent outcomes and the pid is stable throughout (§3.2:
/// "maintenance of the process id").
#[test]
fn sequential_blocks_in_one_process() {
    let mut kernel = Kernel::new(KernelConfig::default());
    let program = Program::new(vec![
        Op::AltBlock(AltBlockSpec::new(vec![
            Alternative::new(
                GuardSpec::Const(true),
                Program::new(vec![Op::Write {
                    addr: 0,
                    data: vec![1],
                }]),
            ),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(100)),
        ])),
        Op::AltBlock(AltBlockSpec::new(vec![
            Alternative::new(GuardSpec::Const(false), Program::empty()),
            Alternative::new(
                GuardSpec::Const(true),
                Program::new(vec![Op::Write {
                    addr: 1,
                    data: vec![2],
                }]),
            ),
        ])),
    ]);
    let root = kernel.spawn(program, 4 * 1024);
    let report = kernel.run();
    let outcomes = report.block_outcomes(root);
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].winner, Some(0));
    assert_eq!(outcomes[1].winner, Some(1));
    assert_eq!(outcomes[0].block_seq, 0);
    assert_eq!(outcomes[1].block_seq, 1);
    let mut space = kernel.space(root).expect("root").clone();
    assert_eq!(
        space.read_vec(0, 2),
        vec![1, 2],
        "both winners' state present"
    );
}
