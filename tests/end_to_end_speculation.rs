//! Integration tests across the full speculative-execution stack:
//! kernel + pager + predicates + IPC, exercised together.

use altx_des::SimDuration;
use altx_kernel::{
    AltBlockSpec, Alternative, EliminationPolicy, ExitStatus, GuardSpec, Kernel, KernelConfig, Op,
    Program, Target, TraceEvent,
};
use altx_pager::MachineProfile;

fn kernel() -> Kernel {
    Kernel::new(KernelConfig::default())
}

#[test]
fn winner_state_flows_through_nested_blocks_and_messages() {
    // A pipeline: a consumer process waits for a message; a producer runs
    // a nested alternative block whose winner computes a value, writes it
    // to memory, and (after winning) the parent sends it onward.
    let mut k = kernel();

    let consumer = Program::new(vec![
        Op::RegisterName("consumer".into()),
        Op::Recv { reg: 0 },
        Op::WriteFromRegister { reg: 0, addr: 100 },
    ]);

    let inner = AltBlockSpec::new(vec![
        Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(40)),
                Op::Write {
                    addr: 0,
                    data: b"slow-inner".to_vec(),
                },
            ]),
        ),
        Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![
                Op::Compute(SimDuration::from_millis(5)),
                Op::Write {
                    addr: 0,
                    data: b"fast-inner".to_vec(),
                },
            ]),
        ),
    ]);

    let producer = Program::new(vec![
        Op::Compute(SimDuration::from_millis(1)),
        Op::AltBlock(AltBlockSpec::new(vec![Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![Op::AltBlock(inner), Op::Nop]),
        )])),
        // After both blocks resolve, the parent is unconditional again
        // and may publish the result.
        Op::Read { addr: 0, len: 10 },
        Op::Send {
            to: Target::Name("consumer".into()),
            payload: b"fast-inner".to_vec(),
        },
    ]);

    let consumer_pid = k.spawn(consumer, 4 * 1024);
    let producer_pid = k.spawn(producer, 4 * 1024);
    let report = k.run();

    assert!(report.deadlocked.is_empty(), "{:?}", report.deadlocked);
    assert!(report
        .exit(producer_pid)
        .expect("producer exits")
        .is_success());
    assert!(report
        .exit(consumer_pid)
        .expect("consumer exits")
        .is_success());

    // The producer's own memory holds the inner winner's state.
    let mut producer_space = k.space(producer_pid).expect("space").clone();
    assert_eq!(&producer_space.read_vec(0, 10), b"fast-inner");
    // And the consumer received the published copy.
    let mut consumer_space = k.space(consumer_pid).expect("space").clone();
    assert_eq!(&consumer_space.read_vec(100, 10), b"fast-inner");
}

#[test]
fn speculative_sender_worlds_resolve_to_a_single_consistent_receiver() {
    // Two alternates race; the one that will LOSE sends a message first.
    // The receiver splits into two worlds; when the race resolves, only
    // the world consistent with the actual winner survives.
    let mut k = kernel();

    let receiver = Program::new(vec![
        Op::RegisterName("rx".into()),
        Op::Recv { reg: 0 },
        Op::WriteFromRegister { reg: 0, addr: 0 },
        Op::Compute(SimDuration::from_millis(500)),
    ]);

    let losing_sender = Program::new(vec![
        // Sends early, then loses the race (finishes later than sibling).
        Op::Send {
            to: Target::Name("rx".into()),
            payload: b"from-loser".to_vec(),
        },
        Op::Compute(SimDuration::from_millis(300)),
    ]);
    let winning_quiet = Program::new(vec![Op::Compute(SimDuration::from_millis(30))]);

    let rx = k.spawn(receiver, 4 * 1024);
    let root = k.spawn(
        Program::new(vec![
            Op::Compute(SimDuration::from_millis(5)),
            Op::AltBlock(AltBlockSpec::new(vec![
                Alternative::new(GuardSpec::Const(true), losing_sender),
                Alternative::new(GuardSpec::Const(true), winning_quiet),
            ])),
        ]),
        4 * 1024,
    );
    let report = k.run();

    assert_eq!(
        report.block_outcomes(root)[0].winner,
        Some(1),
        "quiet alternate wins"
    );
    assert_eq!(report.stats.world_splits, 1);

    // The accepting world (which consumed the loser's message) must be
    // eliminated; the rejecting world survives and keeps waiting — it
    // never gets a message, so it is reported blocked rather than
    // completing with leaked speculative state.
    let split_pids: Vec<_> = report
        .trace()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::WorldSplit {
                accepting,
                rejecting,
                ..
            } => Some((*accepting, *rejecting)),
            _ => None,
        })
        .collect();
    assert_eq!(split_pids.len(), 1);
    let (accepting, rejecting) = split_pids[0];
    assert_eq!(accepting, rx);
    assert!(matches!(
        report.exit(accepting),
        Some(ExitStatus::Eliminated { .. })
    ));
    // The rejecting world took over the wait; it is deadlocked (no sender
    // remains), which is the correct containment outcome: no observable
    // effect of the loser's message anywhere.
    assert!(report.deadlocked.contains(&rejecting));
    let mut space = k.space(rejecting).expect("surviving world").clone();
    assert_eq!(
        space.read_vec(0, 10),
        vec![0; 10],
        "loser's payload never leaked"
    );
}

#[test]
fn at_most_one_synchronization_per_block_under_heavy_contention() {
    // 12 equal alternatives finishing simultaneously: exactly one
    // synchronizes, the rest are too-late or eliminated.
    let mut k = kernel();
    let alts: Vec<Alternative> = (0..12)
        .map(|_| Alternative::new(GuardSpec::Const(true), Program::compute_ms(10)))
        .collect();
    let root = k.spawn(
        Program::new(vec![Op::AltBlock(AltBlockSpec::new(alts))]),
        8 * 1024,
    );
    let report = k.run();

    let syncs = report
        .trace()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Synchronized { .. }))
        .count();
    assert_eq!(syncs, 1);
    let terminated = report
        .trace()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Eliminated { .. } | TraceEvent::TooLate { .. }
            )
        })
        .count();
    assert_eq!(terminated, 11);
    assert!(report.exit(root).expect("root exits").is_success());
}

#[test]
fn guard_in_parent_and_child_agree() {
    // With pre-spawn checking, a memory guard that is false in the parent
    // never spawns; the same guard evaluated in the child (no pre-check)
    // aborts at sync time. Either way the block outcome is identical.
    let run = |prespawn: bool| {
        let mut k = kernel();
        let mut spec = AltBlockSpec::new(vec![
            Alternative::new(
                GuardSpec::MemByteEquals {
                    addr: 0,
                    expected: 9,
                },
                Program::compute_ms(1),
            ),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(5)),
        ]);
        if prespawn {
            spec = spec.with_prespawn_guard_check();
        }
        let root = k.spawn(Program::new(vec![Op::AltBlock(spec)]), 4 * 1024);
        let report = k.run();
        (report.block_outcomes(root)[0].winner, report.stats.forks)
    };
    let (winner_checked, forks_checked) = run(true);
    let (winner_child, forks_child) = run(false);
    assert_eq!(winner_checked, Some(1));
    assert_eq!(winner_child, Some(1));
    assert!(forks_checked < forks_child, "pre-spawn check saves a fork");
}

#[test]
fn elimination_policies_preserve_semantics() {
    for policy in [
        EliminationPolicy::Synchronous,
        EliminationPolicy::Asynchronous,
    ] {
        let mut k = kernel();
        let spec = AltBlockSpec::new(vec![
            Alternative::new(
                GuardSpec::Const(true),
                Program::new(vec![
                    Op::Compute(SimDuration::from_millis(5)),
                    Op::Write {
                        addr: 0,
                        data: vec![1],
                    },
                ]),
            ),
            Alternative::new(
                GuardSpec::Const(true),
                Program::new(vec![
                    Op::Compute(SimDuration::from_millis(50)),
                    Op::Write {
                        addr: 0,
                        data: vec![2],
                    },
                ]),
            ),
        ])
        .with_elimination(policy);
        let root = k.spawn(Program::new(vec![Op::AltBlock(spec)]), 4 * 1024);
        let report = k.run();
        assert_eq!(report.block_outcomes(root)[0].winner, Some(0), "{policy:?}");
        let mut space = k.space(root).expect("space").clone();
        assert_eq!(space.read_vec(0, 1), vec![1], "{policy:?}");
    }
}

#[test]
fn profiles_change_costs_but_never_outcomes() {
    let run = |profile: MachineProfile| {
        let mut k = Kernel::new(KernelConfig {
            profile,
            ..KernelConfig::default()
        });
        let spec = AltBlockSpec::new(vec![
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(50)),
            Alternative::new(GuardSpec::Const(true), Program::compute_ms(10)),
        ]);
        let root = k.spawn(Program::new(vec![Op::AltBlock(spec)]), 320 * 1024);
        let report = k.run();
        let o = report.block_outcomes(root)[0].clone();
        (o.winner, o.elapsed())
    };
    let (w_att, t_att) = run(MachineProfile::att_3b2_310());
    let (w_hp, t_hp) = run(MachineProfile::hp_9000_350());
    let (w_free, t_free) = run(MachineProfile::frictionless());
    assert_eq!(w_att, Some(1));
    assert_eq!(w_hp, Some(1));
    assert_eq!(w_free, Some(1));
    // Costs order as the hardware does: 3B2 slowest, frictionless fastest.
    assert!(t_att > t_hp, "3B2 {t_att} vs HP {t_hp}");
    assert!(t_hp > t_free, "HP {t_hp} vs frictionless {t_free}");
}

#[test]
fn deeply_nested_blocks_resolve_inside_out() {
    // Three levels of nesting; each level's fast alternative wins.
    let level0 = AltBlockSpec::new(vec![
        Alternative::new(GuardSpec::Const(true), Program::compute_ms(2)),
        Alternative::new(GuardSpec::Const(true), Program::compute_ms(30)),
    ]);
    let level1 = AltBlockSpec::new(vec![
        Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![Op::AltBlock(level0)]),
        ),
        Alternative::new(GuardSpec::Const(true), Program::compute_ms(200)),
    ]);
    let level2 = AltBlockSpec::new(vec![
        Alternative::new(
            GuardSpec::Const(true),
            Program::new(vec![Op::AltBlock(level1)]),
        ),
        Alternative::new(GuardSpec::Const(true), Program::compute_ms(2_000)),
    ]);
    let mut k = kernel();
    let root = k.spawn(Program::new(vec![Op::AltBlock(level2)]), 4 * 1024);
    let report = k.run();
    assert_eq!(report.block_outcomes(root)[0].winner, Some(0));
    assert!(report.exit(root).expect("exits").is_success());
    // All speculative processes are accounted for: no leaks, no deadlock.
    assert!(report.deadlocked.is_empty());
}
