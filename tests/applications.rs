//! Integration tests of the two application layers (recovery blocks,
//! OR-parallel Prolog) against the core engines — the semantic
//! equivalence claims of §4.3: every execution strategy must be
//! observationally a nondeterministic sequential selection.

use altx::engine::{OrderedEngine, RandomEngine, ThreadedEngine};
use altx::{AddressSpace, AltBlock, Engine, PageSize};
use altx_prolog::{profile_branches, solve_first_parallel, KnowledgeBase, Solver};
use altx_recovery::RecoveryBlock;

fn ws() -> AddressSpace {
    AddressSpace::zeroed(1024, PageSize::new(64))
}

/// The set of alternatives, with exactly which indices can succeed.
fn mixed_block() -> AltBlock<usize> {
    AltBlock::new()
        .alternative("fail-a", |_w, _t| None)
        .alternative("ok-b", |_w, _t| Some(1))
        .alternative("fail-c", |_w, _t| None)
        .alternative("ok-d", |_w, _t| Some(3))
}

#[test]
fn every_engine_returns_an_admissible_outcome() {
    // Admissible: value is Some(i) where i ∈ {1, 3} and winner == i, or
    // (for RandomEngine only) failure when it picked a failing branch.
    let admissible = |winner: Option<usize>, value: Option<usize>| match (winner, value) {
        (Some(w), Some(v)) => w == v && (v == 1 || v == 3),
        (None, None) => true,
        _ => false,
    };

    let r = OrderedEngine::new().execute(&mixed_block(), &mut ws());
    assert!(admissible(r.winner, r.value));
    assert_eq!(r.winner, Some(1), "ordered picks the first success");

    let r = ThreadedEngine::new().execute(&mixed_block(), &mut ws());
    assert!(admissible(r.winner, r.value));
    assert!(r.succeeded(), "threaded always finds an existing success");

    let engine = RandomEngine::seeded(7);
    let mut successes = 0;
    let mut failures = 0;
    for _ in 0..200 {
        let r = engine.execute(&mixed_block(), &mut ws());
        assert!(admissible(r.winner, r.value));
        if r.succeeded() {
            successes += 1;
        } else {
            failures += 1;
        }
    }
    // Scheme B commits to its arbitrary pick: with 2/4 failing branches it
    // must fail sometimes and succeed sometimes.
    assert!(successes > 0 && failures > 0, "{successes} / {failures}");
}

#[test]
fn workspace_mutations_identical_across_engines_when_winner_is_forced() {
    // Only one alternative can succeed, so every engine must leave the
    // identical workspace state.
    let make = || -> AltBlock<u8> {
        AltBlock::new()
            .alternative("writes-then-fails", |w, _t| {
                w.write(0, &[0xAA]);
                None
            })
            .alternative("the-winner", |w, _t| {
                w.write(0, &[0x55]);
                w.write(64, &[0x66]);
                Some(1)
            })
    };
    let mut w1 = ws();
    OrderedEngine::new().execute(&make(), &mut w1);
    let mut w2 = ws();
    ThreadedEngine::new().execute(&make(), &mut w2);
    assert_eq!(w1.flatten(), w2.flatten());
    assert_eq!(w1.read_vec(0, 1), vec![0x55]);
}

#[test]
fn recovery_block_engines_agree_on_forced_winner() {
    let make = || -> RecoveryBlock<String> {
        RecoveryBlock::new(|r: &String, _ws| r == "correct")
            .alternate("wrong", |_w, _t| Some("wrong!".to_string()))
            .alternate("crash", |_w, _t| None)
            .alternate("right", |_w, _t| Some("correct".to_string()))
    };
    let seq = make().run_sequential(&mut ws());
    let conc = make().run_concurrent(&mut ws());
    assert_eq!(seq.winner, Some(2));
    assert_eq!(conc.winner, Some(2));
    assert_eq!(seq.value, conc.value);
}

const GRAPH: &str = "
    edge(a, b). edge(b, c). edge(c, d). edge(d, e).
    edge(a, x). edge(x, y). edge(y, e).
    path(X, X).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    % two strategies for connected/2 — the OR choice point:
    connected(X, Y) :- path(X, Y).
    connected(X, Y) :- path(Y, X).
";

#[test]
fn or_parallel_prolog_matches_sequential_satisfiability() {
    let kb = KnowledgeBase::parse(GRAPH).unwrap();
    for (query, satisfiable) in [
        ("connected(a, e)", true),
        ("connected(e, a)", true), // second clause direction
        ("connected(b, x)", false),
        ("path(a, d)", true),
        ("path(d, a)", false),
    ] {
        let mut solver = Solver::new(&kb);
        let seq = !solver.solve_str(query, 1).unwrap().is_empty();
        let par = solve_first_parallel(&kb, query).unwrap().solution.is_some();
        assert_eq!(seq, satisfiable, "sequential {query}");
        assert_eq!(par, satisfiable, "parallel {query}");
    }
}

#[test]
fn or_parallel_solution_is_always_verifiable_sequentially() {
    // Whatever binding the racing solver returns must also be derivable
    // sequentially — the transparency requirement.
    let kb = KnowledgeBase::parse(GRAPH).unwrap();
    let report = solve_first_parallel(&kb, "connected(a, Where)").unwrap();
    let sol = report.solution.expect("satisfiable");
    let where_ = sol.binding_str("Where").expect("bound");
    let mut solver = Solver::new(&kb);
    let check = format!("connected(a, {where_})");
    assert!(
        !solver.solve_str(&check, 1).unwrap().is_empty(),
        "parallel answer {where_} must hold sequentially"
    );
}

#[test]
fn branch_profiles_cover_all_clauses_and_sum_to_sequential_work() {
    let kb = KnowledgeBase::parse(GRAPH).unwrap();
    let profiles = profile_branches(&kb, "connected(b, x)").unwrap();
    assert_eq!(profiles.len(), 2, "one per connected/2 clause");
    assert!(
        profiles.iter().all(|p| !p.succeeded),
        "query is unsatisfiable"
    );

    // For a failing query, sequential DFS explores every branch fully,
    // so its step count matches the profile total (+ the top goal).
    let mut solver = Solver::new(&kb);
    assert!(solver.solve_str("connected(b, x)", 1).unwrap().is_empty());
    let total: u64 = profiles.iter().map(|p| p.steps).sum();
    let seq = solver.steps();
    assert!(
        seq.abs_diff(total) <= profiles.len() as u64 + 2,
        "sequential {seq} vs profile total {total}"
    );
}

#[test]
fn threaded_engines_tolerate_many_concurrent_blocks() {
    // Run several racing blocks back-to-back to shake out any shared
    // state between executions.
    let engine = ThreadedEngine::new();
    for round in 0..20usize {
        let block: AltBlock<usize> = AltBlock::new()
            .alternative("a", move |_w, _t| (round % 3 == 0).then_some(round))
            .alternative("b", move |_w, _t| (round % 3 == 1).then_some(round))
            .alternative("c", move |_w, _t| (round % 3 == 2).then_some(round));
        let r = engine.execute(&block, &mut ws());
        assert_eq!(r.value, Some(round));
        assert_eq!(r.winner, Some(round % 3));
    }
}
