//! # altx-repro — umbrella crate
//!
//! Re-exports every crate in the workspace reproduction of Smith &
//! Maguire, *Transparent Concurrent Execution of Mutually Exclusive
//! Alternatives* (ICDCS 1989). The root package exists so that the
//! repository-level `examples/` and `tests/` can exercise the full public
//! API surface from a single dependency.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the per-table/figure reproduction record.

pub use altx;
pub use altx_cluster as cluster;
pub use altx_consensus as consensus;
pub use altx_des as des;
pub use altx_ipc as ipc;
pub use altx_kernel as kernel;
pub use altx_pager as pager;
pub use altx_predicates as predicates;
pub use altx_prolog as prolog;
pub use altx_recovery as recovery;
